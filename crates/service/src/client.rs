//! Clients for the `dexlegod` wire protocol.
//!
//! [`Client`] is the original strictly-serial blocking client — one
//! request, one reply, in order. It sends no request ids, which the
//! server recognises as the compatibility contract: replies to id-less
//! requests always come back in request order, so this client keeps
//! working unchanged against the multiplexed server. It reports plain
//! [`io::Error`]s, as it always has.
//!
//! [`PipelinedClient`] speaks the pipelined dialect: every request
//! carries an id, many may be in flight on one connection, and replies
//! arrive in whatever order the work finishes. It reports typed
//! [`ClientError`]s so callers can tell a dead connection (reconnect
//! and resend) from a protocol violation (give up), and it can be
//! [split](PipelinedClient::split) into independently-owned send and
//! receive halves for callers that pump the two directions from
//! different threads. The load harness, the router, and the
//! multiplexing tests are built on it.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::Duration;

use dexlego_harness::json::Value;
use dexlego_store::hex::from_hex;
use dexlego_store::Key;

use crate::protocol::{parse_reply, parse_reply_line, ExtractRequest, Reply, Request, RequestId};

/// Why a [`PipelinedClient`] call failed, split by what the caller can
/// do about it.
#[derive(Debug)]
pub enum ClientError {
    /// No connection could be established. Retrying later may help;
    /// resending is safe because nothing was ever accepted.
    Connect {
        /// The address dialled.
        addr: String,
        /// How many dials were attempted before giving up.
        attempts: u32,
        /// The error from the final attempt.
        last: io::Error,
    },
    /// An established connection died mid-conversation. In-flight
    /// requests are in an unknown state; reconnect and resend anything
    /// idempotent.
    Lost(io::Error),
    /// The peer sent bytes that do not parse as the protocol. The
    /// connection is not trustworthy; do not resend on it.
    Protocol(String),
    /// A well-formed reply of the wrong shape for the call that was
    /// made (e.g. `overloaded` where only `ok` makes sense).
    Unexpected(String),
    /// Any other I/O failure (local resource limits, etc.).
    Io(io::Error),
}

impl ClientError {
    /// True when the transport is gone — the connection was never
    /// established or died underneath us — so reconnecting (and
    /// resending idempotent work) is the right response.
    #[must_use]
    pub fn is_transport(&self) -> bool {
        matches!(self, ClientError::Connect { .. } | ClientError::Lost(_))
    }

    /// Classifies an [`io::Error`] from an established connection:
    /// peer-gone kinds become [`ClientError::Lost`], everything else
    /// stays [`ClientError::Io`].
    fn from_io(e: io::Error) -> ClientError {
        match e.kind() {
            io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::NotConnected
            | io::ErrorKind::UnexpectedEof => ClientError::Lost(e),
            _ => ClientError::Io(e),
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect {
                addr,
                attempts,
                last,
            } => write!(
                f,
                "connect to {addr} failed after {attempts} attempts: {last}"
            ),
            ClientError::Lost(e) => write!(f, "connection lost: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::Unexpected(msg) => write!(f, "unexpected reply: {msg}"),
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ClientError> for io::Error {
    fn from(e: ClientError) -> io::Error {
        match e {
            ClientError::Connect { last, .. } => last,
            ClientError::Lost(inner) | ClientError::Io(inner) => inner,
            ClientError::Protocol(msg) | ClientError::Unexpected(msg) => {
                io::Error::new(io::ErrorKind::InvalidData, msg)
            }
        }
    }
}

/// Shorthand for pipelined-client results.
pub type ClientResult<T> = Result<T, ClientError>;

/// Capped exponential backoff for redialling a backend.
///
/// Starts at `start` and doubles on every [`Backoff::delay`] up to
/// `cap`; [`Backoff::reset`] rewinds after a successful connect. Purely
/// a schedule — the caller decides how many attempts to spend.
#[derive(Debug, Clone)]
pub struct Backoff {
    start: Duration,
    cap: Duration,
    next: Duration,
}

impl Backoff {
    /// A schedule that starts at `start_ms` and saturates at `cap_ms`.
    #[must_use]
    pub fn new(start_ms: u64, cap_ms: u64) -> Backoff {
        let start = Duration::from_millis(start_ms);
        Backoff {
            start,
            cap: Duration::from_millis(cap_ms.max(start_ms)),
            next: start,
        }
    }

    /// Returns the next delay and advances the schedule.
    pub fn delay(&mut self) -> Duration {
        let d = self.next;
        self.next = (self.next * 2).min(self.cap);
        d
    }

    /// Rewinds to the initial delay (call after a success).
    pub fn reset(&mut self) {
        self.next = self.start;
    }
}

impl Default for Backoff {
    /// 10ms doubling to 500ms — snappy enough for tests, polite enough
    /// for a restarting daemon.
    fn default() -> Backoff {
        Backoff::new(10, 500)
    }
}

/// The outcome of one `extract` round-trip.
#[derive(Debug, Clone, PartialEq)]
pub enum ExtractReply {
    /// The job succeeded; `dex` is the revealed, reassembled DEX.
    Done {
        /// Whether the result was served from the store.
        cached: bool,
        /// The revealed DEX bytes.
        dex: Vec<u8>,
        /// The full job report.
        report: Value,
    },
    /// The job ran but did not succeed.
    Failed {
        /// Terminal status label.
        job_status: String,
        /// Failure detail, if any.
        detail: Option<String>,
    },
    /// The daemon shed the request.
    Overloaded,
    /// The request's deadline passed before execution could start.
    DeadlineExceeded {
        /// How long the request waited before being shed, milliseconds.
        waited_ms: u64,
    },
}

/// Decodes an extract-shaped reply into an [`ExtractReply`].
///
/// # Errors
///
/// A malformed `ok` reply or a protocol-level `error` reply.
pub fn decode_extract_reply(reply: Reply) -> Result<ExtractReply, String> {
    match reply {
        Reply::Ok(value) => {
            let cached = value
                .get("cached")
                .and_then(Value::as_bool)
                .ok_or_else(|| "ok reply without \"cached\"".to_owned())?;
            let dex_hex = value
                .get("dex")
                .and_then(Value::as_str)
                .ok_or_else(|| "ok reply without \"dex\"".to_owned())?;
            let dex =
                from_hex(dex_hex).ok_or_else(|| "ok reply with non-hex \"dex\"".to_owned())?;
            let report = value.get("report").cloned().unwrap_or(Value::Null);
            Ok(ExtractReply::Done {
                cached,
                dex,
                report,
            })
        }
        Reply::Failed {
            job_status, detail, ..
        } => Ok(ExtractReply::Failed { job_status, detail }),
        Reply::Overloaded { .. } => Ok(ExtractReply::Overloaded),
        Reply::DeadlineExceeded { waited_ms } => Ok(ExtractReply::DeadlineExceeded { waited_ms }),
        Reply::Error(reason) => Err(reason),
    }
}

/// One connection to a `dexlegod` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7878"`).
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Request/reply lines are written whole; never wait on Nagle.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one raw request line without waiting for the reply. Pairing
    /// with [`Client::recv`] lets tests pipeline several requests to
    /// saturate the daemon's admission queue.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        // One write per line: interleaving payload and newline as separate
        // small writes stalls on Nagle + delayed-ACK.
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.writer.write_all(framed.as_bytes())?;
        self.writer.flush()
    }

    /// Reads and decodes one reply line.
    ///
    /// # Errors
    ///
    /// Read failures, a closed connection, or an undecodable reply.
    pub fn recv(&mut self) -> io::Result<Reply> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        parse_reply(line.trim_end()).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    fn round_trip(&mut self, line: &str) -> io::Result<Reply> {
        self.send_line(line)?;
        self.recv()
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-`ok` reply.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.round_trip(&Request::encode_simple("ping"))? {
            Reply::Ok(_) => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Submits one extraction and waits for the result.
    ///
    /// # Errors
    ///
    /// Transport failures, protocol errors, or a malformed `ok` reply.
    pub fn extract(&mut self, req: &ExtractRequest) -> io::Result<ExtractReply> {
        let reply = self.round_trip(&req.encode())?;
        decode_extract_reply(reply).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Fetches the service counters (the `"stats"` member of the reply).
    ///
    /// # Errors
    ///
    /// Transport failures or a non-`ok` reply.
    pub fn stats(&mut self) -> io::Result<Value> {
        match self.round_trip(&Request::encode_simple("stats"))? {
            Reply::Ok(value) => Ok(value.get("stats").cloned().unwrap_or(Value::Null)),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-`ok` reply.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.round_trip(&Request::encode_simple("shutdown"))? {
            Reply::Ok(_) => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(reply: &Reply) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected reply: {reply:?}"),
    )
}

/// The sending half of a pipelined connection.
///
/// Sends are buffered: a burst of sends goes out as one write on
/// [`PipelinedSender::flush`], so a window of requests costs one
/// syscall, not one per request. When the halves are split across
/// threads the sender **must** flush explicitly — the receiver cannot
/// reach over and do it.
pub struct PipelinedSender {
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl PipelinedSender {
    fn write_line(&mut self, line: &str) -> ClientResult<()> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .map_err(ClientError::from_io)
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Sends one extract request tagged with a fresh id, without
    /// waiting for any reply. Returns the id assigned.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn send_extract(&mut self, req: &ExtractRequest) -> ClientResult<u64> {
        let id = self.fresh_id();
        let line = req.encode_with_id(&RequestId::Num(id));
        self.write_line(&line)?;
        Ok(id)
    }

    /// Sends a simple tagged op (`ping`, `stats`, `shutdown`). Returns
    /// the id assigned.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn send_op(&mut self, op: &str) -> ClientResult<u64> {
        let id = self.fresh_id();
        let line = format!("{{\"op\": {:?}, \"id\": {id}}}", op);
        self.write_line(&line)?;
        Ok(id)
    }

    /// Asks the server to revoke the not-yet-dispatched request `target`
    /// (the hedged loser). Returns the id of the cancel itself.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn send_cancel(&mut self, target: u64) -> ClientResult<u64> {
        let id = self.fresh_id();
        let line = Request::encode_cancel(Some(&RequestId::Num(id)), &RequestId::Num(target));
        self.write_line(&line)?;
        Ok(id)
    }

    /// Offers the server a finished result for `key` (replication /
    /// read-repair); the server keeps it only if the key is absent.
    /// `entry_payload` is the store encoding of the result. Returns the
    /// id assigned.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn send_backfill(&mut self, key: &Key, entry_payload: &[u8]) -> ClientResult<u64> {
        let id = self.fresh_id();
        let line = Request::encode_backfill(Some(&RequestId::Num(id)), key, entry_payload);
        self.write_line(&line)?;
        Ok(id)
    }

    /// Asks the server for the stored entry under `key` (the
    /// replication read path). Returns the id assigned.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn send_fetch(&mut self, key: &Key) -> ClientResult<u64> {
        let id = self.fresh_id();
        let line = Request::encode_fetch(Some(&RequestId::Num(id)), key);
        self.write_line(&line)?;
        Ok(id)
    }

    /// Pushes any buffered requests onto the wire.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn flush(&mut self) -> ClientResult<()> {
        self.writer.flush().map_err(ClientError::from_io)
    }
}

/// The receiving half of a pipelined connection.
pub struct PipelinedReceiver {
    reader: BufReader<TcpStream>,
}

impl PipelinedReceiver {
    /// Reads the next reply line, whichever request it answers. Returns
    /// the echoed id (if the request carried one) and the decoded
    /// reply. Does **not** flush the sender first — a split caller owns
    /// that ordering.
    ///
    /// # Errors
    ///
    /// Read failures, a closed connection, or an undecodable reply.
    pub fn recv_any(&mut self) -> ClientResult<(Option<RequestId>, Reply)> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err(ClientError::Lost(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ))),
            Ok(_) => parse_reply_line(line.trim_end()).map_err(ClientError::Protocol),
            Err(e) => Err(ClientError::from_io(e)),
        }
    }
}

/// A blocking client that keeps many tagged requests in flight on one
/// connection and collects replies in completion order.
///
/// The caller owns the windowing policy: it decides how many sends to
/// issue before each receive. Ids are assigned by the client
/// ([`RequestId::Num`], monotonically increasing) and returned from
/// [`PipelinedClient::send_extract`] so callers can correlate. Ids stay
/// monotonic across [`PipelinedClient::reconnect`], so a reply that
/// somehow straggles in from a previous connection can never be
/// confused with a live request.
///
/// Sends are buffered: a burst of [`PipelinedClient::send_extract`]
/// calls goes out as one write when the client turns around to read (or
/// on [`PipelinedClient::flush`]), so a window of requests costs one
/// syscall, not one per request.
pub struct PipelinedClient {
    addr: String,
    tx: PipelinedSender,
    rx: PipelinedReceiver,
}

impl PipelinedClient {
    /// Connects to `addr` with a single dial attempt.
    ///
    /// # Errors
    ///
    /// Connection failures ([`ClientError::Connect`] with one attempt).
    pub fn connect(addr: &str) -> ClientResult<PipelinedClient> {
        PipelinedClient::connect_retry(addr, 1, &mut Backoff::default())
    }

    /// Connects to `addr`, redialling up to `attempts` times on refused
    /// or unreachable connections, sleeping `backoff` between dials.
    /// A daemon that is restarting (the window between its old socket
    /// dying and its new one listening) looks exactly like ECONNREFUSED,
    /// so a small retry budget here rides out restarts.
    ///
    /// # Errors
    ///
    /// [`ClientError::Connect`] after the final failed attempt.
    pub fn connect_retry(
        addr: &str,
        attempts: u32,
        backoff: &mut Backoff,
    ) -> ClientResult<PipelinedClient> {
        let attempts = attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(backoff.delay());
            }
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    backoff.reset();
                    return PipelinedClient::from_stream(addr, stream, 0);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ClientError::Connect {
            addr: addr.to_owned(),
            attempts,
            last: last.unwrap_or_else(|| io::Error::other("no connect attempt made")),
        })
    }

    fn from_stream(addr: &str, stream: TcpStream, next_id: u64) -> ClientResult<PipelinedClient> {
        stream.set_nodelay(true).map_err(ClientError::Io)?;
        let writer = BufWriter::new(stream.try_clone().map_err(ClientError::Io)?);
        Ok(PipelinedClient {
            addr: addr.to_owned(),
            tx: PipelinedSender { writer, next_id },
            rx: PipelinedReceiver {
                reader: BufReader::new(stream),
            },
        })
    }

    /// The address this client dials.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Drops the current connection and dials the same address again,
    /// redialling up to `attempts` times with `backoff` between dials.
    /// Replies to requests in flight on the old connection are gone;
    /// the id counter is preserved, so resent requests get fresh ids.
    ///
    /// # Errors
    ///
    /// [`ClientError::Connect`] after the final failed attempt.
    pub fn reconnect(&mut self, attempts: u32, backoff: &mut Backoff) -> ClientResult<()> {
        let next_id = self.tx.next_id;
        let attempts = attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(backoff.delay());
            }
            match TcpStream::connect(&self.addr) {
                Ok(stream) => {
                    backoff.reset();
                    *self = PipelinedClient::from_stream(&self.addr, stream, next_id)?;
                    return Ok(());
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ClientError::Connect {
            addr: self.addr.clone(),
            attempts,
            last: last.unwrap_or_else(|| io::Error::other("no connect attempt made")),
        })
    }

    /// Splits into independently-owned send and receive halves, so one
    /// thread can keep sending while another blocks in receive. The
    /// sender must [`flush`](PipelinedSender::flush) explicitly;
    /// receive-side auto-flush ends at the split.
    #[must_use]
    pub fn split(self) -> (PipelinedSender, PipelinedReceiver) {
        (self.tx, self.rx)
    }

    /// Sends one extract request tagged with a fresh id, without waiting
    /// for any reply (buffered until the next receive or
    /// [`PipelinedClient::flush`]). Returns the id assigned.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn send_extract(&mut self, req: &ExtractRequest) -> ClientResult<u64> {
        self.tx.send_extract(req)
    }

    /// Sends a simple tagged op (`ping`, `stats`, `shutdown`). Returns
    /// the id assigned.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn send_op(&mut self, op: &str) -> ClientResult<u64> {
        self.tx.send_op(op)
    }

    /// Sends a cancel for the not-yet-dispatched request `target`.
    /// Returns the id of the cancel request itself.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn send_cancel(&mut self, target: u64) -> ClientResult<u64> {
        self.tx.send_cancel(target)
    }

    /// Offers the server a finished result for `key`; kept only if
    /// absent. Returns the id assigned.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn send_backfill(&mut self, key: &Key, entry_payload: &[u8]) -> ClientResult<u64> {
        self.tx.send_backfill(key, entry_payload)
    }

    /// Asks the server for the stored entry under `key`. Returns the id
    /// assigned.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn send_fetch(&mut self, key: &Key) -> ClientResult<u64> {
        self.tx.send_fetch(key)
    }

    /// Pushes any buffered requests onto the wire without reading.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn flush(&mut self) -> ClientResult<()> {
        self.tx.flush()
    }

    /// Reads the next reply line, whichever request it answers. Returns
    /// the echoed id (if the request carried one) and the decoded reply.
    ///
    /// # Errors
    ///
    /// Read failures, a closed connection, or an undecodable reply.
    pub fn recv_any(&mut self) -> ClientResult<(Option<RequestId>, Reply)> {
        // Turnaround: nothing more will be sent before this read, so any
        // buffered requests must go out now or the reply never comes.
        self.tx.flush()?;
        self.rx.recv_any()
    }

    /// Like [`PipelinedClient::recv_any`], but decodes the reply as an
    /// extract outcome and requires a numeric id.
    ///
    /// # Errors
    ///
    /// Transport failures, an id-less or non-numeric-id reply, or a
    /// protocol `error` reply.
    pub fn recv_extract(&mut self) -> ClientResult<(u64, ExtractReply)> {
        let (id, reply) = self.recv_any()?;
        let Some(RequestId::Num(id)) = id else {
            return Err(ClientError::Unexpected(
                "reply without the numeric id this client sent".to_owned(),
            ));
        };
        let decoded = decode_extract_reply(reply).map_err(ClientError::Unexpected)?;
        Ok((id, decoded))
    }

    /// Asks the daemon to drain and exit (tagged, so it composes with
    /// in-flight extracts; the ok reply is awaited by id).
    ///
    /// # Errors
    ///
    /// Transport failures or a non-`ok` reply.
    pub fn shutdown(&mut self) -> ClientResult<()> {
        let id = self.tx.send_op("shutdown")?;
        self.tx.flush()?;
        loop {
            let (got, reply) = self.rx.recv_any()?;
            if got == Some(RequestId::Num(id)) {
                return match reply {
                    Reply::Ok(_) => Ok(()),
                    other => Err(ClientError::Unexpected(format!("{other:?}"))),
                };
            }
            // Replies to still-in-flight extracts may land first; skip.
        }
    }
}
