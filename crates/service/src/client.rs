//! Clients for the `dexlegod` wire protocol.
//!
//! [`Client`] is the original strictly-serial blocking client — one
//! request, one reply, in order. It sends no request ids, which the
//! server recognises as the compatibility contract: replies to id-less
//! requests always come back in request order, so this client keeps
//! working unchanged against the multiplexed server.
//!
//! [`PipelinedClient`] speaks the pipelined dialect: every request
//! carries an id, many may be in flight on one connection, and replies
//! arrive in whatever order the work finishes. The load harness and the
//! multiplexing tests are built on it.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;

use dexlego_harness::json::Value;
use dexlego_store::hex::from_hex;

use crate::protocol::{parse_reply, parse_reply_line, ExtractRequest, Reply, Request, RequestId};

/// The outcome of one `extract` round-trip.
#[derive(Debug, Clone, PartialEq)]
pub enum ExtractReply {
    /// The job succeeded; `dex` is the revealed, reassembled DEX.
    Done {
        /// Whether the result was served from the store.
        cached: bool,
        /// The revealed DEX bytes.
        dex: Vec<u8>,
        /// The full job report.
        report: Value,
    },
    /// The job ran but did not succeed.
    Failed {
        /// Terminal status label.
        job_status: String,
        /// Failure detail, if any.
        detail: Option<String>,
    },
    /// The daemon shed the request.
    Overloaded,
    /// The request's deadline passed before execution could start.
    DeadlineExceeded {
        /// How long the request waited before being shed, milliseconds.
        waited_ms: u64,
    },
}

/// Decodes an extract-shaped reply into an [`ExtractReply`].
fn decode_extract_reply(reply: Reply) -> io::Result<ExtractReply> {
    match reply {
        Reply::Ok(value) => {
            let cached = value
                .get("cached")
                .and_then(Value::as_bool)
                .ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "ok reply without \"cached\"")
                })?;
            let dex_hex = value.get("dex").and_then(Value::as_str).ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "ok reply without \"dex\"")
            })?;
            let dex = from_hex(dex_hex).ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "ok reply with non-hex \"dex\"")
            })?;
            let report = value.get("report").cloned().unwrap_or(Value::Null);
            Ok(ExtractReply::Done {
                cached,
                dex,
                report,
            })
        }
        Reply::Failed {
            job_status, detail, ..
        } => Ok(ExtractReply::Failed { job_status, detail }),
        Reply::Overloaded { .. } => Ok(ExtractReply::Overloaded),
        Reply::DeadlineExceeded { waited_ms } => Ok(ExtractReply::DeadlineExceeded { waited_ms }),
        Reply::Error(reason) => Err(io::Error::new(io::ErrorKind::InvalidData, reason)),
    }
}

/// One connection to a `dexlegod` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7878"`).
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Request/reply lines are written whole; never wait on Nagle.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one raw request line without waiting for the reply. Pairing
    /// with [`Client::recv`] lets tests pipeline several requests to
    /// saturate the daemon's admission queue.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        // One write per line: interleaving payload and newline as separate
        // small writes stalls on Nagle + delayed-ACK.
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.writer.write_all(framed.as_bytes())?;
        self.writer.flush()
    }

    /// Reads and decodes one reply line.
    ///
    /// # Errors
    ///
    /// Read failures, a closed connection, or an undecodable reply.
    pub fn recv(&mut self) -> io::Result<Reply> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        parse_reply(line.trim_end()).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    fn round_trip(&mut self, line: &str) -> io::Result<Reply> {
        self.send_line(line)?;
        self.recv()
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-`ok` reply.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.round_trip(&Request::encode_simple("ping"))? {
            Reply::Ok(_) => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Submits one extraction and waits for the result.
    ///
    /// # Errors
    ///
    /// Transport failures, protocol errors, or a malformed `ok` reply.
    pub fn extract(&mut self, req: &ExtractRequest) -> io::Result<ExtractReply> {
        let reply = self.round_trip(&req.encode())?;
        decode_extract_reply(reply)
    }

    /// Fetches the service counters (the `"stats"` member of the reply).
    ///
    /// # Errors
    ///
    /// Transport failures or a non-`ok` reply.
    pub fn stats(&mut self) -> io::Result<Value> {
        match self.round_trip(&Request::encode_simple("stats"))? {
            Reply::Ok(value) => Ok(value.get("stats").cloned().unwrap_or(Value::Null)),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-`ok` reply.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.round_trip(&Request::encode_simple("shutdown"))? {
            Reply::Ok(_) => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(reply: &Reply) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected reply: {reply:?}"),
    )
}

/// A blocking client that keeps many tagged requests in flight on one
/// connection and collects replies in completion order.
///
/// The caller owns the windowing policy: it decides how many sends to
/// issue before each receive. Ids are assigned by the client
/// ([`RequestId::Num`], monotonically increasing) and returned from
/// [`PipelinedClient::send_extract`] so callers can correlate.
///
/// Sends are buffered: a burst of [`PipelinedClient::send_extract`]
/// calls goes out as one write when the client turns around to read (or
/// on [`PipelinedClient::flush`]), so a window of requests costs one
/// syscall, not one per request.
pub struct PipelinedClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl PipelinedClient {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: &str) -> io::Result<PipelinedClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(PipelinedClient {
            reader: BufReader::new(stream),
            writer,
            next_id: 0,
        })
    }

    /// Sends one extract request tagged with a fresh id, without waiting
    /// for any reply (buffered until the next receive or
    /// [`PipelinedClient::flush`]). Returns the id assigned.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn send_extract(&mut self, req: &ExtractRequest) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let line = req.encode_with_id(&RequestId::Num(id));
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        Ok(id)
    }

    /// Pushes any buffered requests onto the wire without reading.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Reads the next reply line, whichever request it answers. Returns
    /// the echoed id (if the request carried one) and the decoded reply.
    ///
    /// # Errors
    ///
    /// Read failures, a closed connection, or an undecodable reply.
    pub fn recv_any(&mut self) -> io::Result<(Option<RequestId>, Reply)> {
        // Turnaround: nothing more will be sent before this read, so any
        // buffered requests must go out now or the reply never comes.
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        parse_reply_line(line.trim_end()).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Like [`PipelinedClient::recv_any`], but decodes the reply as an
    /// extract outcome and requires a numeric id.
    ///
    /// # Errors
    ///
    /// Transport failures, an id-less or non-numeric-id reply, or a
    /// protocol `error` reply.
    pub fn recv_extract(&mut self) -> io::Result<(u64, ExtractReply)> {
        let (id, reply) = self.recv_any()?;
        let Some(RequestId::Num(id)) = id else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "reply without the numeric id this client sent",
            ));
        };
        Ok((id, decode_extract_reply(reply)?))
    }

    /// Asks the daemon to drain and exit (tagged, so it composes with
    /// in-flight extracts; the ok reply is awaited by id).
    ///
    /// # Errors
    ///
    /// Transport failures or a non-`ok` reply.
    pub fn shutdown(&mut self) -> io::Result<()> {
        let id = self.next_id;
        self.next_id += 1;
        let line = format!("{{\"op\": \"shutdown\", \"id\": {id}}}\n");
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        loop {
            let (got, reply) = self.recv_any()?;
            if got == Some(RequestId::Num(id)) {
                return match reply {
                    Reply::Ok(_) => Ok(()),
                    other => Err(unexpected(&other)),
                };
            }
            // Replies to still-in-flight extracts may land first; skip.
        }
    }
}
