//! A minimal blocking client for the `dexlegod` wire protocol, used by
//! the `dexlegod-smoke` binary, the service benchmark, and the
//! integration tests.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

use dexlego_harness::json::Value;
use dexlego_store::hex::from_hex;

use crate::protocol::{parse_reply, ExtractRequest, Reply, Request};

/// The outcome of one `extract` round-trip.
#[derive(Debug, Clone, PartialEq)]
pub enum ExtractReply {
    /// The job succeeded; `dex` is the revealed, reassembled DEX.
    Done {
        /// Whether the result was served from the store.
        cached: bool,
        /// The revealed DEX bytes.
        dex: Vec<u8>,
        /// The full job report.
        report: Value,
    },
    /// The job ran but did not succeed.
    Failed {
        /// Terminal status label.
        job_status: String,
        /// Failure detail, if any.
        detail: Option<String>,
    },
    /// The daemon shed the request.
    Overloaded,
}

/// One connection to a `dexlegod` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7878"`).
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Request/reply lines are written whole; never wait on Nagle.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one raw request line without waiting for the reply. Pairing
    /// with [`Client::recv`] lets tests pipeline several requests to
    /// saturate the daemon's admission queue.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        // One write per line: interleaving payload and newline as separate
        // small writes stalls on Nagle + delayed-ACK.
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.writer.write_all(framed.as_bytes())?;
        self.writer.flush()
    }

    /// Reads and decodes one reply line.
    ///
    /// # Errors
    ///
    /// Read failures, a closed connection, or an undecodable reply.
    pub fn recv(&mut self) -> io::Result<Reply> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        parse_reply(line.trim_end()).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    fn round_trip(&mut self, line: &str) -> io::Result<Reply> {
        self.send_line(line)?;
        self.recv()
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-`ok` reply.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.round_trip(&Request::encode_simple("ping"))? {
            Reply::Ok(_) => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Submits one extraction and waits for the result.
    ///
    /// # Errors
    ///
    /// Transport failures, protocol errors, or a malformed `ok` reply.
    pub fn extract(&mut self, req: &ExtractRequest) -> io::Result<ExtractReply> {
        match self.round_trip(&req.encode())? {
            Reply::Ok(value) => {
                let cached = value
                    .get("cached")
                    .and_then(Value::as_bool)
                    .ok_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidData, "ok reply without \"cached\"")
                    })?;
                let dex_hex = value.get("dex").and_then(Value::as_str).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "ok reply without \"dex\"")
                })?;
                let dex = from_hex(dex_hex).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "ok reply with non-hex \"dex\"")
                })?;
                let report = value.get("report").cloned().unwrap_or(Value::Null);
                Ok(ExtractReply::Done {
                    cached,
                    dex,
                    report,
                })
            }
            Reply::Failed {
                job_status, detail, ..
            } => Ok(ExtractReply::Failed { job_status, detail }),
            Reply::Overloaded { .. } => Ok(ExtractReply::Overloaded),
            Reply::Error(reason) => Err(io::Error::new(io::ErrorKind::InvalidData, reason)),
        }
    }

    /// Fetches the service counters (the `"stats"` member of the reply).
    ///
    /// # Errors
    ///
    /// Transport failures or a non-`ok` reply.
    pub fn stats(&mut self) -> io::Result<Value> {
        match self.round_trip(&Request::encode_simple("stats"))? {
            Reply::Ok(value) => Ok(value.get("stats").cloned().unwrap_or(Value::Null)),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-`ok` reply.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.round_trip(&Request::encode_simple("shutdown"))? {
            Reply::Ok(_) => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(reply: &Reply) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected reply: {reply:?}"),
    )
}
