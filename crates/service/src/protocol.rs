//! The `dexlegod` wire protocol: newline-delimited JSON over TCP.
//!
//! Every request is one JSON object on one line with an `"op"` member;
//! every reply is one JSON object on one line with a `"status"` member.
//! DEX payloads travel as lowercase hex strings — bulky but dependency-free
//! and trivially debuggable with `nc`.
//!
//! ```text
//! → {"op": "ping"}
//! ← {"status": "ok"}
//! → {"op": "extract", "dex": "6465…", "entry": "Lapp/Main;", "packer": "360"}
//! ← {"status": "ok", "cached": false, "dex": "6465…", "report": {…}}
//! → {"op": "stats"}
//! ← {"status": "ok", "stats": {…}}
//! → {"op": "shutdown"}
//! ← {"status": "ok"}        (then the daemon drains and exits)
//! ```
//!
//! A saturated daemon answers `{"status": "overloaded", "in_flight": N}`
//! instead of queueing unboundedly; malformed input answers
//! `{"status": "error", "reason": "…"}` without closing the connection.

use dexlego_dex::reader::read_dex;
use dexlego_harness::json::{self, Value};
use dexlego_harness::{JobSpec, DEFAULT_FUEL};
use dexlego_packer::PackerId;
use dexlego_store::hex::{from_hex, to_hex};

/// One extraction request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractRequest {
    /// Job name for reports (a server-side sequence number if omitted).
    pub name: Option<String>,
    /// The original application DEX.
    pub dex: Vec<u8>,
    /// Entry activity descriptor.
    pub entry: String,
    /// Packer profile display name (`None` = plain app).
    pub packer: Option<String>,
    /// Fuzzing seeds; each drives one input session.
    pub seeds: Vec<u64>,
    /// Callback events per session.
    pub events: usize,
    /// Instruction budget.
    pub fuel: u64,
    /// Differentially check extracted behaviour.
    pub conformance: bool,
}

impl ExtractRequest {
    /// A request for `dex`/`entry` with the harness's default driving
    /// parameters.
    pub fn new(dex: Vec<u8>, entry: &str) -> ExtractRequest {
        ExtractRequest {
            name: None,
            dex,
            entry: entry.to_owned(),
            packer: None,
            seeds: vec![1],
            events: 2,
            fuel: DEFAULT_FUEL,
            conformance: false,
        }
    }

    /// Converts the request into a harness job.
    ///
    /// # Errors
    ///
    /// Unparseable DEX payloads and unknown packer names.
    pub fn to_spec(&self, fallback_name: &str) -> Result<JobSpec, String> {
        let dex = read_dex(&self.dex).map_err(|e| format!("bad dex payload: {e}"))?;
        let packer = match &self.packer {
            None => None,
            Some(name) => {
                Some(PackerId::by_name(name).ok_or_else(|| format!("unknown packer: {name}"))?)
            }
        };
        let mut spec = JobSpec::new(
            self.name.as_deref().unwrap_or(fallback_name),
            dex,
            &self.entry,
        );
        spec.packer = packer;
        spec.seeds = self.seeds.clone();
        spec.events = self.events;
        spec.fuel = self.fuel;
        spec.check_conformance = self.conformance;
        Ok(spec)
    }

    /// The request as one wire line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut members = vec![("op", json::string("extract"))];
        if let Some(name) = &self.name {
            members.push(("name", json::string(name)));
        }
        members.push(("dex", json::string(&to_hex(&self.dex))));
        members.push(("entry", json::string(&self.entry)));
        members.push((
            "packer",
            self.packer
                .as_deref()
                .map_or("null".to_owned(), json::string),
        ));
        let seeds: Vec<String> = self.seeds.iter().map(u64::to_string).collect();
        members.push(("seeds", json::array(&seeds)));
        members.push(("events", self.events.to_string()));
        members.push(("fuel", self.fuel.to_string()));
        members.push(("conformance", self.conformance.to_string()));
        json::object(&members)
    }
}

/// A decoded request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Service counters.
    Stats,
    /// Graceful drain-and-exit.
    Shutdown,
    /// One extraction.
    Extract(Box<ExtractRequest>),
}

impl Request {
    /// The request as one wire line, for ops without a payload.
    pub fn encode_simple(op: &str) -> String {
        json::object(&[("op", json::string(op))])
    }
}

/// Parses one request line.
///
/// # Errors
///
/// Malformed JSON, missing/unknown `op`, or invalid `extract` fields.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = json::parse(line)?;
    let op = value
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing \"op\"".to_owned())?;
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "extract" => {
            let dex_hex = value
                .get("dex")
                .and_then(Value::as_str)
                .ok_or_else(|| "extract: missing \"dex\"".to_owned())?;
            let dex =
                from_hex(dex_hex).ok_or_else(|| "extract: \"dex\" is not valid hex".to_owned())?;
            let entry = value
                .get("entry")
                .and_then(Value::as_str)
                .ok_or_else(|| "extract: missing \"entry\"".to_owned())?
                .to_owned();
            let packer = match value.get("packer") {
                None => None,
                Some(v) if v.is_null() => None,
                Some(v) => Some(
                    v.as_str()
                        .ok_or_else(|| "extract: \"packer\" must be a string or null".to_owned())?
                        .to_owned(),
                ),
            };
            let seeds = match value.get("seeds") {
                None => vec![1],
                Some(v) => v
                    .as_array()
                    .ok_or_else(|| "extract: \"seeds\" must be an array".to_owned())?
                    .iter()
                    .map(|s| {
                        s.as_u64()
                            .ok_or_else(|| "extract: seeds must be u64".to_owned())
                    })
                    .collect::<Result<Vec<u64>, String>>()?,
            };
            let u64_field = |key: &str, default: u64| -> Result<u64, String> {
                match value.get(key) {
                    None => Ok(default),
                    Some(v) => v
                        .as_u64()
                        .ok_or_else(|| format!("extract: \"{key}\" must be a u64")),
                }
            };
            let events = u64_field("events", 2)? as usize;
            let fuel = u64_field("fuel", DEFAULT_FUEL)?;
            let conformance = match value.get("conformance") {
                None => false,
                Some(v) => v
                    .as_bool()
                    .ok_or_else(|| "extract: \"conformance\" must be a boolean".to_owned())?,
            };
            let name = match value.get("name") {
                None => None,
                Some(v) => Some(
                    v.as_str()
                        .ok_or_else(|| "extract: \"name\" must be a string".to_owned())?
                        .to_owned(),
                ),
            };
            Ok(Request::Extract(Box::new(ExtractRequest {
                name,
                dex,
                entry,
                packer,
                seeds,
                events,
                fuel,
                conformance,
            })))
        }
        other => Err(format!("unknown op: {other}")),
    }
}

/// A decoded reply line, from the client's point of view.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// `{"status": "ok"}` with whatever extra members the op defines.
    Ok(Value),
    /// The job ran but did not succeed (timeout, verifier rejection, …).
    Failed {
        /// The job's terminal status label.
        job_status: String,
        /// Failure detail, if any.
        detail: Option<String>,
        /// The full job report.
        report: Value,
    },
    /// The daemon shed the request; retry later.
    Overloaded {
        /// Jobs admitted but not yet completed at rejection time.
        in_flight: u64,
    },
    /// Protocol-level error (malformed request, bad payload).
    Error(String),
}

/// Parses one reply line.
///
/// # Errors
///
/// Malformed JSON or a missing/unknown `status` member.
pub fn parse_reply(line: &str) -> Result<Reply, String> {
    let value = json::parse(line)?;
    let status = value
        .get("status")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing \"status\"".to_owned())?;
    match status {
        "ok" => Ok(Reply::Ok(value)),
        "failed" => {
            let job_status = value
                .get("job_status")
                .and_then(Value::as_str)
                .unwrap_or("unknown")
                .to_owned();
            let detail = value
                .get("detail")
                .and_then(Value::as_str)
                .map(str::to_owned);
            let report = value.get("report").cloned().unwrap_or(Value::Null);
            Ok(Reply::Failed {
                job_status,
                detail,
                report,
            })
        }
        "overloaded" => Ok(Reply::Overloaded {
            in_flight: value.get("in_flight").and_then(Value::as_u64).unwrap_or(0),
        }),
        "error" => Ok(Reply::Error(
            value
                .get("reason")
                .and_then(Value::as_str)
                .unwrap_or("unspecified")
                .to_owned(),
        )),
        other => Err(format!("unknown status: {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExtractRequest {
        ExtractRequest {
            name: Some("job-1".to_owned()),
            dex: vec![0x64, 0x65, 0x78, 0x00, 0xff],
            entry: "Lapp/Main;".to_owned(),
            packer: Some("360".to_owned()),
            seeds: vec![1, u64::MAX],
            events: 3,
            fuel: 5_000_000,
            conformance: true,
        }
    }

    #[test]
    fn extract_roundtrips_through_the_wire() {
        let req = sample();
        let line = req.encode();
        match parse_request(&line).unwrap() {
            Request::Extract(parsed) => assert_eq!(*parsed, req),
            other => panic!("parsed as {other:?}"),
        }
    }

    #[test]
    fn extract_defaults_apply() {
        let line = r#"{"op": "extract", "dex": "", "entry": "LMain;"}"#;
        match parse_request(line).unwrap() {
            Request::Extract(req) => {
                assert_eq!(req.seeds, vec![1]);
                assert_eq!(req.events, 2);
                assert_eq!(req.fuel, DEFAULT_FUEL);
                assert!(!req.conformance);
                assert_eq!(req.packer, None);
                assert_eq!(req.name, None);
            }
            other => panic!("parsed as {other:?}"),
        }
    }

    #[test]
    fn simple_ops_parse() {
        assert_eq!(
            parse_request(&Request::encode_simple("ping")).unwrap(),
            Request::Ping
        );
        assert_eq!(
            parse_request(&Request::encode_simple("stats")).unwrap(),
            Request::Stats
        );
        assert_eq!(
            parse_request(&Request::encode_simple("shutdown")).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [
            "",
            "{}",
            r#"{"op": "warp"}"#,
            r#"{"op": "extract"}"#,
            r#"{"op": "extract", "dex": "zz", "entry": "L;"}"#,
            r#"{"op": "extract", "dex": "", "entry": "L;", "seeds": [1.5]}"#,
            r#"{"op": "extract", "dex": "", "entry": "L;", "fuel": "lots"}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn to_spec_validates_payload_and_packer() {
        let mut req = sample();
        assert!(req.to_spec("fallback").is_err(), "garbage dex rejected");
        req.packer = Some("nonesuch".to_owned());
        assert!(req.to_spec("fallback").is_err());
    }

    #[test]
    fn replies_parse() {
        assert!(matches!(
            parse_reply(r#"{"status": "ok", "cached": true}"#).unwrap(),
            Reply::Ok(_)
        ));
        match parse_reply(r#"{"status": "failed", "job_status": "timeout"}"#).unwrap() {
            Reply::Failed { job_status, .. } => assert_eq!(job_status, "timeout"),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse_reply(r#"{"status": "overloaded", "in_flight": 7}"#).unwrap(),
            Reply::Overloaded { in_flight: 7 }
        );
        assert_eq!(
            parse_reply(r#"{"status": "error", "reason": "nope"}"#).unwrap(),
            Reply::Error("nope".to_owned())
        );
        assert!(parse_reply(r#"{"status": "odd"}"#).is_err());
    }
}
