//! The `dexlegod` wire protocol: newline-delimited JSON over TCP, with
//! optional request ids for pipelining.
//!
//! Every request is one JSON object on one line with an `"op"` member;
//! every reply is one JSON object on one line with a `"status"` member.
//! DEX payloads travel as lowercase hex strings — bulky but dependency-free
//! and trivially debuggable with `nc`.
//!
//! ```text
//! → {"op": "ping"}
//! ← {"status": "ok"}
//! → {"id": 7, "op": "extract", "dex": "6465…", "entry": "Lapp/Main;", "packer": "360"}
//! → {"id": 8, "op": "extract", "dex": "6465…", "entry": "Lapp/Other;"}
//! ← {"id": 8, "status": "ok", "cached": true, "dex": "6465…", "report": {…}}
//! ← {"id": 7, "status": "ok", "cached": false, "dex": "6465…", "report": {…}}
//! → {"op": "stats"}
//! ← {"status": "ok", "stats": {…}}
//! → {"op": "shutdown"}
//! ← {"status": "ok"}        (then the daemon drains and exits)
//! ```
//!
//! **Pipelining.** A request may carry an `"id"` (a string or a
//! non-negative integer). The reply to an id-carrying request echoes the
//! id and may arrive *out of order* — a connection can have many
//! extractions in flight at once. Requests *without* an id keep the
//! original one-in-flight contract: their replies come back in request
//! order, so the old blocking client keeps working unchanged.
//!
//! **Deadlines.** An `extract` may carry `"deadline_ms"`: the maximum
//! milliseconds the request may wait before execution starts. Work that
//! cannot start in time is shed with `{"status": "deadline_exceeded"}`
//! instead of occupying a worker.
//!
//! A saturated daemon answers `{"status": "overloaded", "in_flight": N}`
//! instead of queueing unboundedly; malformed input answers
//! `{"status": "error", "reason": "…"}` without closing the connection
//! (echoing the id whenever one could be recovered from the line).

use dexlego_dex::reader::read_dex;
use dexlego_harness::json::{self, Value};
use dexlego_harness::{JobSpec, DEFAULT_FUEL};
use dexlego_packer::PackerId;
use dexlego_store::entry::decode as decode_entry;
use dexlego_store::hex::{from_hex, to_hex};
use dexlego_store::{CachedResult, Key};

/// A request id: a client-chosen correlation token echoed verbatim on the
/// reply, enabling out-of-order responses on one connection.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RequestId {
    /// A non-negative integer id.
    Num(u64),
    /// A string id.
    Str(String),
}

impl RequestId {
    /// The id as a JSON token (numbers bare, strings quoted/escaped).
    pub fn encode(&self) -> String {
        match self {
            RequestId::Num(n) => n.to_string(),
            RequestId::Str(s) => json::string(s),
        }
    }

    /// Extracts the `"id"` member of a parsed request or reply object.
    /// `Ok(None)` when absent; `Err` when present but neither a string nor
    /// a non-negative integer.
    pub fn from_value(value: &Value) -> Result<Option<RequestId>, String> {
        match value.get("id") {
            None => Ok(None),
            Some(Value::Str(s)) => Ok(Some(RequestId::Str(s.clone()))),
            Some(v @ Value::Num(_)) => v
                .as_u64()
                .map(|n| Some(RequestId::Num(n)))
                .ok_or_else(|| "\"id\" must be a string or a non-negative integer".to_owned()),
            Some(_) => Err("\"id\" must be a string or a non-negative integer".to_owned()),
        }
    }
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestId::Num(n) => write!(f, "{n}"),
            RequestId::Str(s) => f.write_str(s),
        }
    }
}

/// One extraction request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractRequest {
    /// Job name for reports (a server-side sequence number if omitted).
    pub name: Option<String>,
    /// The original application DEX.
    pub dex: Vec<u8>,
    /// Entry activity descriptor.
    pub entry: String,
    /// Packer profile display name (`None` = plain app).
    pub packer: Option<String>,
    /// Fuzzing seeds; each drives one input session.
    pub seeds: Vec<u64>,
    /// Callback events per session.
    pub events: usize,
    /// Instruction budget.
    pub fuel: u64,
    /// Differentially check extracted behaviour.
    pub conformance: bool,
    /// Maximum milliseconds the request may wait before execution starts;
    /// past it the daemon sheds the request with `deadline_exceeded`
    /// instead of running it. `None` = wait indefinitely. Not part of the
    /// cache key — it shapes scheduling, not the result.
    pub deadline_ms: Option<u64>,
    /// Ask the daemon to attach the encoded store entry (`"entry"`, hex)
    /// to a successful reply — the routing tier uses it to replicate and
    /// read-repair results across backends without re-extracting. Not part
    /// of the cache key; omitted from the wire when false, so old lines
    /// stay byte-identical.
    pub want_entry: bool,
}

impl ExtractRequest {
    /// A request for `dex`/`entry` with the harness's default driving
    /// parameters.
    pub fn new(dex: Vec<u8>, entry: &str) -> ExtractRequest {
        ExtractRequest {
            name: None,
            dex,
            entry: entry.to_owned(),
            packer: None,
            seeds: vec![1],
            events: 2,
            fuel: DEFAULT_FUEL,
            conformance: false,
            deadline_ms: None,
            want_entry: false,
        }
    }

    /// Converts the request into a harness job.
    ///
    /// # Errors
    ///
    /// Unparseable DEX payloads and unknown packer names.
    pub fn to_spec(&self, fallback_name: &str) -> Result<JobSpec, String> {
        let dex = read_dex(&self.dex).map_err(|e| format!("bad dex payload: {e}"))?;
        let packer = match &self.packer {
            None => None,
            Some(name) => {
                Some(PackerId::by_name(name).ok_or_else(|| format!("unknown packer: {name}"))?)
            }
        };
        let mut spec = JobSpec::new(
            self.name.as_deref().unwrap_or(fallback_name),
            dex,
            &self.entry,
        );
        spec.packer = packer;
        spec.seeds = self.seeds.clone();
        spec.events = self.events;
        spec.fuel = self.fuel;
        spec.check_conformance = self.conformance;
        Ok(spec)
    }

    /// The request as one wire line (no trailing newline), without an id —
    /// the original one-in-flight mode.
    pub fn encode(&self) -> String {
        self.encode_inner(None)
    }

    /// The request as one wire line carrying `id`, for pipelined mode.
    pub fn encode_with_id(&self, id: &RequestId) -> String {
        self.encode_inner(Some(id))
    }

    fn encode_inner(&self, id: Option<&RequestId>) -> String {
        let encoded_id = id.map(RequestId::encode);
        let mut members = Vec::new();
        if let Some(encoded) = &encoded_id {
            members.push(("id", encoded.clone()));
        }
        members.push(("op", json::string("extract")));
        if let Some(name) = &self.name {
            members.push(("name", json::string(name)));
        }
        members.push(("dex", json::string(&to_hex(&self.dex))));
        members.push(("entry", json::string(&self.entry)));
        members.push((
            "packer",
            self.packer
                .as_deref()
                .map_or("null".to_owned(), json::string),
        ));
        let seeds: Vec<String> = self.seeds.iter().map(u64::to_string).collect();
        members.push(("seeds", json::array(&seeds)));
        members.push(("events", self.events.to_string()));
        members.push(("fuel", self.fuel.to_string()));
        members.push(("conformance", self.conformance.to_string()));
        if let Some(deadline) = self.deadline_ms {
            members.push(("deadline_ms", deadline.to_string()));
        }
        if self.want_entry {
            members.push(("want_entry", "true".to_owned()));
        }
        json::object(&members)
    }
}

/// A decoded request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Service counters.
    Stats,
    /// Graceful drain-and-exit.
    Shutdown,
    /// One extraction.
    Extract(Box<ExtractRequest>),
    /// Best-effort cancellation of a still-pending tagged request on the
    /// same connection (`"target"` is its id). A request already handed to
    /// a worker keeps running; the reply reports which case applied. The
    /// router uses this to revoke the losing half of a hedged pair so
    /// wasted hedges do not occupy backend queue slots.
    Cancel(RequestId),
    /// Injects an already-extracted result into the daemon's store without
    /// running the pipeline: `"key"` is the 40-hex content address,
    /// `"entry"` the hex-encoded store payload. Write-if-absent — a local
    /// fill always beats a backfill. This is the replication/read-repair
    /// write path of the routing tier.
    Backfill {
        /// Content address the entry claims to answer.
        key: Key,
        /// The decoded entry payload.
        entry: Box<CachedResult>,
    },
    /// Reads the store entry for `"key"` without running anything: the
    /// reply is `{"found": bool}` plus the hex `"entry"` payload when
    /// present. This is the replication/read-repair *read* path — the
    /// routing tier pulls the entry off the hot path instead of asking
    /// every extract reply to carry it.
    Fetch(Key),
}

impl Request {
    /// The request as one wire line, for ops without a payload.
    pub fn encode_simple(op: &str) -> String {
        json::object(&[("op", json::string(op))])
    }

    /// A `cancel` line (optionally tagged with its own `id`) revoking the
    /// pending request whose id is `target`.
    pub fn encode_cancel(id: Option<&RequestId>, target: &RequestId) -> String {
        let mut members = Vec::new();
        if let Some(id) = id {
            members.push(("id", id.encode()));
        }
        members.push(("op", json::string("cancel")));
        members.push(("target", target.encode()));
        json::object(&members)
    }

    /// A `backfill` line (optionally tagged) carrying `entry_payload` — the
    /// output of `dexlego_store::entry::encode` — for `key`.
    pub fn encode_backfill(id: Option<&RequestId>, key: &Key, entry_payload: &[u8]) -> String {
        let mut members = Vec::new();
        if let Some(id) = id {
            members.push(("id", id.encode()));
        }
        members.push(("op", json::string("backfill")));
        members.push(("key", json::string(&key.to_hex())));
        members.push(("entry", json::string(&to_hex(entry_payload))));
        json::object(&members)
    }

    /// A `fetch` line (optionally tagged) asking for the stored entry
    /// under `key`.
    pub fn encode_fetch(id: Option<&RequestId>, key: &Key) -> String {
        let mut members = Vec::new();
        if let Some(id) = id {
            members.push(("id", id.encode()));
        }
        members.push(("op", json::string("fetch")));
        members.push(("key", json::string(&key.to_hex())));
        json::object(&members)
    }
}

/// Parses one request line, discarding any id.
///
/// # Errors
///
/// Malformed JSON, missing/unknown `op`, or invalid `extract` fields.
pub fn parse_request(line: &str) -> Result<Request, String> {
    parse_request_line(line).1
}

/// Parses one request line into its id (if any) and request.
///
/// The id comes back even when the request itself is in error, as long as
/// the line was valid JSON with a well-formed `"id"` member — the server
/// echoes it on the error reply so a pipelining client can correlate the
/// failure. A malformed id is itself a request error (with no id echoed:
/// echoing a token the client did not send would corrupt correlation).
pub fn parse_request_line(line: &str) -> (Option<RequestId>, Result<Request, String>) {
    let value = match json::parse(line) {
        Ok(value) => value,
        Err(e) => return (None, Err(e)),
    };
    let id = match RequestId::from_value(&value) {
        Ok(id) => id,
        Err(e) => return (None, Err(e)),
    };
    (id, request_from_value(&value))
}

fn request_from_value(value: &Value) -> Result<Request, String> {
    let op = value
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing \"op\"".to_owned())?;
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "cancel" => {
            let target = value
                .get("target")
                .ok_or_else(|| "cancel: missing \"target\"".to_owned())?;
            let target = match target {
                Value::Str(s) => RequestId::Str(s.clone()),
                v @ Value::Num(_) => RequestId::Num(v.as_u64().ok_or_else(|| {
                    "cancel: \"target\" must be a string or non-negative integer".to_owned()
                })?),
                _ => {
                    return Err(
                        "cancel: \"target\" must be a string or non-negative integer".to_owned(),
                    )
                }
            };
            Ok(Request::Cancel(target))
        }
        "backfill" => {
            let key = value
                .get("key")
                .and_then(Value::as_str)
                .and_then(Key::from_hex)
                .ok_or_else(|| "backfill: \"key\" must be 40 hex characters".to_owned())?;
            let payload = value
                .get("entry")
                .and_then(Value::as_str)
                .and_then(from_hex)
                .ok_or_else(|| "backfill: \"entry\" must be a hex string".to_owned())?;
            let entry = decode_entry(&payload).map_err(|e| format!("backfill: bad entry: {e}"))?;
            Ok(Request::Backfill {
                key,
                entry: Box::new(entry),
            })
        }
        "fetch" => {
            let key = value
                .get("key")
                .and_then(Value::as_str)
                .and_then(Key::from_hex)
                .ok_or_else(|| "fetch: \"key\" must be 40 hex characters".to_owned())?;
            Ok(Request::Fetch(key))
        }
        "extract" => {
            let dex_hex = value
                .get("dex")
                .and_then(Value::as_str)
                .ok_or_else(|| "extract: missing \"dex\"".to_owned())?;
            let dex =
                from_hex(dex_hex).ok_or_else(|| "extract: \"dex\" is not valid hex".to_owned())?;
            let entry = value
                .get("entry")
                .and_then(Value::as_str)
                .ok_or_else(|| "extract: missing \"entry\"".to_owned())?
                .to_owned();
            let packer = match value.get("packer") {
                None => None,
                Some(v) if v.is_null() => None,
                Some(v) => Some(
                    v.as_str()
                        .ok_or_else(|| "extract: \"packer\" must be a string or null".to_owned())?
                        .to_owned(),
                ),
            };
            let seeds = match value.get("seeds") {
                None => vec![1],
                Some(v) => v
                    .as_array()
                    .ok_or_else(|| "extract: \"seeds\" must be an array".to_owned())?
                    .iter()
                    .map(|s| {
                        s.as_u64()
                            .ok_or_else(|| "extract: seeds must be u64".to_owned())
                    })
                    .collect::<Result<Vec<u64>, String>>()?,
            };
            let u64_field = |key: &str, default: u64| -> Result<u64, String> {
                match value.get(key) {
                    None => Ok(default),
                    Some(v) => v
                        .as_u64()
                        .ok_or_else(|| format!("extract: \"{key}\" must be a u64")),
                }
            };
            let events = u64_field("events", 2)? as usize;
            let fuel = u64_field("fuel", DEFAULT_FUEL)?;
            let deadline_ms = match value.get("deadline_ms") {
                None => None,
                Some(v) => Some(
                    v.as_u64()
                        .ok_or_else(|| "extract: \"deadline_ms\" must be a u64".to_owned())?,
                ),
            };
            let conformance = match value.get("conformance") {
                None => false,
                Some(v) => v
                    .as_bool()
                    .ok_or_else(|| "extract: \"conformance\" must be a boolean".to_owned())?,
            };
            let name = match value.get("name") {
                None => None,
                Some(v) => Some(
                    v.as_str()
                        .ok_or_else(|| "extract: \"name\" must be a string".to_owned())?
                        .to_owned(),
                ),
            };
            let want_entry = match value.get("want_entry") {
                None => false,
                Some(v) => v
                    .as_bool()
                    .ok_or_else(|| "extract: \"want_entry\" must be a boolean".to_owned())?,
            };
            Ok(Request::Extract(Box::new(ExtractRequest {
                name,
                dex,
                entry,
                packer,
                seeds,
                events,
                fuel,
                conformance,
                deadline_ms,
                want_entry,
            })))
        }
        other => Err(format!("unknown op: {other}")),
    }
}

/// A decoded reply line, from the client's point of view.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// `{"status": "ok"}` with whatever extra members the op defines.
    Ok(Value),
    /// The job ran but did not succeed (timeout, verifier rejection, …).
    Failed {
        /// The job's terminal status label.
        job_status: String,
        /// Failure detail, if any.
        detail: Option<String>,
        /// The full job report.
        report: Value,
    },
    /// The daemon shed the request; retry later.
    Overloaded {
        /// Jobs admitted but not yet completed at rejection time.
        in_flight: u64,
    },
    /// The request's deadline passed before execution could start.
    DeadlineExceeded {
        /// How long the request actually waited, milliseconds.
        waited_ms: u64,
    },
    /// Protocol-level error (malformed request, bad payload).
    Error(String),
}

/// Parses one reply line, discarding any id.
///
/// # Errors
///
/// Malformed JSON or a missing/unknown `status` member.
pub fn parse_reply(line: &str) -> Result<Reply, String> {
    parse_reply_line(line).map(|(_, reply)| reply)
}

/// Parses one reply line into its echoed id (if any) and reply — the
/// pipelined client's receive path.
///
/// # Errors
///
/// Malformed JSON, a malformed id, or a missing/unknown `status` member.
pub fn parse_reply_line(line: &str) -> Result<(Option<RequestId>, Reply), String> {
    let value = json::parse(line)?;
    let id = RequestId::from_value(&value)?;
    let reply = reply_from_value(value)?;
    Ok((id, reply))
}

fn reply_from_value(value: Value) -> Result<Reply, String> {
    let status = value
        .get("status")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing \"status\"".to_owned())?;
    match status {
        "ok" => Ok(Reply::Ok(value)),
        "failed" => {
            let job_status = value
                .get("job_status")
                .and_then(Value::as_str)
                .unwrap_or("unknown")
                .to_owned();
            let detail = value
                .get("detail")
                .and_then(Value::as_str)
                .map(str::to_owned);
            let report = value.get("report").cloned().unwrap_or(Value::Null);
            Ok(Reply::Failed {
                job_status,
                detail,
                report,
            })
        }
        "overloaded" => Ok(Reply::Overloaded {
            in_flight: value.get("in_flight").and_then(Value::as_u64).unwrap_or(0),
        }),
        "deadline_exceeded" => Ok(Reply::DeadlineExceeded {
            waited_ms: value.get("waited_ms").and_then(Value::as_u64).unwrap_or(0),
        }),
        "error" => Ok(Reply::Error(
            value
                .get("reason")
                .and_then(Value::as_str)
                .unwrap_or("unspecified")
                .to_owned(),
        )),
        other => Err(format!("unknown status: {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExtractRequest {
        ExtractRequest {
            name: Some("job-1".to_owned()),
            dex: vec![0x64, 0x65, 0x78, 0x00, 0xff],
            entry: "Lapp/Main;".to_owned(),
            packer: Some("360".to_owned()),
            seeds: vec![1, u64::MAX],
            events: 3,
            fuel: 5_000_000,
            conformance: true,
            deadline_ms: Some(250),
            want_entry: true,
        }
    }

    #[test]
    fn extract_roundtrips_through_the_wire() {
        let req = sample();
        let line = req.encode();
        let (id, parsed) = parse_request_line(&line);
        assert_eq!(id, None);
        match parsed.unwrap() {
            Request::Extract(parsed) => assert_eq!(*parsed, req),
            other => panic!("parsed as {other:?}"),
        }
    }

    #[test]
    fn ids_roundtrip_in_both_directions() {
        let req = sample();
        for id in [RequestId::Num(42), RequestId::Str("job/7 \"q\"".to_owned())] {
            let line = req.encode_with_id(&id);
            let (parsed_id, parsed) = parse_request_line(&line);
            assert_eq!(parsed_id.as_ref(), Some(&id));
            match parsed.unwrap() {
                Request::Extract(parsed) => assert_eq!(*parsed, req),
                other => panic!("parsed as {other:?}"),
            }
            let reply = format!("{{\"id\": {}, \"status\": \"ok\"}}", id.encode());
            let (echoed, reply) = parse_reply_line(&reply).unwrap();
            assert_eq!(echoed, Some(id));
            assert!(matches!(reply, Reply::Ok(_)));
        }
    }

    #[test]
    fn bad_ids_are_request_errors_that_still_parse_the_rest() {
        for bad in [
            r#"{"id": -3, "op": "ping"}"#,
            r#"{"id": 1.5, "op": "ping"}"#,
            r#"{"id": [1], "op": "ping"}"#,
            r#"{"id": null, "op": "ping"}"#,
        ] {
            let (id, parsed) = parse_request_line(bad);
            assert_eq!(id, None, "{bad}");
            assert!(parsed.is_err(), "{bad} accepted");
        }
        // An id on a bad op still comes back for the error reply.
        let (id, parsed) = parse_request_line(r#"{"id": 9, "op": "warp"}"#);
        assert_eq!(id, Some(RequestId::Num(9)));
        assert!(parsed.is_err());
    }

    #[test]
    fn extract_defaults_apply() {
        let line = r#"{"op": "extract", "dex": "", "entry": "LMain;"}"#;
        match parse_request(line).unwrap() {
            Request::Extract(req) => {
                assert_eq!(req.seeds, vec![1]);
                assert_eq!(req.events, 2);
                assert_eq!(req.fuel, DEFAULT_FUEL);
                assert!(!req.conformance);
                assert_eq!(req.packer, None);
                assert_eq!(req.name, None);
                assert_eq!(req.deadline_ms, None);
                assert!(!req.want_entry);
            }
            other => panic!("parsed as {other:?}"),
        }
    }

    #[test]
    fn cancel_roundtrips_and_validates() {
        let line = Request::encode_cancel(Some(&RequestId::Num(3)), &RequestId::Num(7));
        let (id, parsed) = parse_request_line(&line);
        assert_eq!(id, Some(RequestId::Num(3)));
        assert_eq!(parsed.unwrap(), Request::Cancel(RequestId::Num(7)));
        let line = Request::encode_cancel(None, &RequestId::Str("j/1".to_owned()));
        assert_eq!(
            parse_request(&line).unwrap(),
            Request::Cancel(RequestId::Str("j/1".to_owned()))
        );
        for bad in [
            r#"{"op": "cancel"}"#,
            r#"{"op": "cancel", "target": -1}"#,
            r#"{"op": "cancel", "target": [7]}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad} accepted");
        }
    }

    #[test]
    fn backfill_roundtrips_and_validates() {
        let entry = CachedResult {
            dex_bytes: vec![1, 2, 3],
            wall_us: 7,
            ..CachedResult::default()
        };
        let key = Key::new([0xab; 20]);
        let payload = dexlego_store::entry::encode(&entry);
        let line = Request::encode_backfill(None, &key, &payload);
        match parse_request(&line).unwrap() {
            Request::Backfill {
                key: parsed_key,
                entry: parsed_entry,
            } => {
                assert_eq!(parsed_key, key);
                assert_eq!(*parsed_entry, entry);
            }
            other => panic!("parsed as {other:?}"),
        }
        for bad in [
            r#"{"op": "backfill"}"#,
            r#"{"op": "backfill", "key": "ab", "entry": ""}"#,
            r#"{"op": "backfill", "key": "abababababababababababababababababababab", "entry": "zz"}"#,
            // Well-formed hex that is not a valid entry payload.
            r#"{"op": "backfill", "key": "abababababababababababababababababababab", "entry": "00"}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad} accepted");
        }
    }

    #[test]
    fn fetch_roundtrips_and_validates() {
        let key = Key::new([0xcd; 20]);
        let line = Request::encode_fetch(Some(&RequestId::Num(9)), &key);
        let (id, parsed) = parse_request_line(&line);
        assert_eq!(id, Some(RequestId::Num(9)));
        assert_eq!(parsed.unwrap(), Request::Fetch(key));
        for bad in [
            r#"{"op": "fetch"}"#,
            r#"{"op": "fetch", "key": "ab"}"#,
            r#"{"op": "fetch", "key": 7}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad} accepted");
        }
    }

    #[test]
    fn simple_ops_parse() {
        assert_eq!(
            parse_request(&Request::encode_simple("ping")).unwrap(),
            Request::Ping
        );
        assert_eq!(
            parse_request(&Request::encode_simple("stats")).unwrap(),
            Request::Stats
        );
        assert_eq!(
            parse_request(&Request::encode_simple("shutdown")).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [
            "",
            "{}",
            r#"{"op": "warp"}"#,
            r#"{"op": "extract"}"#,
            r#"{"op": "extract", "dex": "zz", "entry": "L;"}"#,
            r#"{"op": "extract", "dex": "", "entry": "L;", "seeds": [1.5]}"#,
            r#"{"op": "extract", "dex": "", "entry": "L;", "fuel": "lots"}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn to_spec_validates_payload_and_packer() {
        let mut req = sample();
        assert!(req.to_spec("fallback").is_err(), "garbage dex rejected");
        req.packer = Some("nonesuch".to_owned());
        assert!(req.to_spec("fallback").is_err());
    }

    #[test]
    fn replies_parse() {
        assert!(matches!(
            parse_reply(r#"{"status": "ok", "cached": true}"#).unwrap(),
            Reply::Ok(_)
        ));
        match parse_reply(r#"{"status": "failed", "job_status": "timeout"}"#).unwrap() {
            Reply::Failed { job_status, .. } => assert_eq!(job_status, "timeout"),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse_reply(r#"{"status": "overloaded", "in_flight": 7}"#).unwrap(),
            Reply::Overloaded { in_flight: 7 }
        );
        assert_eq!(
            parse_reply(r#"{"status": "deadline_exceeded", "waited_ms": 31}"#).unwrap(),
            Reply::DeadlineExceeded { waited_ms: 31 }
        );
        assert_eq!(
            parse_reply(r#"{"status": "error", "reason": "nope"}"#).unwrap(),
            Reply::Error("nope".to_owned())
        );
        assert!(parse_reply(r#"{"status": "odd"}"#).is_err());
    }
}
