// `deny` rather than `forbid`: the two readiness-backend FFI submodules in
// `poll` opt back in with a scoped `allow`; everything else stays safe.
#![deny(unsafe_code)]

//! `dexlegod`: a persistent extraction service in front of the DexLego
//! pipeline.
//!
//! Batch extraction (the `dexlego-harness` crate) pays the full
//! collect/reassemble cost for every job, every run. In practice the same
//! packed application is analysed repeatedly — across experiment reruns,
//! across analysts, across tool versions that only change downstream
//! stages. This crate keeps the pipeline warm behind a daemon:
//!
//! - [`server`] — the daemon itself: a single-threaded readiness-based
//!   event loop ([`poll`]: epoll on Linux, portable `poll(2)` fallback)
//!   multiplexing every connection, speaking pipelined newline-delimited
//!   JSON ([`protocol`], framed by [`framing`]) with optional request ids
//!   and deadlines, dispatching extractions round-robin onto a bounded
//!   [`JobPool`] and shedding load with structured `overloaded` /
//!   `deadline_exceeded` replies instead of queueing unboundedly, with
//!   graceful drain on shutdown.
//! - results are content-addressed into the persistent `dexlego-store`:
//!   a repeated request is served from disk, byte-identical to the fresh
//!   extraction, and a corrupted entry is quarantined and transparently
//!   re-extracted.
//! - [`client`] — the original blocking [`Client`] (id-less, strictly
//!   ordered — the compatibility dialect) and the [`PipelinedClient`]
//!   that keeps many tagged requests in flight, used by the `dexlegod`
//!   binaries, the latency-distribution load harness in `dexlego-bench`,
//!   and the integration tests.
//!
//! [`JobPool`]: dexlego_harness::JobPool

pub mod client;
pub mod framing;
pub mod poll;
pub mod protocol;
pub mod server;

pub use client::{
    decode_extract_reply, Backoff, Client, ClientError, ClientResult, ExtractReply,
    PipelinedClient, PipelinedReceiver, PipelinedSender,
};
pub use framing::{FrameError, Framer};
pub use poll::Backend;
pub use protocol::{
    parse_reply, parse_reply_line, parse_request, parse_request_line, ExtractRequest, Reply,
    Request, RequestId,
};
pub use server::{Daemon, ServiceConfig};
