#![forbid(unsafe_code)]

//! `dexlegod`: a persistent extraction service in front of the DexLego
//! pipeline.
//!
//! Batch extraction (the `dexlego-harness` crate) pays the full
//! collect/reassemble cost for every job, every run. In practice the same
//! packed application is analysed repeatedly — across experiment reruns,
//! across analysts, across tool versions that only change downstream
//! stages. This crate keeps the pipeline warm behind a daemon:
//!
//! - [`server`] — the daemon itself: a `TcpListener` accept loop speaking
//!   newline-delimited JSON ([`protocol`]), dispatching extractions onto a
//!   bounded [`JobPool`] and answering `overloaded` instead of queueing
//!   unboundedly, with graceful drain on shutdown.
//! - results are content-addressed into the persistent `dexlego-store`:
//!   a repeated request is served from disk, byte-identical to the fresh
//!   extraction, and a corrupted entry is quarantined and transparently
//!   re-extracted.
//! - [`client`] — a small blocking client used by the `dexlegod-smoke`
//!   binary, the service benchmark, and the integration tests.
//!
//! [`JobPool`]: dexlego_harness::JobPool

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ExtractReply};
pub use protocol::{parse_reply, parse_request, ExtractRequest, Reply, Request};
pub use server::{Daemon, ServiceConfig};
