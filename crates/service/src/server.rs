//! The `dexlegod` daemon: a readiness-based event loop multiplexing every
//! client connection onto one thread, dispatching extractions onto a
//! persistent [`JobPool`] with per-request caching through the
//! content-addressed result [`Store`].
//!
//! Concurrency shape:
//!
//! - **one event-loop thread** owns the listener and every connection —
//!   nonblocking sockets behind an epoll/poll [`Poller`](crate::poll),
//!   per-connection read framers that survive partial reads and write
//!   buffers that survive short writes;
//! - **the shared worker pool** executes extractions; workers hand results
//!   back through a completion queue plus a wake pipe, so the loop never
//!   blocks on a job;
//! - **pipelining**: requests carrying an `id` get their replies as soon
//!   as the job finishes, in any order; id-less requests keep the old
//!   strictly-ordered one-reply-per-request contract via per-connection
//!   sequence slots.
//!
//! Load discipline:
//!
//! - **per-client fairness** — parsed extract requests wait in a
//!   per-connection queue; a round-robin scheduler feeds the pool one
//!   request per connection per turn, so one firehose client cannot starve
//!   the rest;
//! - **bounded queues everywhere** — a connection may hold at most
//!   `max_pending_per_conn` undispatched requests; beyond that the newest
//!   are shed with `overloaded` (with the bound at 0 this degenerates to
//!   the old shed-when-pool-full behaviour);
//! - **deadline shedding** — a request whose `deadline_ms` passes before
//!   execution starts is answered `deadline_exceeded` without occupying a
//!   worker;
//! - **write backpressure** — a client that stops reading accumulates
//!   replies up to a soft cap, after which the server stops reading (and
//!   therefore stops accepting work) from that connection until it drains.
//!
//! Cache hits bypass admission control: if the store already holds the
//! result, the loop serves it inline instead of failing a cheap read just
//! because the extraction queue is full. (A corrupt entry falls through to
//! a normal pool dispatch rather than running the pipeline on the loop.)

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use dexlego_harness::cache::{from_cached, to_cached};
use dexlego_harness::{execute_job_cached, job_key, JobPool, JobReport, JobSpec, PoolExecutor};
use dexlego_harness::{json, JobResult};
use dexlego_store::entry::encode as encode_entry;
use dexlego_store::{Store, StoreConfig, StoreStats};

use crate::framing::Framer;
use crate::poll::{Backend, Event, Interest, Poller};
use crate::protocol::{parse_request_line, Request, RequestId};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Extraction worker threads.
    pub workers: usize,
    /// Pool admission queue depth (jobs queued beyond the ones executing).
    pub queue_depth: usize,
    /// Result store configuration.
    pub store: StoreConfig,
    /// Readiness backend; `None` resolves `DEXLEGO_POLL_BACKEND`, then the
    /// platform default (epoll on Linux, poll elsewhere).
    pub backend: Option<Backend>,
    /// Undispatched extract requests a single connection may queue in the
    /// event loop; arrivals beyond it are shed with `overloaded`. 0 means
    /// requests are shed as soon as the pool itself is saturated.
    pub max_pending_per_conn: usize,
    /// Request-line byte cap; longer lines get an `error` reply and are
    /// discarded without being buffered.
    pub max_line_bytes: usize,
    /// Per-connection reply-buffer soft cap; past it the server stops
    /// reading from the connection until the client drains its replies.
    pub write_soft_cap: usize,
    /// After a shutdown drain, how long to keep trying to flush replies to
    /// clients that have stopped reading before abandoning them.
    pub shutdown_flush_grace: Duration,
    /// Synthetic straggler injection for tail-latency experiments: with
    /// `stall_period_ms = P > 0`, the event loop sleeps `stall_ms`
    /// **on the event-loop thread** once per `P`-millisecond window —
    /// deliberately head-of-line-blocking every connection, the shape
    /// of a GC pause or page-cache stall. The schedule is wall-clock
    /// driven (first stall `stall_phase_ms` after the first request,
    /// then every `P` ms), so duplicate or retried load cannot change
    /// the stall rate. 0 disables (the default; never enable in
    /// production).
    pub stall_period_ms: u64,
    /// Stall duration in milliseconds when a scheduled stall fires.
    pub stall_ms: u64,
    /// Offset of the first stall from the first request, so a fleet of
    /// daemons can de-phase their stall windows.
    pub stall_phase_ms: u64,
}

impl ServiceConfig {
    /// Loop-back config on an ephemeral port with the store rooted at
    /// `store_root`.
    pub fn new(store_root: impl Into<std::path::PathBuf>) -> ServiceConfig {
        ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_depth: 8,
            store: StoreConfig::new(store_root),
            backend: None,
            max_pending_per_conn: 64,
            max_line_bytes: 64 << 20,
            write_soft_cap: 4 << 20,
            shutdown_flush_grace: Duration::from_secs(5),
            stall_period_ms: 0,
            stall_ms: 0,
            stall_phase_ms: 0,
        }
    }
}

/// Service-level counters, separate from the store's own hit/miss
/// accounting (which also sees internal probes).
#[derive(Debug, Default)]
struct ServiceStats {
    /// Request lines parsed (any op).
    requests: u64,
    /// Extract requests admitted (cache hit or pipeline run).
    extracts: u64,
    /// Extract requests answered from the store.
    hits: u64,
    /// Extract requests that ran the pipeline.
    misses: u64,
    /// Extract requests shed due to a full queue.
    rejected: u64,
    /// Extract requests shed because their deadline passed before start.
    deadline_exceeded: u64,
    /// Malformed or invalid requests (including frame errors).
    errors: u64,
    /// Pending tagged requests revoked by a `cancel` op before dispatch.
    cancelled: u64,
    /// Entries written into the store by `backfill` ops (replication and
    /// read-repair traffic from the routing tier).
    backfills: u64,
    /// Store entries read out by `fetch` ops (the routing tier pulling
    /// payloads for replication off the hot path).
    fetches: u64,
    /// Jobs that ran but did not reach [`JobStatus::Ok`].
    ///
    /// [`JobStatus::Ok`]: dexlego_harness::JobStatus::Ok
    failed: u64,
    /// Interpreter cells quickened across all extractions served.
    quickens: u64,
    /// Quickened cells de-quickened by code mutation across extractions.
    dequickens: u64,
    /// Fused superinstruction dispatches across extractions.
    superinsn_hits: u64,
    /// Warning-severity verifier lints across extractions served.
    verifier_lints: u64,
    /// Error-severity verifier diagnostics across rejected extractions.
    verifier_errors: u64,
    /// Method bodies with typed IR materialized across extractions.
    typed_methods: u64,
    /// Instructions across all typed-IR methods, across extractions.
    typed_insns: u64,
    /// Method verifications served from the digest-keyed verify cache
    /// across extractions.
    verify_cache_hits: u64,
    /// Method verifications that ran the fixpoint across extractions.
    verify_cache_misses: u64,
    /// Per-phase `(count, total_us)` aggregates over fresh extractions.
    phases_us: BTreeMap<String, (u64, u64)>,
}

impl ServiceStats {
    fn absorb(&mut self, report: &JobReport) {
        self.extracts += 1;
        self.quickens += report.quickens;
        self.dequickens += report.dequickens;
        self.superinsn_hits += report.superinsn_hits;
        self.verifier_lints += report.verifier_lints as u64;
        self.verifier_errors += report.verifier_errors as u64;
        self.typed_methods += report.typed_methods as u64;
        self.typed_insns += report.typed_insns;
        self.verify_cache_hits += report.verify_cache_hits;
        self.verify_cache_misses += report.verify_cache_misses;
        if report.cached {
            self.hits += 1;
        } else {
            self.misses += 1;
            for (phase, us) in &report.phases_us {
                let slot = self.phases_us.entry(phase.clone()).or_insert((0, 0));
                slot.0 += 1;
                slot.1 += us;
            }
        }
        if !report.status.is_ok() {
            self.failed += 1;
        }
    }
}

/// How a reply finds its way back onto the wire: tagged replies carry the
/// client's id and go out the moment they are ready; ordered replies fill
/// a per-connection sequence slot and go out strictly in request order
/// (the id-less compatibility contract).
#[derive(Debug, Clone)]
enum ReplySlot {
    Tagged(RequestId),
    Ordered(u64),
}

/// A completed pool job on its way back to the event loop.
struct Completion {
    token: usize,
    slot: ReplySlot,
    want_entry: bool,
    result: JobResult,
}

/// What workers share to hand completions back: the queue plus the wake
/// pipe. Deliberately *not* the whole [`Shared`], so job callbacks queued
/// in the pool never keep the daemon state alive (no Arc cycle through the
/// pool's own queue).
struct Notifier {
    completions: Mutex<Vec<Completion>>,
    wake_tx: UnixStream,
}

impl Notifier {
    fn push(&self, completion: Completion) {
        self.completions
            .lock()
            .expect("completion queue lock")
            .push(completion);
        // One byte per completion; a full pipe means the loop is already
        // guaranteed to wake, so WouldBlock (or any error) is ignorable.
        let _ = (&self.wake_tx).write(&[1]);
    }
}

struct Shared {
    store: Arc<Store>,
    pool: JobPool,
    stats: Mutex<ServiceStats>,
    store_stats_at_open: StoreStats,
    started: Instant,
    shutting_down: AtomicBool,
    next_job: AtomicU64,
    notifier: Arc<Notifier>,
}

/// A running daemon. Dropping it without [`Daemon::wait`] detaches the
/// event-loop thread; call [`Daemon::trigger_shutdown`] then `wait` for a
/// graceful drain.
pub struct Daemon {
    addr: SocketAddr,
    shared: Arc<Shared>,
    event_loop: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Binds, opens the store, and starts serving.
    ///
    /// # Errors
    ///
    /// Bind, poller, or store-open failures.
    pub fn start(config: ServiceConfig) -> io::Result<Daemon> {
        let store = Arc::new(Store::open(config.store.clone())?);
        let exec_store = Arc::clone(&store);
        let exec: PoolExecutor = Arc::new(move |spec| execute_job_cached(spec, &exec_store));
        Daemon::start_with_executor(config, store, exec)
    }

    /// [`Daemon::start`] with an injected job executor — the
    /// deterministic-test hook (e.g. an executor that blocks on a channel
    /// to hold the queue full).
    ///
    /// # Errors
    ///
    /// Bind or poller failures.
    pub fn start_with_executor(
        config: ServiceConfig,
        store: Arc<Store>,
        exec: PoolExecutor,
    ) -> io::Result<Daemon> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let store_stats_at_open = store.stats();
        let shared = Arc::new(Shared {
            pool: JobPool::with_executor(config.workers, config.queue_depth, exec),
            store,
            stats: Mutex::new(ServiceStats::default()),
            store_stats_at_open,
            started: Instant::now(),
            shutting_down: AtomicBool::new(false),
            next_job: AtomicU64::new(0),
            notifier: Arc::new(Notifier {
                completions: Mutex::new(Vec::new()),
                wake_tx,
            }),
        });
        let backend = Backend::resolve(config.backend);
        let mut poller = Poller::new(backend)?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        poller.register(wake_rx.as_raw_fd(), TOKEN_WAKE, Interest::READ)?;
        let loop_shared = Arc::clone(&shared);
        let event_loop = thread::Builder::new()
            .name("dexlegod-loop".to_owned())
            .spawn(move || {
                EventLoop::new(config, listener, wake_rx, poller, loop_shared).run();
            })?;
        Ok(Daemon {
            addr,
            shared,
            event_loop: Some(event_loop),
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the daemon to stop accepting and drain. Idempotent;
    /// also reachable over the wire via the `shutdown` op.
    pub fn trigger_shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        let _ = (&self.shared.notifier.wake_tx).write(&[1]);
    }

    /// Joins the event loop (which exits only after a triggered shutdown
    /// has drained every admitted job and flushed every reply), then
    /// drains the worker pool.
    pub fn wait(mut self) {
        if let Some(event_loop) = self.event_loop.take() {
            let _ = event_loop.join();
        }
        // Dropping the last `Shared` reference drains the pool
        // (`JobPool`'s `Drop` joins its workers).
    }
}

const TOKEN_LISTENER: usize = 0;
const TOKEN_WAKE: usize = 1;
const TOKEN_FIRST_CONN: usize = 2;

/// One parsed extract request waiting for pool capacity.
struct PendingJob {
    slot: ReplySlot,
    spec: JobSpec,
    received: Instant,
    deadline: Option<Instant>,
    want_entry: bool,
}

/// Per-connection state owned by the event loop.
struct Conn {
    stream: TcpStream,
    framer: Framer,
    /// Reply bytes not yet accepted by the kernel; `out_pos` marks how far
    /// the short writes have gotten.
    out: Vec<u8>,
    out_pos: usize,
    /// Parsed extract requests awaiting dispatch, FIFO.
    pending: VecDeque<PendingJob>,
    /// Jobs from this connection currently in the pool.
    dispatched: usize,
    /// Next sequence number to assign to an id-less request.
    ordered_next_assign: u64,
    /// Next sequence number whose reply may go on the wire.
    ordered_next_send: u64,
    /// Completed ordered replies waiting for their turn.
    ordered_ready: BTreeMap<u64, String>,
    /// EOF seen (or shutdown): no more requests will be read.
    read_closed: bool,
    /// Reading suspended by write backpressure.
    paused: bool,
    /// Fatal transport error; awaiting cleanup.
    dead: bool,
    /// Whether this token is already queued for round-robin dispatch.
    in_rr: bool,
    /// The interest set currently registered with the poller.
    interest: Interest,
}

impl Conn {
    fn unsent(&self) -> usize {
        self.out.len() - self.out_pos
    }

    fn queue_reply(&mut self, slot: &ReplySlot, reply: String) {
        match slot {
            ReplySlot::Tagged(id) => push_line(&mut self.out, &with_id(id, &reply)),
            ReplySlot::Ordered(seq) => {
                self.ordered_ready.insert(*seq, reply);
                while let Some(line) = self.ordered_ready.remove(&self.ordered_next_send) {
                    push_line(&mut self.out, &line);
                    self.ordered_next_send += 1;
                }
            }
        }
    }

    /// Work that still ties this connection to the loop.
    fn idle(&self) -> bool {
        self.pending.is_empty()
            && self.dispatched == 0
            && self.unsent() == 0
            && self.ordered_ready.is_empty()
    }
}

fn push_line(out: &mut Vec<u8>, line: &str) {
    // One contiguous append per line: payload and newline never go out as
    // separate small writes (Nagle + delayed-ACK stalls).
    out.reserve(line.len() + 1);
    out.extend_from_slice(line.as_bytes());
    out.push(b'\n');
}

/// Injects `"id": …` as the first member of an already-serialised reply
/// object. Every reply is built by `json::object`, so the line always
/// starts with `{` and always has at least a `status` member.
fn with_id(id: &RequestId, reply: &str) -> String {
    debug_assert!(reply.starts_with('{') && !reply.starts_with("{}"));
    format!("{{\"id\": {}, {}", id.encode(), &reply[1..])
}

struct EventLoop {
    config: ServiceConfig,
    listener: Option<TcpListener>,
    wake_rx: UnixStream,
    poller: Poller,
    shared: Arc<Shared>,
    conns: HashMap<usize, Conn>,
    /// Round-robin dispatch order over connections with pending requests.
    rr: VecDeque<usize>,
    next_token: usize,
    /// Jobs currently in the pool across all connections (dead ones
    /// included, until their completions drain).
    total_dispatched: usize,
    draining: bool,
    drain_started: Option<Instant>,
    /// Next scheduled straggler-injection stall (`None` until the first
    /// extract arrives, and always `None` when injection is disabled).
    next_stall: Option<Instant>,
}

impl EventLoop {
    fn new(
        config: ServiceConfig,
        listener: TcpListener,
        wake_rx: UnixStream,
        poller: Poller,
        shared: Arc<Shared>,
    ) -> EventLoop {
        EventLoop {
            config,
            listener: Some(listener),
            wake_rx,
            poller,
            shared,
            conns: HashMap::new(),
            rr: VecDeque::new(),
            next_token: TOKEN_FIRST_CONN,
            total_dispatched: 0,
            draining: false,
            drain_started: None,
            next_stall: None,
        }
    }

    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            self.drain_completions();
            if self.shared.shutting_down.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain();
            }
            self.shed_expired();
            self.dispatch();
            self.enforce_pending_bounds();
            self.flush_and_update_interests();
            self.reap();
            if self.drained() {
                break;
            }
            let timeout = self.next_timeout();
            if self.poller.wait(&mut events, timeout).is_err() {
                // A failing poller is unrecoverable; drop everything so
                // clients see EOF rather than a wedged daemon.
                break;
            }
            for ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => drain_wake_pipe(&self.wake_rx),
                    token => self.conn_ready(token, *ev),
                }
            }
        }
    }

    /// Moves completed pool jobs into their connections' write buffers.
    fn drain_completions(&mut self) {
        let batch = std::mem::take(
            &mut *self
                .shared
                .notifier
                .completions
                .lock()
                .expect("completion queue lock"),
        );
        for completion in batch {
            self.total_dispatched -= 1;
            let (report, dex) = completion.result;
            self.shared
                .stats
                .lock()
                .expect("stats lock")
                .absorb(&report);
            let reply = extract_reply(&report, dex.as_deref(), completion.want_entry);
            if let Some(conn) = self.conns.get_mut(&completion.token) {
                conn.dispatched -= 1;
                conn.queue_reply(&completion.slot, reply);
            }
            // A vanished connection just drops the reply; the job ran and
            // (if cacheable) was stored either way.
        }
    }

    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_started = Some(Instant::now());
        if let Some(listener) = self.listener.take() {
            self.poller.deregister(listener.as_raw_fd());
        }
        // Stop reading new requests everywhere; everything already parsed
        // (pending or dispatched) still completes and its reply flushes.
        for conn in self.conns.values_mut() {
            conn.read_closed = true;
        }
    }

    /// Sheds every pending request whose deadline passed before dispatch.
    fn shed_expired(&mut self) {
        let now = Instant::now();
        let mut shed: u64 = 0;
        for conn in self.conns.values_mut() {
            let mut kept = VecDeque::with_capacity(conn.pending.len());
            let jobs: Vec<PendingJob> = conn.pending.drain(..).collect();
            for job in jobs {
                match job.deadline {
                    Some(deadline) if now >= deadline => {
                        shed += 1;
                        let waited_ms = now.duration_since(job.received).as_millis() as u64;
                        conn.queue_reply(
                            &job.slot,
                            json::object(&[
                                ("status", json::string("deadline_exceeded")),
                                ("waited_ms", waited_ms.to_string()),
                            ]),
                        );
                    }
                    _ => kept.push_back(job),
                }
            }
            conn.pending = kept;
        }
        if shed > 0 {
            self.shared
                .stats
                .lock()
                .expect("stats lock")
                .deadline_exceeded += shed;
        }
    }

    /// Feeds the pool round-robin, one pending request per connection per
    /// turn, until the pool refuses.
    fn dispatch(&mut self) {
        while let Some(token) = self.rr.pop_front() {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            conn.in_rr = false;
            if conn.dead {
                continue;
            }
            let Some(PendingJob {
                slot,
                spec,
                received,
                deadline,
                want_entry,
            }) = conn.pending.pop_front()
            else {
                continue;
            };
            let notify_token = token;
            let notify_slot = slot.clone();
            let notifier = Arc::clone(&self.shared.notifier);
            match self.shared.pool.try_submit_notify(
                spec,
                Box::new(move |result| {
                    notifier.push(Completion {
                        token: notify_token,
                        slot: notify_slot,
                        want_entry,
                        result,
                    });
                }),
            ) {
                Ok(()) => {
                    conn.dispatched += 1;
                    self.total_dispatched += 1;
                    if !conn.pending.is_empty() {
                        conn.in_rr = true;
                        self.rr.push_back(token);
                    }
                }
                Err(spec) => {
                    // Pool saturated: put the job back at the head and this
                    // connection back at the front so order is preserved,
                    // then stop until a completion frees a slot.
                    conn.pending.push_front(PendingJob {
                        slot,
                        spec,
                        received,
                        deadline,
                        want_entry,
                    });
                    conn.in_rr = true;
                    self.rr.push_front(token);
                    break;
                }
            }
        }
    }

    /// Sheds the newest pending requests of any connection holding more
    /// than the configured bound (the oldest keep their place in line).
    fn enforce_pending_bounds(&mut self) {
        let limit = self.config.max_pending_per_conn;
        let in_flight = self.shared.pool.in_flight().to_string();
        let mut shed: u64 = 0;
        for conn in self.conns.values_mut() {
            while conn.pending.len() > limit {
                let job = conn.pending.pop_back().expect("len checked");
                shed += 1;
                conn.queue_reply(
                    &job.slot,
                    json::object(&[
                        ("status", json::string("overloaded")),
                        ("in_flight", in_flight.clone()),
                    ]),
                );
            }
        }
        if shed > 0 {
            self.shared.stats.lock().expect("stats lock").rejected += shed;
        }
    }

    /// Flushes write buffers, applies backpressure state transitions, and
    /// keeps each connection's poller registration in sync.
    fn flush_and_update_interests(&mut self) {
        let soft_cap = self.config.write_soft_cap;
        let mut resume: Vec<usize> = Vec::new();
        for (&token, conn) in &mut self.conns {
            if conn.dead {
                continue;
            }
            flush_conn(conn);
            if conn.dead {
                continue;
            }
            if conn.paused && conn.unsent() <= soft_cap {
                conn.paused = false;
                // Lines may already be framed and waiting; pump them now
                // that the client is reading again.
                resume.push(token);
            } else if !conn.paused && conn.unsent() > soft_cap {
                conn.paused = true;
            }
        }
        for token in resume {
            self.pump_conn(token);
        }
        for (&token, conn) in &mut self.conns {
            if conn.dead {
                continue;
            }
            let desired = Interest {
                readable: !conn.read_closed && !conn.paused,
                writable: conn.unsent() > 0,
            };
            if desired != conn.interest
                && self
                    .poller
                    .reregister(conn.stream.as_raw_fd(), token, desired)
                    .is_ok()
            {
                conn.interest = desired;
            }
        }
    }

    /// Closes connections with nothing left to do or say.
    fn reap(&mut self) {
        let force_close = self
            .drain_started
            .is_some_and(|t| t.elapsed() > self.config.shutdown_flush_grace);
        let goners: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                c.dead || (c.read_closed && c.idle()) || (force_close && c.dispatched == 0)
            })
            .map(|(&t, _)| t)
            .collect();
        for token in goners {
            if let Some(conn) = self.conns.remove(&token) {
                self.poller.deregister(conn.stream.as_raw_fd());
                // Dropping the stream closes it; any unflushed bytes are
                // lost, which only happens on transport errors or a client
                // that stopped reading across the whole shutdown grace.
            }
        }
    }

    fn drained(&self) -> bool {
        self.draining && self.total_dispatched == 0 && self.conns.is_empty()
    }

    /// The poller timeout: the earliest pending deadline, if any.
    fn next_timeout(&self) -> Option<Duration> {
        let now = Instant::now();
        let mut soonest: Option<Duration> = None;
        for conn in self.conns.values() {
            for job in &conn.pending {
                if let Some(deadline) = job.deadline {
                    let left = deadline.saturating_duration_since(now);
                    soonest = Some(match soonest {
                        Some(cur) => cur.min(left),
                        None => left,
                    });
                }
            }
        }
        // While draining, wake periodically so the flush grace can expire
        // even if no I/O ever becomes ready.
        if self.draining {
            let tick = Duration::from_millis(50);
            soonest = Some(soonest.map_or(tick, |s| s.min(tick)));
        }
        soonest
    }

    fn accept_ready(&mut self) {
        let Some(listener) = &self.listener else {
            return;
        };
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), token, Interest::READ)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            framer: Framer::new(self.config.max_line_bytes),
                            out: Vec::new(),
                            out_pos: 0,
                            pending: VecDeque::new(),
                            dispatched: 0,
                            ordered_next_assign: 0,
                            ordered_next_send: 0,
                            ordered_ready: BTreeMap::new(),
                            read_closed: false,
                            paused: false,
                            dead: false,
                            in_rr: false,
                            interest: Interest::READ,
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn conn_ready(&mut self, token: usize, ev: Event) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if ev.writable {
            flush_conn(conn);
        }
        if ev.readable && !conn.read_closed && !conn.paused {
            let mut buf = [0u8; 16 * 1024];
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.read_closed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.framer.push(&buf[..n]);
                        // Don't slurp unboundedly from one firehose client
                        // in a single turn; level-triggered polling will
                        // deliver the rest next iteration.
                        if conn.framer.buffered() > 256 * 1024 {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            self.pump_conn(token);
        }
    }

    /// Parses and handles every complete line buffered on `token`, until
    /// backpressure pauses the connection.
    fn pump_conn(&mut self, token: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.dead || conn.paused {
                return;
            }
            if conn.unsent() > self.config.write_soft_cap {
                conn.paused = true;
                return;
            }
            let Some(frame) = conn.framer.pop() else {
                return;
            };
            match frame {
                Ok(line) => self.handle_line(token, &line),
                Err(e) => {
                    let conn = self.conns.get_mut(&token).expect("conn still present");
                    let slot = next_slot(conn, None);
                    let mut stats = self.shared.stats.lock().expect("stats lock");
                    stats.requests += 1;
                    stats.errors += 1;
                    drop(stats);
                    conn.queue_reply(&slot, error_reply(&e.reason()));
                }
            }
        }
    }

    fn handle_line(&mut self, token: usize, line: &str) {
        self.shared.stats.lock().expect("stats lock").requests += 1;
        let (id, parsed) = parse_request_line(line);
        let conn = self.conns.get_mut(&token).expect("conn present in pump");
        let slot = next_slot(conn, id);
        match parsed {
            Err(reason) => {
                self.shared.stats.lock().expect("stats lock").errors += 1;
                conn.queue_reply(&slot, error_reply(&reason));
            }
            Ok(Request::Ping) => {
                conn.queue_reply(&slot, json::object(&[("status", json::string("ok"))]));
            }
            Ok(Request::Stats) => {
                let reply = stats_reply(&self.shared);
                let conn = self.conns.get_mut(&token).expect("conn present");
                conn.queue_reply(&slot, reply);
            }
            Ok(Request::Shutdown) => {
                conn.queue_reply(&slot, json::object(&[("status", json::string("ok"))]));
                self.shared.shutting_down.store(true, Ordering::SeqCst);
            }
            Ok(Request::Cancel(target)) => {
                // Only pending (undispatched) tagged requests on this very
                // connection can be revoked; a job already on a worker runs
                // to completion (its reply is still delivered). A cancelled
                // request gets no reply of its own — the canceller
                // explicitly forfeited it.
                let before = conn.pending.len();
                conn.pending
                    .retain(|job| !matches!(&job.slot, ReplySlot::Tagged(id) if *id == target));
                let cancelled = conn.pending.len() < before;
                if cancelled {
                    self.shared.stats.lock().expect("stats lock").cancelled += 1;
                }
                conn.queue_reply(
                    &slot,
                    json::object(&[
                        ("status", json::string("ok")),
                        ("cancelled", cancelled.to_string()),
                    ]),
                );
            }
            Ok(Request::Backfill { key, entry }) => {
                let stored = self
                    .shared
                    .store
                    .put_if_absent(&key, &entry)
                    .unwrap_or(false);
                if stored {
                    self.shared.stats.lock().expect("stats lock").backfills += 1;
                }
                conn.queue_reply(
                    &slot,
                    json::object(&[
                        ("status", json::string("ok")),
                        ("stored", stored.to_string()),
                    ]),
                );
            }
            Ok(Request::Fetch(key)) => {
                // Raw store read for the routing tier: entries travel on
                // explicit fetches instead of fattening every extract
                // reply with a just-in-case payload.
                let hit = self.shared.store.get(&key);
                self.shared.stats.lock().expect("stats lock").fetches += 1;
                let mut members = vec![
                    ("status", json::string("ok")),
                    ("found", hit.is_some().to_string()),
                ];
                if let Some(entry) = &hit {
                    members.push((
                        "entry",
                        json::string(&dexlego_store::hex::to_hex(&encode_entry(entry))),
                    ));
                }
                conn.queue_reply(&slot, json::object(&members));
            }
            Ok(Request::Extract(req)) => self.handle_extract(token, slot, &req),
        }
    }

    fn handle_extract(
        &mut self,
        token: usize,
        slot: ReplySlot,
        req: &crate::protocol::ExtractRequest,
    ) {
        let seq = self.shared.next_job.fetch_add(1, Ordering::Relaxed);
        if self.config.stall_period_ms > 0 {
            let now = Instant::now();
            let period = Duration::from_millis(self.config.stall_period_ms);
            let width = Duration::from_millis(self.config.stall_ms);
            let due = *self
                .next_stall
                .get_or_insert(now + Duration::from_millis(self.config.stall_phase_ms));
            if now >= due {
                // Anchor the schedule to the nominal timeline (never to
                // the fire time): drifting schedules let a fleet's
                // phase-staggered stalls collapse into lockstep after
                // an idle gap, and hedges or retries must not be able
                // to change the stall rate.
                let mut next = due + period;
                while next <= now {
                    next += period;
                }
                self.next_stall = Some(next);
                // Injected straggler: the daemon is stuck for the
                // wall-clock window [due, due+stall_ms), blocking the
                // loop the way a real stall would so everything queued
                // behind this request eats it. A request landing
                // mid-window waits out the remainder; a window that
                // passed while idle costs nothing.
                if now < due + width {
                    thread::sleep(due + width - now);
                }
            }
        }
        let fallback = format!("req{seq:06}");
        let spec = match req.to_spec(&fallback) {
            Ok(spec) => spec,
            Err(reason) => {
                self.shared.stats.lock().expect("stats lock").errors += 1;
                let conn = self.conns.get_mut(&token).expect("conn present");
                conn.queue_reply(&slot, error_reply(&reason));
                return;
            }
        };

        // Fast path: a result already in the store is served inline, so
        // cache hits are never shed by admission control or queued behind
        // slow extractions. A corrupt entry (get quarantines it and
        // returns None) falls through to a normal dispatch.
        if job_key(&spec).is_some_and(|key| self.shared.store.contains(&key)) {
            let start = Instant::now();
            let key = job_key(&spec).expect("key just computed");
            if let Some(hit) = self.shared.store.get(&key) {
                let packer = spec.packer.map(|id| id.profile().name);
                let mut report = from_cached(&spec.name, packer, &hit);
                report.wall_us = start.elapsed().as_micros() as u64;
                self.shared
                    .stats
                    .lock()
                    .expect("stats lock")
                    .absorb(&report);
                let reply = extract_reply(&report, Some(&hit.dex_bytes), req.want_entry);
                let conn = self.conns.get_mut(&token).expect("conn present");
                conn.queue_reply(&slot, reply);
                return;
            }
        }

        let received = Instant::now();
        let deadline = req
            .deadline_ms
            .map(|ms| received + Duration::from_millis(ms));
        let conn = self.conns.get_mut(&token).expect("conn present");
        conn.pending.push_back(PendingJob {
            slot,
            spec,
            received,
            deadline,
            want_entry: req.want_entry,
        });
        if !conn.in_rr {
            conn.in_rr = true;
            self.rr.push_back(token);
        }
    }
}

/// Derives the reply slot for a request: its id, or the connection's next
/// ordered sequence number.
fn next_slot(conn: &mut Conn, id: Option<RequestId>) -> ReplySlot {
    match id {
        Some(id) => ReplySlot::Tagged(id),
        None => {
            let seq = conn.ordered_next_assign;
            conn.ordered_next_assign += 1;
            ReplySlot::Ordered(seq)
        }
    }
}

fn flush_conn(conn: &mut Conn) {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    if conn.out_pos == conn.out.len() {
        conn.out.clear();
        conn.out_pos = 0;
    } else if conn.out_pos > 64 * 1024 {
        // Compact occasionally so a long-lived slow reader does not pin
        // the already-sent prefix forever.
        conn.out.drain(..conn.out_pos);
        conn.out_pos = 0;
    }
}

fn drain_wake_pipe(wake_rx: &UnixStream) {
    let mut buf = [0u8; 256];
    loop {
        match (&*wake_rx).read(&mut buf) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break, // WouldBlock: drained
        }
    }
}

fn extract_reply(report: &JobReport, dex: Option<&[u8]>, want_entry: bool) -> String {
    if report.status.is_ok() {
        let dex_hex = dexlego_store::hex::to_hex(dex.unwrap_or_default());
        let mut members = vec![
            ("status", json::string("ok")),
            ("cached", report.cached.to_string()),
            ("dex", json::string(&dex_hex)),
            ("report", report.to_json()),
        ];
        if want_entry {
            // The caller intends to replicate this result elsewhere (the
            // router's R=2 fill and read-repair paths), so hand back the
            // store encoding ready to ship in a backfill request.
            if let Some(dex) = dex {
                let entry = encode_entry(&to_cached(report, dex));
                members.push(("entry", json::string(&dexlego_store::hex::to_hex(&entry))));
            }
        }
        json::object(&members)
    } else {
        let mut members = vec![
            ("status", json::string("failed")),
            ("job_status", json::string(report.status.label())),
        ];
        if let Some(detail) = report.status.detail() {
            members.push(("detail", json::string(&detail)));
        }
        members.push(("report", report.to_json()));
        json::object(&members)
    }
}

fn error_reply(reason: &str) -> String {
    json::object(&[
        ("status", json::string("error")),
        ("reason", json::string(reason)),
    ])
}

fn stats_reply(shared: &Shared) -> String {
    let store = shared.store.stats();
    let opened = &shared.store_stats_at_open;
    let store_json = json::object(&[
        ("entries", store.entries.to_string()),
        ("bytes", store.bytes.to_string()),
        (
            "evictions",
            (store.evictions - opened.evictions).to_string(),
        ),
        (
            "quarantined",
            (store.quarantined - opened.quarantined).to_string(),
        ),
    ]);
    let stats = shared.stats.lock().expect("stats lock");
    let phases: Vec<(String, String)> = stats
        .phases_us
        .iter()
        .map(|(phase, (count, total_us))| {
            (
                phase.clone(),
                json::object(&[
                    ("count", count.to_string()),
                    ("total_us", total_us.to_string()),
                ]),
            )
        })
        .collect();
    let phase_members: Vec<(&str, String)> = phases
        .iter()
        .map(|(phase, obj)| (phase.as_str(), obj.clone()))
        .collect();
    let body = json::object(&[
        ("requests", stats.requests.to_string()),
        ("extracts", stats.extracts.to_string()),
        ("hits", stats.hits.to_string()),
        ("misses", stats.misses.to_string()),
        ("rejected", stats.rejected.to_string()),
        ("deadline_exceeded", stats.deadline_exceeded.to_string()),
        // Aliases for the admission-control counters under the names the
        // fleet tooling aggregates; the original fields stay byte-for-byte
        // so old clients keep parsing.
        ("shed_overloaded", stats.rejected.to_string()),
        ("shed_deadline", stats.deadline_exceeded.to_string()),
        (
            "uptime_ms",
            shared.started.elapsed().as_millis().to_string(),
        ),
        ("cancelled", stats.cancelled.to_string()),
        ("backfills", stats.backfills.to_string()),
        ("fetches", stats.fetches.to_string()),
        ("errors", stats.errors.to_string()),
        ("failed", stats.failed.to_string()),
        ("quickens", stats.quickens.to_string()),
        ("dequickens", stats.dequickens.to_string()),
        ("superinsn_hits", stats.superinsn_hits.to_string()),
        ("verifier_lints", stats.verifier_lints.to_string()),
        ("verifier_errors", stats.verifier_errors.to_string()),
        ("typed_methods", stats.typed_methods.to_string()),
        ("typed_insns", stats.typed_insns.to_string()),
        ("verify_cache_hits", stats.verify_cache_hits.to_string()),
        ("verify_cache_misses", stats.verify_cache_misses.to_string()),
        ("in_flight", shared.pool.in_flight().to_string()),
        ("store", store_json),
        ("phases_us", json::object(&phase_members)),
    ]);
    json::object(&[("status", json::string("ok")), ("stats", body)])
}
