//! The `dexlegod` daemon: a TCP accept loop dispatching extraction
//! requests onto a persistent [`JobPool`] with per-request caching
//! through the content-addressed result [`Store`].
//!
//! Concurrency shape:
//!
//! - one accept thread, woken out of `accept()` at shutdown by a
//!   loop-back connection to itself;
//! - one handler thread per client connection, reading request lines and
//!   writing reply lines;
//! - the shared worker pool executing extractions with bounded admission —
//!   a saturated queue produces an `overloaded` reply, not latency.
//!
//! Cache hits bypass admission control: if the store already holds the
//! result, the handler serves it inline instead of failing a cheap read
//! just because the extraction queue is full.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

use dexlego_harness::json;
use dexlego_harness::{execute_job_cached, job_key, JobPool, JobReport, PoolExecutor};
use dexlego_store::{Store, StoreConfig, StoreStats};

use crate::protocol::{parse_request, Request};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Extraction worker threads.
    pub workers: usize,
    /// Admission queue depth; requests beyond `workers + queue_depth`
    /// in flight are shed with an `overloaded` reply.
    pub queue_depth: usize,
    /// Result store configuration.
    pub store: StoreConfig,
}

impl ServiceConfig {
    /// Loop-back config on an ephemeral port with the store rooted at
    /// `store_root`.
    pub fn new(store_root: impl Into<std::path::PathBuf>) -> ServiceConfig {
        ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_depth: 8,
            store: StoreConfig::new(store_root),
        }
    }
}

/// Service-level counters, separate from the store's own hit/miss
/// accounting (which also sees internal probes).
#[derive(Debug, Default)]
struct ServiceStats {
    /// Request lines parsed (any op).
    requests: u64,
    /// Extract requests admitted (cache hit or pipeline run).
    extracts: u64,
    /// Extract requests answered from the store.
    hits: u64,
    /// Extract requests that ran the pipeline.
    misses: u64,
    /// Extract requests shed due to a full queue.
    rejected: u64,
    /// Malformed or invalid requests.
    errors: u64,
    /// Jobs that ran but did not reach [`JobStatus::Ok`].
    ///
    /// [`JobStatus::Ok`]: dexlego_harness::JobStatus::Ok
    failed: u64,
    /// Interpreter cells quickened across all extractions served.
    quickens: u64,
    /// Quickened cells de-quickened by code mutation across extractions.
    dequickens: u64,
    /// Fused superinstruction dispatches across extractions.
    superinsn_hits: u64,
    /// Warning-severity verifier lints across extractions served.
    verifier_lints: u64,
    /// Error-severity verifier diagnostics across rejected extractions.
    verifier_errors: u64,
    /// Method bodies with typed IR materialized across extractions.
    typed_methods: u64,
    /// Instructions across all typed-IR methods, across extractions.
    typed_insns: u64,
    /// Per-phase `(count, total_us)` aggregates over fresh extractions.
    phases_us: BTreeMap<String, (u64, u64)>,
}

impl ServiceStats {
    fn absorb(&mut self, report: &JobReport) {
        self.extracts += 1;
        self.quickens += report.quickens;
        self.dequickens += report.dequickens;
        self.superinsn_hits += report.superinsn_hits;
        self.verifier_lints += report.verifier_lints as u64;
        self.verifier_errors += report.verifier_errors as u64;
        self.typed_methods += report.typed_methods as u64;
        self.typed_insns += report.typed_insns;
        if report.cached {
            self.hits += 1;
        } else {
            self.misses += 1;
            for (phase, us) in &report.phases_us {
                let slot = self.phases_us.entry(phase.clone()).or_insert((0, 0));
                slot.0 += 1;
                slot.1 += us;
            }
        }
        if !report.status.is_ok() {
            self.failed += 1;
        }
    }
}

struct Shared {
    store: Arc<Store>,
    pool: JobPool,
    exec: PoolExecutor,
    stats: Mutex<ServiceStats>,
    store_stats_at_open: StoreStats,
    shutting_down: AtomicBool,
    next_job: AtomicU64,
    conns: Mutex<Vec<JoinHandle<()>>>,
    /// Read-half clones of every live connection, half-closed at shutdown
    /// so idle handlers stop waiting for input (in-flight replies still go
    /// out on the intact write half).
    peers: Mutex<Vec<TcpStream>>,
}

/// A running daemon. Dropping it without [`Daemon::wait`] detaches the
/// accept thread; call [`Daemon::trigger_shutdown`] then `wait` for a
/// graceful drain.
pub struct Daemon {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Binds, opens the store, and starts serving.
    ///
    /// # Errors
    ///
    /// Bind or store-open failures.
    pub fn start(config: ServiceConfig) -> io::Result<Daemon> {
        let store = Arc::new(Store::open(config.store.clone())?);
        let exec_store = Arc::clone(&store);
        let exec: PoolExecutor = Arc::new(move |spec| execute_job_cached(spec, &exec_store));
        Daemon::start_with_executor(config, store, exec)
    }

    /// [`Daemon::start`] with an injected job executor — the
    /// deterministic-test hook (e.g. an executor that blocks on a channel
    /// to hold the queue full).
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn start_with_executor(
        config: ServiceConfig,
        store: Arc<Store>,
        exec: PoolExecutor,
    ) -> io::Result<Daemon> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let store_stats_at_open = store.stats();
        let shared = Arc::new(Shared {
            pool: JobPool::with_executor(config.workers, config.queue_depth, Arc::clone(&exec)),
            store,
            exec,
            stats: Mutex::new(ServiceStats::default()),
            store_stats_at_open,
            shutting_down: AtomicBool::new(false),
            next_job: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
            peers: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::Builder::new()
            .name("dexlegod-accept".to_owned())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(Daemon {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the daemon to stop accepting and drain. Idempotent;
    /// also reachable over the wire via the `shutdown` op.
    pub fn trigger_shutdown(&self) {
        request_shutdown(&self.shared, self.addr);
    }

    /// Joins the accept thread and every connection handler, then drains
    /// the worker pool. Returns once all in-flight jobs have completed.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let conns = std::mem::take(&mut *self.shared.conns.lock().unwrap());
        for handle in conns {
            let _ = handle.join();
        }
        // Dropping the last `Shared` reference drains the pool
        // (`JobPool`'s `Drop` joins its workers).
    }
}

fn request_shutdown(shared: &Shared, addr: SocketAddr) {
    if shared.shutting_down.swap(true, Ordering::SeqCst) {
        return;
    }
    // Stop idle handlers waiting for input; write halves stay open so
    // in-flight replies are still delivered.
    for peer in shared.peers.lock().unwrap().iter() {
        let _ = peer.shutdown(std::net::Shutdown::Read);
    }
    // Wake the accept loop; it re-checks the flag before handling the
    // connection.
    let _ = TcpStream::connect(addr);
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if let Ok(peer) = stream.try_clone() {
            shared.peers.lock().unwrap().push(peer);
        }
        // A shutdown racing the registration above might have missed this
        // connection; re-check so its handler still gets unblocked.
        if shared.shutting_down.load(Ordering::SeqCst) {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
        let addr = listener.local_addr().ok();
        let conn_shared = Arc::clone(shared);
        let handle = thread::Builder::new()
            .name("dexlegod-conn".to_owned())
            .spawn(move || {
                let _ = handle_connection(stream, &conn_shared, addr);
            });
        if let Ok(handle) = handle {
            shared.conns.lock().unwrap().push(handle);
        }
    }
}

fn write_line(writer: &mut TcpStream, reply: String) -> io::Result<()> {
    // One write per line: interleaving payload and newline as separate
    // small writes stalls on Nagle + delayed-ACK.
    let mut framed = reply;
    framed.push('\n');
    writer.write_all(framed.as_bytes())?;
    writer.flush()
}

fn handle_connection(
    stream: TcpStream,
    shared: &Arc<Shared>,
    addr: Option<SocketAddr>,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        shared.stats.lock().unwrap().requests += 1;
        let reply = match parse_request(&line) {
            Err(reason) => {
                shared.stats.lock().unwrap().errors += 1;
                error_reply(&reason)
            }
            Ok(Request::Ping) => json::object(&[("status", json::string("ok"))]),
            Ok(Request::Stats) => stats_reply(shared),
            Ok(Request::Shutdown) => {
                write_line(&mut writer, json::object(&[("status", json::string("ok"))]))?;
                if let Some(addr) = addr {
                    request_shutdown(shared, addr);
                }
                return Ok(());
            }
            Ok(Request::Extract(req)) => handle_extract(shared, &req),
        };
        write_line(&mut writer, reply)?;
    }
    Ok(())
}

fn handle_extract(shared: &Arc<Shared>, req: &crate::protocol::ExtractRequest) -> String {
    let seq = shared.next_job.fetch_add(1, Ordering::Relaxed);
    let fallback = format!("req{seq:06}");
    let spec = match req.to_spec(&fallback) {
        Ok(spec) => spec,
        Err(reason) => {
            shared.stats.lock().unwrap().errors += 1;
            return error_reply(&reason);
        }
    };

    // Fast path: a result already in the store is served inline, so cache
    // hits are never shed by admission control. (A corrupt entry makes
    // this path run the pipeline on the handler thread — rare, and still
    // correct.)
    let cached_already = job_key(&spec).is_some_and(|key| shared.store.contains(&key));
    let (report, dex) = if cached_already {
        (shared.exec)(spec)
    } else {
        match shared.pool.try_submit(spec) {
            Err(_rejected) => {
                let mut stats = shared.stats.lock().unwrap();
                stats.rejected += 1;
                return json::object(&[
                    ("status", json::string("overloaded")),
                    ("in_flight", shared.pool.in_flight().to_string()),
                ]);
            }
            Ok(rx) => match rx.recv() {
                Ok(result) => result,
                Err(_) => return error_reply("worker dropped the job"),
            },
        }
    };

    shared.stats.lock().unwrap().absorb(&report);
    if report.status.is_ok() {
        let dex_hex = dexlego_store::hex::to_hex(dex.as_deref().unwrap_or_default());
        json::object(&[
            ("status", json::string("ok")),
            ("cached", report.cached.to_string()),
            ("dex", json::string(&dex_hex)),
            ("report", report.to_json()),
        ])
    } else {
        let mut members = vec![
            ("status", json::string("failed")),
            ("job_status", json::string(report.status.label())),
        ];
        if let Some(detail) = report.status.detail() {
            members.push(("detail", json::string(&detail)));
        }
        members.push(("report", report.to_json()));
        json::object(&members)
    }
}

fn error_reply(reason: &str) -> String {
    json::object(&[
        ("status", json::string("error")),
        ("reason", json::string(reason)),
    ])
}

fn stats_reply(shared: &Shared) -> String {
    let store = shared.store.stats();
    let opened = &shared.store_stats_at_open;
    let store_json = json::object(&[
        ("entries", store.entries.to_string()),
        ("bytes", store.bytes.to_string()),
        (
            "evictions",
            (store.evictions - opened.evictions).to_string(),
        ),
        (
            "quarantined",
            (store.quarantined - opened.quarantined).to_string(),
        ),
    ]);
    let stats = shared.stats.lock().unwrap();
    let phases: Vec<(String, String)> = stats
        .phases_us
        .iter()
        .map(|(phase, (count, total_us))| {
            (
                phase.clone(),
                json::object(&[
                    ("count", count.to_string()),
                    ("total_us", total_us.to_string()),
                ]),
            )
        })
        .collect();
    let phase_members: Vec<(&str, String)> = phases
        .iter()
        .map(|(phase, obj)| (phase.as_str(), obj.clone()))
        .collect();
    let body = json::object(&[
        ("requests", stats.requests.to_string()),
        ("extracts", stats.extracts.to_string()),
        ("hits", stats.hits.to_string()),
        ("misses", stats.misses.to_string()),
        ("rejected", stats.rejected.to_string()),
        ("errors", stats.errors.to_string()),
        ("failed", stats.failed.to_string()),
        ("quickens", stats.quickens.to_string()),
        ("dequickens", stats.dequickens.to_string()),
        ("superinsn_hits", stats.superinsn_hits.to_string()),
        ("verifier_lints", stats.verifier_lints.to_string()),
        ("verifier_errors", stats.verifier_errors.to_string()),
        ("typed_methods", stats.typed_methods.to_string()),
        ("typed_insns", stats.typed_insns.to_string()),
        ("in_flight", shared.pool.in_flight().to_string()),
        ("store", store_json),
        ("phases_us", json::object(&phase_members)),
    ]);
    json::object(&[("status", json::string("ok")), ("stats", body)])
}
