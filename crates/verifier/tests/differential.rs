//! Differential property tests: the fast fixpoint engine (RPO priority
//! worklist, slab frames, precomputed handler targets) must emit
//! *byte-identical* diagnostics to the reference FIFO engine on arbitrary
//! code — valid, invalid, or garbage. Diagnostics are reported only during
//! the replay over converged frames, and the fixpoint computes the unique
//! least fixpoint of a monotone transfer regardless of visit order, so any
//! divergence is a bug in one of the engines.

use dexlego_dex::{CodeItem, EncodedCatchHandler, TryItem};
use dexlego_verifier::{verify_method, VerifyOptions};
use proptest::collection::vec;
use proptest::prelude::*;

fn fast() -> VerifyOptions {
    VerifyOptions::default().without_cache()
}

fn reference() -> VerifyOptions {
    VerifyOptions::default()
        .sequential_reference()
        .without_cache()
}

/// One plausible instruction word: biased toward real one-unit opcodes so
/// streams decode into interesting CFGs, with fully random units mixed in
/// to cover the malformed paths.
fn unit() -> impl Strategy<Value = u16> {
    prop_oneof![
        (0u16..16, 0u16..16).prop_map(|(a, b)| (b << 12) | (a << 8) | 0x01), // move
        (0u16..16, 0u16..8).prop_map(|(a, v)| (v << 12) | (a << 8) | 0x12),  // const/4
        (0u16..16, 0u16..16).prop_map(|(a, b)| (b << 12) | (a << 8) | 0xb0), // add-int/2addr
        Just(0x000e),                                                        // return-void
        (0u16..16).prop_map(|a| (a << 8) | 0x0f),                            // return
        (1u16..8).prop_map(|off| (off << 8) | 0x28),                         // goto
        any::<u16>(),
    ]
}

proptest! {
    #[test]
    fn engines_agree_on_random_code(
        units in vec(unit(), 1..48),
        regs in 1u16..10,
        ins in 0u16..4,
    ) {
        let mut insns = units;
        insns.push(0x000e); // return-void backstop
        let code = CodeItem::new(regs.max(ins + 1), ins.min(regs), 0, insns);
        let fast = verify_method("La;->m()V", &code, &[], &fast());
        let slow = verify_method("La;->m()V", &code, &[], &reference());
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn engines_agree_with_exception_handlers(
        units in vec(unit(), 1..40),
        regs in 1u16..10,
        first in (0u32..16, 1u16..12, 0u32..24),
        with_second in any::<bool>(),
        second in (0u32..16, 1u16..8, 0u32..24),
    ) {
        let (start, count, catch_addr) = first;
        let (s2, c2, a2) = second;
        let mut insns = units;
        insns.push(0x000e);
        let mut code = CodeItem::new(regs, 0, 0, insns);
        code.tries.push(TryItem {
            start_addr: start,
            insn_count: count,
            handler_index: 0,
        });
        code.handlers.push(EncodedCatchHandler {
            catches: Vec::new(),
            catch_all_addr: Some(catch_addr),
        });
        if with_second {
            code.tries.push(TryItem {
                start_addr: s2,
                insn_count: c2,
                handler_index: 1,
            });
            code.handlers.push(EncodedCatchHandler {
                catches: Vec::new(),
                catch_all_addr: Some(a2),
            });
        }
        let fast = verify_method("La;->m()V", &code, &[], &fast());
        let slow = verify_method("La;->m()V", &code, &[], &reference());
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn engines_agree_under_errors_only(
        units in vec(unit(), 1..40),
        regs in 1u16..8,
    ) {
        let mut insns = units;
        insns.push(0x000e);
        let code = CodeItem::new(regs, 0, 0, insns);
        let fast = verify_method(
            "La;->m()V", &code, &[],
            &VerifyOptions::errors_only().without_cache(),
        );
        let slow = verify_method(
            "La;->m()V", &code, &[],
            &VerifyOptions::errors_only().sequential_reference().without_cache(),
        );
        prop_assert_eq!(fast, slow);
    }
}
