//! Integration tests for the typed verification layer: descriptor-carrying
//! reference tracking, class-hierarchy joins, and the typed rules
//! V0009/V0010/V0011 (errors) and L0004/L0005 (lints).
//!
//! Programs are assembled with `ProgramBuilder` so every method verifies
//! with full DEX context. The hierarchy under test: `La;` and `Lb;` are
//! unrelated classes, `Lc;` and `Ld;` both extend `La;`.

use dexlego_dalvik::builder::ProgramBuilder;
use dexlego_dalvik::insn::Insn;
use dexlego_dalvik::Opcode;
use dexlego_dex::DexFile;
use dexlego_verifier::{verify_dex, verify_dex_typed, RegType, Rule, VerifyOptions};

fn rules_of(dex: &DexFile) -> Vec<Rule> {
    verify_dex(dex, &VerifyOptions::default())
        .iter()
        .map(|d| d.rule)
        .collect()
}

/// Declares the shared hierarchy: La;, Lb; (unrelated), Lc;/Ld; extend La;.
fn with_hierarchy(pb: &mut ProgramBuilder) {
    pb.class("La;", |_| {});
    pb.class("Lb;", |_| {});
    pb.class("Lc;", |c| {
        c.superclass("La;");
    });
    pb.class("Ld;", |c| {
        c.superclass("La;");
    });
}

#[test]
fn invoke_with_provably_wrong_argument_is_v0009() {
    let mut pb = ProgramBuilder::new();
    with_hierarchy(&mut pb);
    pb.class("Lt;", |c| {
        c.static_method("take", &["La;"], "V", 1, |m| {
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
        c.static_method("caller", &[], "V", 1, |m| {
            m.new_instance(0, "Lb;");
            m.invoke(Opcode::InvokeStatic, "Lt;", "take", &["La;"], "V", &[0]);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();
    assert!(rules_of(&dex).contains(&Rule::V0009));
}

#[test]
fn invoke_with_subtype_argument_is_clean() {
    let mut pb = ProgramBuilder::new();
    with_hierarchy(&mut pb);
    pb.class("Lt;", |c| {
        c.static_method("take", &["La;"], "V", 1, |m| {
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
        c.static_method("caller", &[], "V", 1, |m| {
            m.new_instance(0, "Lc;");
            m.invoke(Opcode::InvokeStatic, "Lt;", "take", &["La;"], "V", &[0]);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();
    assert!(rules_of(&dex).is_empty());
}

#[test]
fn field_write_of_unrelated_type_is_v0010() {
    let mut pb = ProgramBuilder::new();
    with_hierarchy(&mut pb);
    pb.class("Lt;", |c| {
        c.static_field("slot", "La;", None);
        c.static_method("store", &[], "V", 1, |m| {
            m.new_instance(0, "Lb;");
            m.sput(Opcode::SputObject, 0, "Lt;", "slot", "La;");
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();
    assert!(rules_of(&dex).contains(&Rule::V0010));
}

#[test]
fn return_of_unrelated_type_is_v0011() {
    let mut pb = ProgramBuilder::new();
    with_hierarchy(&mut pb);
    pb.class("Lt;", |c| {
        c.static_method("make", &[], "La;", 1, |m| {
            m.new_instance(0, "Lb;");
            m.asm.ret(Opcode::ReturnObject, 0);
        });
    });
    let dex = pb.build().unwrap();
    assert!(rules_of(&dex).contains(&Rule::V0011));
}

#[test]
fn provably_failing_check_cast_is_l0004() {
    let mut pb = ProgramBuilder::new();
    with_hierarchy(&mut pb);
    pb.class("Lt;", |c| {
        c.static_method("cast", &[], "V", 1, |m| {
            m.new_instance(0, "Lb;");
            m.check_cast(0, "La;");
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();
    let diags = verify_dex(&dex, &VerifyOptions::default());
    let l0004: Vec<_> = diags.iter().filter(|d| d.rule == Rule::L0004).collect();
    assert_eq!(l0004.len(), 1);
    assert!(!l0004[0].is_error(), "L0004 is a lint, not a gate");
    // The message names descriptors, not lattice kinds.
    assert!(l0004[0].message.contains("Lb;"), "{}", l0004[0].message);
    assert!(l0004[0].message.contains("La;"), "{}", l0004[0].message);
}

#[test]
fn incompatible_array_store_is_l0005() {
    let mut pb = ProgramBuilder::new();
    with_hierarchy(&mut pb);
    pb.class("Lt;", |c| {
        c.static_method("fill", &[], "V", 3, |m| {
            m.asm.const4(2, 1);
            m.new_array(0, 2, "[La;");
            m.new_instance(1, "Lb;");
            m.asm.const4(2, 0);
            m.aput(Opcode::AputObject, 1, 0, 2);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();
    assert!(rules_of(&dex).contains(&Rule::L0005));
}

#[test]
fn unknown_framework_types_stay_quiet() {
    // Both sides framework classes: nothing is provable, nothing fires.
    let mut pb = ProgramBuilder::new();
    pb.class("Lt;", |c| {
        c.static_method("take", &["Ljava/io/File;"], "V", 1, |m| {
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
        c.static_method("caller", &[], "V", 1, |m| {
            m.new_instance(0, "Ljava/util/ArrayList;");
            m.invoke(
                Opcode::InvokeStatic,
                "Lt;",
                "take",
                &["Ljava/io/File;"],
                "V",
                &[0],
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();
    assert!(rules_of(&dex).is_empty());
}

#[test]
fn typed_ir_joins_to_least_common_ancestor() {
    let mut pb = ProgramBuilder::new();
    with_hierarchy(&mut pb);
    pb.class("Lt;", |c| {
        c.static_method("pick", &["Z"], "La;", 2, |m| {
            let flag = m.param_reg(0);
            let els = m.asm.new_label();
            let join = m.asm.new_label();
            let mut branch = Insn::of(Opcode::IfEqz);
            branch.a = flag;
            m.asm.branch(branch, els);
            m.new_instance(0, "Lc;");
            m.asm.goto(join);
            m.asm.bind(els);
            m.new_instance(0, "Ld;");
            m.asm.bind(join);
            m.asm.ret(Opcode::ReturnObject, 0);
        });
    });
    let dex = pb.build().unwrap();
    let typed = verify_dex_typed(&dex, &VerifyOptions::default());
    // Lc; and Ld; merge to their common superclass La;, so returning the
    // merged value from a method declared `La;` raises nothing.
    assert!(typed.diagnostics.is_empty(), "{:?}", typed.diagnostics);
    let ir = typed
        .methods
        .iter()
        .find(|m| m.name == "pick")
        .expect("pick has a body");
    let ret = ir
        .insns
        .iter()
        .find(|i| i.insn.op == Opcode::ReturnObject)
        .expect("return-object present");
    let a = typed.hierarchy.lookup("La;").unwrap();
    assert_eq!(ret.frame[0], RegType::Ref(a));
    assert!(ret.reachable);
    assert_eq!(ret.uses, vec![0]);
    assert!(ret.succs.is_empty(), "return has no successors");
}

#[test]
fn typed_ir_exposes_def_use_and_successors() {
    let mut pb = ProgramBuilder::new();
    pb.class("Lt;", |c| {
        c.static_method("m", &["I"], "I", 1, |m| {
            let p = m.param_reg(0);
            m.asm.const4(0, 2);
            m.asm.binop(Opcode::AddInt, 0, 0, p);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    let dex = pb.build().unwrap();
    let typed = verify_dex_typed(&dex, &VerifyOptions::default());
    assert!(typed.diagnostics.is_empty());
    let ir = &typed.methods[0];
    assert_eq!(ir.insns.len(), 3);
    // const/4 defines v0 and flows to add-int, which reads v0/v1 and
    // redefines v0.
    assert_eq!(ir.insns[0].defs, vec![0]);
    assert_eq!(ir.insns[0].succs, vec![1]);
    assert_eq!(ir.insns[1].uses, vec![0, 1]);
    assert_eq!(ir.insns[1].defs, vec![0]);
    assert_eq!(ir.index_of_pc(ir.insns[2].pc), Some(2));
    assert!(ir.def_use_edges() >= 5);
}

#[test]
fn annotated_disassembly_names_descriptors() {
    let mut pb = ProgramBuilder::new();
    with_hierarchy(&mut pb);
    pb.class("Lt;", |c| {
        c.static_method("mk", &[], "La;", 1, |m| {
            m.new_instance(0, "Lc;");
            m.asm.ret(Opcode::ReturnObject, 0);
        });
    });
    let dex = pb.build().unwrap();
    let typed = verify_dex_typed(&dex, &VerifyOptions::default());
    let ir = typed.methods.iter().find(|m| m.name == "mk").unwrap();
    let lines = ir.disassemble(&typed.hierarchy, Some(&dex));
    assert_eq!(lines.len(), 2);
    // The new-instance operand resolves through the pool...
    assert!(lines[0].contains("new-instance v0, Lc;"), "{lines:?}");
    // ...and the return's frame names the register's descriptor instead
    // of a bare "ref".
    assert!(lines[1].contains("v0=Lc;"), "{lines:?}");
}
