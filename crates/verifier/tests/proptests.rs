//! Property-based tests for the register typestate lattice under the
//! descriptor-carrying `Ref` variant: `join` must stay a semilattice
//! (commutative, associative, idempotent) and monotone over *random* class
//! hierarchies, since the dataflow fixpoint terminates only if every merge
//! moves up a finite lattice.

use dexlego_dex::{ClassDef, DexFile};
use dexlego_verifier::hierarchy::{ClassHierarchy, TypeId, OBJECT_DESCRIPTOR};
use dexlego_verifier::RegType;
use proptest::collection::vec;
use proptest::prelude::*;

const MAX_CLASSES: usize = 10;

/// Builds a random single-inheritance hierarchy: class `i`'s parent is a
/// previously-declared class or `Ljava/lang/Object;`, chosen by
/// `parents[i] % (i + 1)` (the value `i` itself selects Object).
fn hierarchy_of(parents: &[u8]) -> ClassHierarchy {
    let mut dex = DexFile::new();
    let obj = dex.intern_type(OBJECT_DESCRIPTOR);
    let ids: Vec<_> = (0..parents.len())
        .map(|i| dex.intern_type(&format!("Lc{i};")))
        .collect();
    for (i, &pick) in parents.iter().enumerate() {
        let mut def = ClassDef::new(ids[i]);
        let j = pick as usize % (i + 1);
        def.superclass = Some(if j == i { obj } else { ids[j] });
        dex.class_defs_mut().push(def);
    }
    ClassHierarchy::from_dex(&dex)
}

/// Materializes one abstract register type from a packed pick: the high
/// byte selects the lattice variant, the low byte a `Ref` type from the
/// hierarchy's interned table.
fn reg_type_of(hier: &ClassHierarchy, bits: u16) -> RegType {
    let tag = (bits >> 8) as u8;
    let pick = (bits & 0xff) as usize;
    match tag % 9 {
        0 => RegType::Uninit,
        1 => RegType::Const,
        2 => RegType::Int,
        3 => RegType::Float,
        4 => RegType::Any,
        5 => RegType::WideLo,
        6 => RegType::WideHi,
        7 => RegType::Conflict,
        _ => RegType::Ref(TypeId((pick % hier.len()) as u32)),
    }
}

proptest! {
    #[test]
    fn join_is_commutative(
        parents in vec(any::<u8>(), 0..MAX_CLASSES),
        pa in any::<u16>(),
        pb in any::<u16>(),
    ) {
        let h = hierarchy_of(&parents);
        let a = reg_type_of(&h, pa);
        let b = reg_type_of(&h, pb);
        prop_assert_eq!(a.join_with(b, Some(&h)), b.join_with(a, Some(&h)));
    }

    #[test]
    fn join_is_associative(
        parents in vec(any::<u8>(), 0..MAX_CLASSES),
        pa in any::<u16>(),
        pb in any::<u16>(),
        pc in any::<u16>(),
    ) {
        let h = hierarchy_of(&parents);
        let a = reg_type_of(&h, pa);
        let b = reg_type_of(&h, pb);
        let c = reg_type_of(&h, pc);
        let left = a.join_with(b, Some(&h)).join_with(c, Some(&h));
        let right = a.join_with(b.join_with(c, Some(&h)), Some(&h));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn join_is_idempotent(
        parents in vec(any::<u8>(), 0..MAX_CLASSES),
        pa in any::<u16>(),
    ) {
        let h = hierarchy_of(&parents);
        let a = reg_type_of(&h, pa);
        prop_assert_eq!(a.join_with(a, Some(&h)), a);
    }

    #[test]
    fn join_is_an_upper_bound(
        parents in vec(any::<u8>(), 0..MAX_CLASSES),
        pa in any::<u16>(),
        pb in any::<u16>(),
    ) {
        // a ⊑ a⊔b and b ⊑ a⊔b, where x ⊑ y iff x⊔y == y. This is the
        // absorption law the fixpoint relies on: re-merging an input into
        // a merged frame never changes it.
        let h = hierarchy_of(&parents);
        let a = reg_type_of(&h, pa);
        let b = reg_type_of(&h, pb);
        let ab = a.join_with(b, Some(&h));
        prop_assert_eq!(a.join_with(ab, Some(&h)), ab);
        prop_assert_eq!(b.join_with(ab, Some(&h)), ab);
    }

    #[test]
    fn join_is_monotone(
        parents in vec(any::<u8>(), 0..MAX_CLASSES),
        pa in any::<u16>(),
        pb in any::<u16>(),
        pc in any::<u16>(),
    ) {
        // If a ⊑ b then a⊔c ⊑ b⊔c: merging more information into a frame
        // never lowers a successor's state, so worklist revisits are
        // bounded by lattice height.
        let h = hierarchy_of(&parents);
        let a = reg_type_of(&h, pa);
        let b = reg_type_of(&h, pb);
        let c = reg_type_of(&h, pc);
        if a.join_with(b, Some(&h)) == b {
            let ac = a.join_with(c, Some(&h));
            let bc = b.join_with(c, Some(&h));
            prop_assert_eq!(ac.join_with(bc, Some(&h)), bc);
        }
    }

    #[test]
    fn ref_joins_are_common_ancestors(
        parents in vec(any::<u8>(), 0..MAX_CLASSES),
        pa in any::<u16>(),
        pb in any::<u16>(),
    ) {
        let h = hierarchy_of(&parents);
        let a = TypeId((pa as usize % h.len()) as u32);
        let b = TypeId((pb as usize % h.len()) as u32);
        let j = h.join(a, b);
        prop_assert!(h.is_subtype(a, j));
        prop_assert!(h.is_subtype(b, j));
    }
}
