//! Integration tests for the bytecode verifier: acceptance of well-formed
//! methods, rejection of deliberately corrupted ones (with the diagnostic
//! anchored at the right `dex_pc`), and the lint layer.
//!
//! Code units are written by hand; comments give the disassembly. Dalvik
//! packs `OP | A << 8` into the first unit.

use dexlego_dex::code::{CatchClause, CodeItem, EncodedCatchHandler, TryItem};
use dexlego_verifier::{
    is_clean, param_kinds, verify_method, ParamKind, Rule, Severity, VerifyOptions,
};

fn verify(code: &CodeItem, params: &[ParamKind]) -> Vec<dexlego_verifier::Diagnostic> {
    verify_method("Lt/T;->m()V", code, params, &VerifyOptions::default())
}

fn errors(code: &CodeItem, params: &[ParamKind]) -> Vec<(Rule, u32)> {
    verify(code, params)
        .iter()
        .filter(|d| d.is_error())
        .map(|d| (d.rule, d.dex_pc))
        .collect()
}

// ---- clean methods ----------------------------------------------------------

#[test]
fn empty_void_method_is_clean() {
    // return-void
    let code = CodeItem::new(1, 0, 0, vec![0x000e]);
    assert!(verify(&code, &[]).is_empty());
}

#[test]
fn straight_line_arithmetic_is_clean() {
    // const/4 v0, #3; const/4 v1, #4; add-int/2addr v0, v1; return v0
    let code = CodeItem::new(2, 0, 0, vec![0x3012, 0x4112, 0x10b0, 0x000f]);
    assert!(is_clean(&verify(&code, &[])));
}

#[test]
fn parameters_are_defined_in_high_registers() {
    // Static (IJ)V in 4 registers: params at v1 (int), v2/v3 (wide).
    // add-int/lit8 v0, v1, #1; return-void
    let code = CodeItem::new(4, 3, 0, vec![0x00d8, 0x0101, 0x000e]);
    let params = param_kinds(true, &["I", "J"]);
    assert_eq!(params, vec![ParamKind::Int, ParamKind::Wide]);
    assert!(verify(&code, &params).is_empty());
}

#[test]
fn wide_parameter_pair_is_usable() {
    // Static (J)J in 2 registers: long in (v0, v1). return-wide v0
    let code = CodeItem::new(2, 2, 0, vec![0x0010]);
    assert!(verify(&code, &param_kinds(true, &["J"])).is_empty());
}

#[test]
fn branch_join_of_same_category_is_clean() {
    // const/4 v0, #0; if-eqz v0, +3; const/4 v1, #1; goto +2;
    // const/4 v1, #2; return-void   (v1 defined on both paths)
    let code = CodeItem::new(
        2,
        0,
        0,
        vec![0x0012, 0x0038, 0x0003, 0x1112, 0x0228, 0x2112, 0x000e],
    );
    let diags = verify(&code, &[]);
    assert!(is_clean(&diags), "{diags:?}");
}

#[test]
fn move_result_after_invoke_is_clean() {
    // invoke-static {}, meth@0; move-result v0; return v0
    let code = CodeItem::new(1, 0, 0, vec![0x0071, 0x0000, 0x0000, 0x000a, 0x000f]);
    assert!(is_clean(&verify(&code, &[])));
}

#[test]
fn packed_switch_with_payload_is_clean() {
    // const/4 v0, #1; packed-switch v0, +4; return-void;
    // payload: ident 0x0100, size 1, first_key 0, target +... back to 0x3.
    let code = CodeItem::new(
        1,
        0,
        0,
        vec![
            0x1012, // 0x0: const/4 v0, #1
            0x002b, 0x0004, 0x0000, // 0x1: packed-switch v0, @0x5
            0x000e, // 0x4: return-void
            0x0100, 0x0001, 0x0000, 0x0000, 0x0003, 0x0000, // 0x5: payload -> +3 (0x4)
        ],
    );
    let diags = verify(&code, &[]);
    assert!(is_clean(&diags), "{diags:?}");
}

#[test]
fn exception_handler_sees_pre_states_of_throwing_code() {
    // Try range covers a throwing instruction; the handler reads a register
    // defined before the try and writes the caught exception.
    // 0x0: const/4 v1, #0
    // 0x1: new-instance v0, type@0     (can throw -> handler)
    // 0x3: return-void
    // 0x4: move-exception v0; 0x5: return-void  (handler)
    let mut code = CodeItem::new(
        2,
        0,
        0,
        vec![0x0112, 0x0022, 0x0000, 0x000e, 0x000d, 0x000e],
    );
    code.tries.push(TryItem {
        start_addr: 1,
        insn_count: 2,
        handler_index: 0,
    });
    code.handlers.push(EncodedCatchHandler {
        catches: vec![CatchClause {
            type_idx: 0,
            addr: 4,
        }],
        catch_all_addr: None,
    });
    let diags = verify(&code, &[]);
    assert!(is_clean(&diags), "{diags:?}");
}

// ---- corrupted methods (the acceptance cases) -------------------------------

#[test]
fn branch_into_second_code_unit_is_rejected_at_branch_pc() {
    // 0x0: const/16 v0, #5   (2 units: 0x0 and its literal at 0x1)
    // 0x2: goto 0x1          (into const/16's second code unit)
    // The branch itself sits at pc 0x2; the diagnostic must say so.
    let code = CodeItem::new(1, 0, 0, vec![0x0013, 0x0005, 0xff28]);
    let errs = errors(&code, &[]);
    assert!(
        errs.contains(&(Rule::V0004, 2)),
        "expected V0004 at pc 2, got {errs:?}"
    );
}

#[test]
fn read_of_uninitialised_register_is_rejected_at_read_pc() {
    // 0x0: const/4 v0, #0
    // 0x1: add-int/2addr v0, v1   (v1 never defined)
    // 0x2: return-void
    let code = CodeItem::new(2, 0, 0, vec![0x0012, 0x10b0, 0x000e]);
    let errs = errors(&code, &[]);
    assert!(
        errs.contains(&(Rule::V0001, 1)),
        "expected V0001 at pc 1, got {errs:?}"
    );
}

#[test]
fn conditionally_undefined_register_is_rejected() {
    // v0 defined on only one of two joining paths:
    // 0x0: const/4 v1, #0; 0x1: if-eqz v1, +3; 0x3: const/4 v0, #1;
    // 0x4: add-int/2addr v1, v0  <- v0 is Uninit on the branch-taken path
    let code = CodeItem::new(
        2,
        0,
        0,
        vec![0x0112, 0x0138, 0x0003, 0x1012, 0x01b0, 0x000e],
    );
    let errs = errors(&code, &[]);
    assert!(
        errs.contains(&(Rule::V0001, 4)),
        "expected V0001 at pc 4, got {errs:?}"
    );
}

#[test]
fn broken_wide_pair_is_rejected() {
    // const-wide/16 v0, #1; const/4 v1, #0 (clobbers the high half);
    // return-wide v0
    let code = CodeItem::new(2, 0, 0, vec![0x0016, 0x0001, 0x1012, 0x0010]);
    let errs = errors(&code, &[]);
    assert!(
        errs.iter().any(|(r, pc)| *r == Rule::V0001 && *pc == 3),
        "expected V0001 at pc 3 (conflicted low half), got {errs:?}"
    );
}

#[test]
fn wide_half_read_as_single_is_rejected() {
    // const-wide/16 v0, #1; add-int/2addr v0, v0
    let code = CodeItem::new(2, 0, 0, vec![0x0016, 0x0001, 0x00b0, 0x000e]);
    let errs = errors(&code, &[]);
    assert!(
        errs.iter().any(|(r, pc)| *r == Rule::V0002 && *pc == 2),
        "expected V0002 at pc 2, got {errs:?}"
    );
}

#[test]
fn stray_move_result_is_rejected() {
    // const/4 v0, #0; move-result v0 (no preceding invoke)
    let code = CodeItem::new(1, 0, 0, vec![0x0012, 0x000a, 0x000e]);
    let errs = errors(&code, &[]);
    assert!(
        errs.contains(&(Rule::V0003, 1)),
        "expected V0003 at pc 1, got {errs:?}"
    );
}

#[test]
fn fall_through_off_method_end_is_rejected() {
    // const/4 v0, #0  (no return)
    let code = CodeItem::new(1, 0, 0, vec![0x0012]);
    let errs = errors(&code, &[]);
    assert!(
        errs.iter().any(|(r, _)| *r == Rule::V0005),
        "expected V0005, got {errs:?}"
    );
}

#[test]
fn empty_method_is_rejected() {
    let code = CodeItem::new(1, 0, 0, vec![]);
    let errs = errors(&code, &[]);
    assert!(errs.contains(&(Rule::V0005, 0)), "got {errs:?}");
}

#[test]
fn register_out_of_frame_is_rejected() {
    // const/4 v5, #0 in a 2-register frame
    let code = CodeItem::new(2, 0, 0, vec![0x0512, 0x000e]);
    let errs = errors(&code, &[]);
    assert!(
        errs.iter().any(|(r, pc)| *r == Rule::V0006 && *pc == 0),
        "expected V0006 at pc 0, got {errs:?}"
    );
}

#[test]
fn float_int_mix_becomes_conflict_free_any_but_ref_mix_conflicts() {
    // Join of Ref and Int then read -> V0001 (conflict).
    // 0x0: const/4 v1, #0; 0x1: if-eqz v1, +4;
    // 0x3: new-instance v0; 0x5: goto +2; 0x6: const/4 v0 ... wait const
    // joins with everything, use add-int to force Int:
    // 0x6: add-int/lit8 v0, v1, #0; 0x8: neg-int v0, v0 (reads join)
    let code = CodeItem::new(
        2,
        0,
        0,
        vec![
            0x0112, // 0x0 const/4 v1, #0
            0x0138, 0x0005, // 0x1 if-eqz v1, +5 -> 0x6
            0x0022, 0x0000, // 0x3 new-instance v0 (Ref)
            0x0328, // 0x5 goto +3 -> 0x8
            0x00d8, 0x0001, // 0x6 add-int/lit8 v0, v1, #0 (Int)  [2 units -> next 0x8]
            0x007b, // 0x8 neg-int v0, v0 : v0 = Ref join Int = Conflict
            0x000e, // 0x9 return-void
        ],
    );
    let errs = errors(&code, &[]);
    assert!(
        errs.iter().any(|(r, pc)| *r == Rule::V0001 && *pc == 8),
        "expected V0001 at pc 8, got {errs:?}"
    );
}

#[test]
fn undecodable_bytecode_is_v0000() {
    // 0x3e is an unused opcode.
    let code = CodeItem::new(1, 0, 0, vec![0x003e]);
    let diags = verify(&code, &[]);
    assert!(
        diags.iter().any(|d| d.rule == Rule::V0000),
        "expected V0000, got {diags:?}"
    );
}

// ---- lints ------------------------------------------------------------------

#[test]
fn unreachable_code_is_linted_not_rejected() {
    // return-void; const/4 v0, #0 (dead)
    let code = CodeItem::new(1, 0, 0, vec![0x000e, 0x0012]);
    let diags = verify(&code, &[]);
    assert!(is_clean(&diags));
    let lint = diags
        .iter()
        .find(|d| d.rule == Rule::L0001)
        .expect("unreachable lint");
    assert_eq!(lint.dex_pc, 1);
    assert_eq!(lint.severity(), Severity::Warning);
}

#[test]
fn self_move_is_linted() {
    // const/4 v0, #0; move v0, v0; return-void
    let code = CodeItem::new(1, 0, 0, vec![0x0012, 0x0001, 0x000e]);
    let diags = verify(&code, &[]);
    assert!(diags.iter().any(|d| d.rule == Rule::L0002 && d.dex_pc == 1));
}

#[test]
fn dead_store_is_linted_at_the_dead_store() {
    // const/4 v0, #1; const/4 v0, #2; return-void — first store is dead.
    let code = CodeItem::new(1, 0, 0, vec![0x1012, 0x2012, 0x000e]);
    let diags = verify(&code, &[]);
    assert!(
        diags.iter().any(|d| d.rule == Rule::L0003 && d.dex_pc == 0),
        "{diags:?}"
    );
}

#[test]
fn errors_only_suppresses_lints() {
    let code = CodeItem::new(1, 0, 0, vec![0x000e, 0x0012]);
    let diags = verify_method("Lt/T;->m()V", &code, &[], &VerifyOptions::errors_only());
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn allow_suppresses_a_specific_rule() {
    let code = CodeItem::new(1, 0, 0, vec![0x0012, 0x0001, 0x000e]);
    let options = VerifyOptions::default().allow("L0002");
    let diags = verify_method("Lt/T;->m()V", &code, &[], &options);
    assert!(!diags.iter().any(|d| d.rule == Rule::L0002));
}

// ---- diagnostics carry context ----------------------------------------------

#[test]
fn diagnostics_carry_method_and_format() {
    let code = CodeItem::new(2, 0, 0, vec![0x0012, 0x10b0, 0x000e]);
    let diags = verify_method("La/B;->bad()V", &code, &[], &VerifyOptions::default());
    let d = diags.iter().find(|d| d.rule == Rule::V0001).unwrap();
    assert_eq!(d.method, "La/B;->bad()V");
    let text = d.to_string();
    assert!(text.contains("error[V0001]"), "{text}");
    assert!(text.contains("La/B;->bad()V"), "{text}");
    assert!(text.contains("@0x0001"), "{text}");
}
