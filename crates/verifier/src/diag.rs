//! Structured verifier diagnostics: rule codes, severities, and the
//! diagnostic record itself.

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// A lint: suspicious but executable code. Never gates reassembly.
    Warning,
    /// A verification error: the bytecode is rejected by an ART-style
    /// verifier and would be unsafe to hand to downstream static analysis.
    Error,
}

/// A verifier or lint rule. `V####` rules are errors, `L####` rules are
/// warnings (see DESIGN.md, "Verification gate").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// Bytecode that does not decode at all.
    V0000,
    /// Read of an undefined (or conflictingly defined) register.
    V0001,
    /// Broken wide (64-bit) register pair.
    V0002,
    /// `move-result*` not immediately preceded by an invoke or
    /// `filled-new-array`.
    V0003,
    /// Branch target not on an instruction boundary (or inside a payload).
    V0004,
    /// Fall-through off the end of the method or into payload data.
    V0005,
    /// Register number out of range for the frame.
    V0006,
    /// Register holds a value of the wrong category/type for the operation.
    V0007,
    /// 31t payload reference of the wrong kind (or not a payload at all).
    V0008,
    /// Invoke argument register provably incompatible with the declared
    /// signature (receiver included).
    V0009,
    /// Field write of a reference provably unassignable to the field's
    /// declared type.
    V0010,
    /// `return-object` of a reference provably unassignable to the
    /// declared return type.
    V0011,
    /// Unreachable code (e.g. NOP-filled holes left by reassembly).
    L0001,
    /// Move with identical source and destination.
    L0002,
    /// Store that is overwritten before ever being read.
    L0003,
    /// `check-cast` between provably unrelated types: always throws.
    L0004,
    /// `aput-object` of an element provably incompatible with the array's
    /// element type.
    L0005,
}

impl Rule {
    /// The stable `V####`/`L####` code, as used for lint suppression.
    pub const fn code(self) -> &'static str {
        match self {
            Rule::V0000 => "V0000",
            Rule::V0001 => "V0001",
            Rule::V0002 => "V0002",
            Rule::V0003 => "V0003",
            Rule::V0004 => "V0004",
            Rule::V0005 => "V0005",
            Rule::V0006 => "V0006",
            Rule::V0007 => "V0007",
            Rule::V0008 => "V0008",
            Rule::V0009 => "V0009",
            Rule::V0010 => "V0010",
            Rule::V0011 => "V0011",
            Rule::L0001 => "L0001",
            Rule::L0002 => "L0002",
            Rule::L0003 => "L0003",
            Rule::L0004 => "L0004",
            Rule::L0005 => "L0005",
        }
    }

    /// Errors gate reassembly; warnings are advisory.
    pub const fn severity(self) -> Severity {
        match self {
            Rule::L0001 | Rule::L0002 | Rule::L0003 | Rule::L0004 | Rule::L0005 => {
                Severity::Warning
            }
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One verifier finding, anchored to a method and a `dex_pc`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The violated rule.
    pub rule: Rule,
    /// Method reference (`Lpkg/Class;->name(...)R` form), or empty when the
    /// verifier was invoked on a bare code item.
    pub method: String,
    /// Code-unit address of the offending instruction.
    pub dex_pc: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    pub(crate) fn new(rule: Rule, dex_pc: u32, message: String) -> Diagnostic {
        Diagnostic {
            rule,
            method: String::new(),
            dex_pc,
            message,
        }
    }

    /// This diagnostic's severity (derived from its rule).
    pub fn severity(&self) -> Severity {
        self.rule.severity()
    }

    /// Whether this diagnostic rejects the method.
    pub fn is_error(&self) -> bool {
        self.severity() == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.severity() {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        if self.method.is_empty() {
            write!(
                f,
                "{kind}[{}] @{:#06x}: {}",
                self.rule, self.dex_pc, self.message
            )
        } else {
            write!(
                f,
                "{kind}[{}] {} @{:#06x}: {}",
                self.rule, self.method, self.dex_pc, self.message
            )
        }
    }
}
