//! Worklist fixpoint dataflow over the register typestate lattice.
//!
//! Each basic block has an entry frame (one [`RegType`] per register);
//! blocks are simulated in worklist order, merging the outgoing frame into
//! every successor and re-queueing successors whose entry frame changed.
//! Exception handlers receive the merge of the frame *before* every
//! instruction their try range covers (the ART rule: a throw can occur at
//! any covered instruction). Errors are deduplicated by (rule, pc).
//!
//! Two engines produce the same fixpoint:
//!
//! * [`Strategy::Fast`] — the production path: the worklist is a priority
//!   queue ordered by reverse postorder (predecessors usually settle before
//!   their successors, so blocks converge in far fewer visits), block entry
//!   states live in one dense slab instead of per-block `Vec`s, each block
//!   walk reuses a single scratch frame instead of cloning, instruction
//!   effects fill a reusable buffer instead of allocating, and each
//!   instruction's exception-handler targets are precomputed once per CFG
//!   ([`ThrowMap`]) instead of scanning every try range per instruction.
//! * [`Strategy::Reference`] — the pre-optimization FIFO engine with
//!   per-visit frame clones and per-range scans, kept as the differential
//!   baseline (`bench --bin verifier --baseline`, proptests).
//!
//! Diagnostics are emitted only during the post-fixpoint *replay*: the
//! fixpoint runs muted, then each reached block is replayed once from its
//! converged entry frame, snapshotting per-instruction pre-states into a
//! dense [`FrameSlab`] (what [`crate::typed_ir::TypedIr`] materializes) and
//! reporting findings against the final states. Because the converged
//! fixpoint is unique, the diagnostics are a function of the method alone —
//! independent of worklist order, engine, and (for whole-DEX runs) of how
//! many threads verified sibling methods.
//!
//! With DEX context ([`TypeCtx::dex`]), reference writes are refined to the
//! descriptor the instruction actually produces (`new-instance`,
//! `const-string`, field loads, invoke returns), and declared types are
//! checked at use sites: invoke signatures (V0009), field writes (V0010),
//! return types (V0011), provably-failing `check-cast` (L0004), and
//! provably-incompatible `aput-object` (L0005). All typed checks fire only
//! on *provable* breakage — see [`ClassHierarchy::provably_disjoint`].

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};

use dexlego_dalvik::insn::{Decoded, Insn};
use dexlego_dalvik::Opcode;
use dexlego_dex::code::CodeItem;
use dexlego_dex::DexFile;

use crate::cfg::{Cfg, EdgeKind};
use crate::diag::{Diagnostic, Rule};
use crate::effects::{effects_into, Effects, Need, Write};
use crate::hierarchy::{ClassHierarchy, TypeId};
use crate::typestate::{join_frames, RegType};
use crate::ParamKind;

/// Which fixpoint engine verifies a method. Both produce identical
/// diagnostics and frames (enforced by the differential proptests); the
/// reference engine exists as the measured baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum Strategy {
    /// RPO priority worklist, dense state slabs, reusable scratch frame.
    #[default]
    Fast,
    /// FIFO worklist with per-visit clones — the pre-optimization engine.
    Reference,
}

/// Fixpoint pre-state of every real instruction, stored as one dense slab
/// of `regs` lattice values per instruction, indexed like [`Cfg::insns`].
/// Unreachable instructions and payloads have no state.
pub(crate) struct FrameSlab {
    regs: usize,
    present: Vec<bool>,
    data: Vec<RegType>,
}

impl FrameSlab {
    fn new(n: usize, regs: usize) -> FrameSlab {
        FrameSlab {
            regs,
            present: vec![false; n],
            data: vec![RegType::Uninit; n * regs],
        }
    }

    fn set(&mut self, i: usize, frame: &[RegType]) {
        self.present[i] = true;
        self.data[i * self.regs..(i + 1) * self.regs].copy_from_slice(frame);
    }

    /// The pre-state of instruction `i`, if it was reached.
    pub(crate) fn get(&self, i: usize) -> Option<&[RegType]> {
        if *self.present.get(i)? {
            Some(&self.data[i * self.regs..(i + 1) * self.regs])
        } else {
            None
        }
    }
}

/// Alias kept for readability at use sites.
pub(crate) type Frames = FrameSlab;

/// Block entry states as one dense slab (the fast path's replacement for
/// `Vec<Option<Vec<RegType>>>`).
struct BlockStates {
    regs: usize,
    present: Vec<bool>,
    data: Vec<RegType>,
}

impl BlockStates {
    fn new(n: usize, regs: usize) -> BlockStates {
        BlockStates {
            regs,
            present: vec![false; n],
            data: vec![RegType::Uninit; n * regs],
        }
    }

    fn get(&self, b: usize) -> Option<&[RegType]> {
        if self.present[b] {
            Some(&self.data[b * self.regs..(b + 1) * self.regs])
        } else {
            None
        }
    }

    fn set(&mut self, b: usize, frame: &[RegType]) {
        self.present[b] = true;
        self.data[b * self.regs..(b + 1) * self.regs].copy_from_slice(frame);
    }

    /// Joins `frame` into block `b`'s entry state in place; returns whether
    /// the state changed (i.e. the block needs requeueing).
    fn merge(&mut self, b: usize, frame: &[RegType], hier: &ClassHierarchy) -> bool {
        if self.present[b] {
            join_frames(
                &mut self.data[b * self.regs..(b + 1) * self.regs],
                frame,
                hier,
            )
        } else {
            self.set(b, frame);
            true
        }
    }
}

/// Typed verification context: the hierarchy is always present (possibly
/// empty); the DEX pools and declared return type only when verifying with
/// full method context.
pub(crate) struct TypeCtx<'a> {
    pub dex: Option<&'a DexFile>,
    pub hier: &'a ClassHierarchy,
    /// Declared return type, when it is a reference type.
    pub ret: Option<TypeId>,
    /// Reference types of the declared parameters, aligned with the
    /// `ParamKind` slice (`None` for non-reference or unknown parameters).
    pub param_refs: &'a [Option<TypeId>],
}

impl TypeCtx<'_> {
    /// A context with no DEX: refs are untyped Objects, typed checks off.
    pub fn bare<'a>(hier: &'a ClassHierarchy) -> TypeCtx<'a> {
        TypeCtx {
            dex: None,
            hier,
            ret: None,
            param_refs: &[],
        }
    }

    /// Renders a register type for diagnostics: reference types by their
    /// descriptor (`Ljava/lang/String;`), everything else by its lattice
    /// name.
    fn describe(&self, ty: RegType) -> String {
        ty.describe(self.hier)
    }

    /// The interned type for a type-pool index, when DEX context exists.
    fn pool_type(&self, idx: u32) -> Option<TypeId> {
        let desc = self.dex?.type_descriptor(idx).ok()?;
        self.hier.lookup(desc)
    }

    /// The interned type of a field's declared type.
    fn field_type(&self, idx: u32) -> Option<TypeId> {
        let field = self.dex?.field_id(idx).ok()?;
        let desc = self.dex?.type_descriptor(field.type_).ok()?;
        if desc.starts_with('L') || desc.starts_with('[') {
            self.hier.lookup(desc)
        } else {
            None
        }
    }
}

struct Ctx {
    regs: usize,
    /// `true` while the fixpoint iterates: findings are suppressed so that
    /// every diagnostic comes from the replay over converged frames.
    mute: bool,
    seen: HashSet<(Rule, u32)>,
    out: Vec<Diagnostic>,
}

impl Ctx {
    fn report(&mut self, rule: Rule, pc: u32, message: String) {
        if self.mute {
            return;
        }
        if self.seen.insert((rule, pc)) {
            self.out.push(Diagnostic::new(rule, pc, message));
        }
    }
}

/// Runs the dataflow verification, appends findings to `out`, and returns
/// the fixpoint per-instruction pre-states.
pub(crate) fn run(
    cfg: &Cfg,
    code: &CodeItem,
    params: &[ParamKind],
    tcx: &TypeCtx<'_>,
    out: &mut Vec<Diagnostic>,
    strategy: Strategy,
) -> Frames {
    let regs = code.registers_size as usize;
    let ins = code.ins_size as usize;
    let mut ctx = Ctx {
        regs,
        mute: false,
        seen: HashSet::new(),
        out: Vec::new(),
    };
    let mut frames = FrameSlab::new(cfg.insns().len(), regs);

    let entry = entry_frame(regs, ins, params, tcx, &mut ctx);
    if cfg.blocks().is_empty() {
        ctx.report(
            Rule::V0005,
            0,
            "method has no instructions: execution falls off the end".to_owned(),
        );
        ctx.out.sort_by_key(|d| (d.dex_pc, d.rule));
        out.append(&mut ctx.out);
        return frames;
    }

    ctx.mute = true;
    let in_states = match strategy {
        Strategy::Fast => fixpoint_fast(cfg, code, &entry, tcx, &mut ctx),
        Strategy::Reference => fixpoint_reference(cfg, code, &entry, tcx, &mut ctx),
    };
    ctx.mute = false;

    // Replay each reached block once from its converged entry frame: this
    // snapshots per-instruction pre-states and emits every diagnostic
    // against the unique fixpoint (never an intermediate state).
    let mut scratch: Vec<RegType> = Vec::with_capacity(regs);
    let mut eff = Effects::default();
    for (bid, block) in cfg.blocks().iter().enumerate() {
        let Some(state) = in_states.get(bid) else {
            continue;
        };
        scratch.clear();
        scratch.extend_from_slice(state);
        for &i in &block.insns {
            let (pc, d) = &cfg.insns()[i];
            let Decoded::Insn(insn) = d else { continue };
            frames.set(i, &scratch);
            transfer(
                insn,
                *pc,
                prev_insn(cfg, i),
                &mut scratch,
                &mut ctx,
                tcx,
                &mut eff,
            );
        }
    }

    ctx.out.sort_by_key(|d| (d.dex_pc, d.rule));
    out.append(&mut ctx.out);
    frames
}

/// The fast engine: reverse-postorder priority worklist over dense block
/// states, one reusable scratch frame, precomputed handler targets.
fn fixpoint_fast(
    cfg: &Cfg,
    code: &CodeItem,
    entry: &[RegType],
    tcx: &TypeCtx<'_>,
    ctx: &mut Ctx,
) -> BlockStates {
    let nblocks = cfg.blocks().len();
    let mut states = BlockStates::new(nblocks, entry.len());
    states.set(0, entry);

    let rpo = rpo_positions(cfg);
    let throw = ThrowMap::build(cfg, code);
    let mut heap: BinaryHeap<Reverse<(u32, usize)>> = BinaryHeap::new();
    let mut queued = vec![false; nblocks];
    heap.push(Reverse((rpo[0], 0)));
    queued[0] = true;

    let mut scratch: Vec<RegType> = Vec::with_capacity(entry.len());
    let mut eff = Effects::default();
    while let Some(Reverse((_, bid))) = heap.pop() {
        queued[bid] = false;
        scratch.clear();
        match states.get(bid) {
            Some(state) => scratch.extend_from_slice(state),
            None => continue,
        }
        let block = &cfg.blocks()[bid];
        for &i in &block.insns {
            let (pc, d) = &cfg.insns()[i];
            let Decoded::Insn(insn) = d else { continue };
            // A throwing instruction in a try range transfers the
            // *pre*-state of that instruction to its handlers (the ART
            // rule); `throw` already folded the range lookup away.
            for &hb in throw.targets(i) {
                if states.merge(hb, &scratch, tcx.hier) && !queued[hb] {
                    queued[hb] = true;
                    heap.push(Reverse((rpo[hb], hb)));
                }
            }
            transfer(
                insn,
                *pc,
                prev_insn(cfg, i),
                &mut scratch,
                ctx,
                tcx,
                &mut eff,
            );
        }
        for edge in &block.succs {
            if edge.kind == EdgeKind::Exception {
                continue;
            }
            let t = edge.target;
            if states.merge(t, &scratch, tcx.hier) && !queued[t] {
                queued[t] = true;
                heap.push(Reverse((rpo[t], t)));
            }
        }
    }
    states
}

/// The pre-optimization engine, kept verbatim as the measured and
/// differential baseline: FIFO worklist, per-visit entry-frame clone,
/// per-instruction scan over every try range, per-instruction effects
/// allocation, per-merge `to_vec`.
fn fixpoint_reference(
    cfg: &Cfg,
    code: &CodeItem,
    entry: &[RegType],
    tcx: &TypeCtx<'_>,
    ctx: &mut Ctx,
) -> BlockStates {
    let nblocks = cfg.blocks().len();
    let mut in_states: Vec<Option<Vec<RegType>>> = vec![None; nblocks];
    in_states[0] = Some(entry.to_vec());
    let mut worklist: VecDeque<usize> = VecDeque::from([0]);
    let mut queued = vec![false; nblocks];
    queued[0] = true;

    // try range -> handler block ids, resolved once.
    let handler_edges: Vec<(u32, u32, Vec<usize>)> = handler_ranges(cfg, code);

    while let Some(bid) = worklist.pop_front() {
        queued[bid] = false;
        let Some(mut frame) = in_states[bid].clone() else {
            continue;
        };
        let block = &cfg.blocks()[bid];
        for &i in &block.insns {
            let (pc, d) = &cfg.insns()[i];
            let Decoded::Insn(insn) = d else { continue };
            for (lo, hi, handler_blocks) in &handler_edges {
                if *pc >= *lo && *pc < *hi && insn.op.can_throw() {
                    for &hb in handler_blocks {
                        merge_into(
                            &mut in_states,
                            hb,
                            &frame,
                            tcx.hier,
                            &mut worklist,
                            &mut queued,
                        );
                    }
                }
            }
            let mut eff = Effects::default();
            transfer(insn, *pc, prev_insn(cfg, i), &mut frame, ctx, tcx, &mut eff);
        }
        for edge in &block.succs {
            if edge.kind == EdgeKind::Exception {
                continue;
            }
            merge_into(
                &mut in_states,
                edge.target,
                &frame,
                tcx.hier,
                &mut worklist,
                &mut queued,
            );
        }
    }

    let mut states = BlockStates::new(nblocks, entry.len());
    for (b, s) in in_states.iter().enumerate() {
        if let Some(s) = s {
            states.set(b, s);
        }
    }
    states
}

/// Reverse-postorder position of every block (DFS from block 0 over all
/// edge kinds). Blocks unreachable from the entry — which the fixpoint
/// never queues — get stable positions after every reachable one.
fn rpo_positions(cfg: &Cfg) -> Vec<u32> {
    let n = cfg.blocks().len();
    let mut pos = vec![u32::MAX; n];
    if n == 0 {
        return pos;
    }
    let mut visited = vec![false; n];
    let mut post: Vec<usize> = Vec::with_capacity(n);
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    visited[0] = true;
    while let Some(&(b, next)) = stack.last() {
        let succs = &cfg.blocks()[b].succs;
        if next < succs.len() {
            stack.last_mut().expect("stack non-empty").1 += 1;
            let t = succs[next].target;
            if !visited[t] {
                visited[t] = true;
                stack.push((t, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    for (i, &b) in post.iter().rev().enumerate() {
        pos[b] = i as u32;
    }
    let mut fill = post.len() as u32;
    for p in pos.iter_mut() {
        if *p == u32::MAX {
            *p = fill;
            fill += 1;
        }
    }
    pos
}

/// Per-instruction exception-handler targets, flattened once per CFG: a
/// `(start, len)` span per instruction index into one shared target list.
/// Only throwing instructions inside a try range get a non-empty span, so
/// the fixpoint's inner loop replaces the scan over every try range with
/// one slice lookup.
struct ThrowMap {
    spans: Vec<(u32, u32)>,
    targets: Vec<usize>,
}

impl ThrowMap {
    fn build(cfg: &Cfg, code: &CodeItem) -> ThrowMap {
        let mut spans = vec![(0u32, 0u32); cfg.insns().len()];
        let mut targets = Vec::new();
        if !code.tries.is_empty() {
            let ranges = handler_ranges(cfg, code);
            for (i, (pc, d)) in cfg.insns().iter().enumerate() {
                let Decoded::Insn(insn) = d else { continue };
                if !insn.op.can_throw() {
                    continue;
                }
                let start = targets.len();
                for (lo, hi, blocks) in &ranges {
                    if *pc >= *lo && *pc < *hi {
                        for &hb in blocks {
                            // Merging is idempotent; deduplicate so each
                            // handler is merged once per instruction.
                            if !targets[start..].contains(&hb) {
                                targets.push(hb);
                            }
                        }
                    }
                }
                spans[i] = (start as u32, (targets.len() - start) as u32);
            }
        }
        ThrowMap { spans, targets }
    }

    fn targets(&self, i: usize) -> &[usize] {
        let (start, len) = self.spans[i];
        &self.targets[start as usize..(start + len) as usize]
    }
}

/// The real instruction immediately preceding instruction `i` in code
/// order, if any (payloads break adjacency).
fn prev_insn(cfg: &Cfg, i: usize) -> Option<&Insn> {
    if i == 0 {
        return None;
    }
    cfg.insns()[i - 1].1.as_insn()
}

fn merge_into(
    in_states: &mut [Option<Vec<RegType>>],
    target: usize,
    frame: &[RegType],
    hier: &ClassHierarchy,
    worklist: &mut VecDeque<usize>,
    queued: &mut [bool],
) {
    let changed = match &mut in_states[target] {
        Some(existing) => join_frames(existing, frame, hier),
        slot @ None => {
            *slot = Some(frame.to_vec());
            true
        }
    };
    if changed && !queued[target] {
        queued[target] = true;
        worklist.push_back(target);
    }
}

fn entry_frame(
    regs: usize,
    ins: usize,
    params: &[ParamKind],
    tcx: &TypeCtx<'_>,
    ctx: &mut Ctx,
) -> Vec<RegType> {
    let mut frame = vec![RegType::Uninit; regs];
    if ins > regs {
        ctx.report(
            Rule::V0006,
            0,
            format!("ins_size {ins} exceeds registers_size {regs}"),
        );
        return frame;
    }
    let mut at = regs - ins;
    for (k, kind) in params.iter().enumerate() {
        match kind {
            ParamKind::Wide => {
                if at + 1 < regs {
                    frame[at] = RegType::WideLo;
                    frame[at + 1] = RegType::WideHi;
                }
                at += 2;
            }
            other => {
                if at < regs {
                    frame[at] = match other {
                        ParamKind::Int => RegType::Int,
                        ParamKind::Float => RegType::Float,
                        ParamKind::Object => RegType::Ref(
                            tcx.param_refs
                                .get(k)
                                .copied()
                                .flatten()
                                .unwrap_or(TypeId::OBJECT),
                        ),
                        ParamKind::Opaque => RegType::Any,
                        ParamKind::Wide => unreachable!(),
                    };
                }
                at += 1;
            }
        }
    }
    if at != regs {
        ctx.report(
            Rule::V0006,
            0,
            format!(
                "parameter registers occupy {} slots but ins_size is {ins}",
                at - (regs - ins)
            ),
        );
        // Be permissive about the remainder so dataflow can continue.
        for slot in frame.iter_mut().skip(regs - ins) {
            if *slot == RegType::Uninit {
                *slot = RegType::Any;
            }
        }
    }
    frame
}

/// try ranges with their handler block ids.
fn handler_ranges(cfg: &Cfg, code: &CodeItem) -> Vec<(u32, u32, Vec<usize>)> {
    let mut out = Vec::new();
    for t in &code.tries {
        let Some(h) = code.handlers.get(t.handler_index) else {
            continue;
        };
        let mut blocks = Vec::new();
        for clause in &h.catches {
            if let Some(b) = cfg.block_index_of_pc(clause.addr) {
                blocks.push(b);
            }
        }
        if let Some(addr) = h.catch_all_addr {
            if let Some(b) = cfg.block_index_of_pc(addr) {
                blocks.push(b);
            }
        }
        out.push((t.start_addr, t.start_addr + u32::from(t.insn_count), blocks));
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn transfer(
    insn: &Insn,
    pc: u32,
    prev: Option<&Insn>,
    frame: &mut [RegType],
    ctx: &mut Ctx,
    tcx: &TypeCtx<'_>,
    eff: &mut Effects,
) {
    // Structural `move-result*` placement check (V0003): must directly
    // follow an invoke (or `filled-new-array` for the object form) in code
    // order.
    if matches!(
        insn.op,
        Opcode::MoveResult | Opcode::MoveResultWide | Opcode::MoveResultObject
    ) {
        let ok = prev.is_some_and(|p| {
            p.op.is_invoke() || matches!(p.op, Opcode::FilledNewArray | Opcode::FilledNewArrayRange)
        });
        if !ok {
            ctx.report(
                Rule::V0003,
                pc,
                format!(
                    "{} is not immediately preceded by an invoke or filled-new-array",
                    insn.op.mnemonic()
                ),
            );
        }
    }

    effects_into(insn, eff);
    for &(reg, need) in &eff.reads {
        read(reg, need, insn, pc, frame, ctx, tcx);
    }
    if tcx.dex.is_some() {
        typed_checks(insn, pc, frame, ctx, tcx);
    }
    if let Some((reg, w)) = eff.write {
        match w {
            Write::One(ty) => write_one(reg, ty, pc, frame, ctx),
            Write::Ref => {
                let ty = refined_ref(insn, prev, frame, tcx).unwrap_or(TypeId::OBJECT);
                write_one(reg, RegType::Ref(ty), pc, frame, ctx);
            }
            Write::Copy(src) => {
                let ty = frame
                    .get(src as usize)
                    .copied()
                    .filter(|t| t.is_defined() && !matches!(t, RegType::WideLo | RegType::WideHi))
                    .unwrap_or(RegType::Any);
                write_one(reg, ty, pc, frame, ctx);
            }
            Write::Wide => write_wide(reg, pc, frame, ctx),
        }
    }
}

/// The static type of the reference a [`Write::Ref`] instruction produces,
/// when DEX context makes it resolvable.
fn refined_ref(
    insn: &Insn,
    prev: Option<&Insn>,
    frame: &[RegType],
    tcx: &TypeCtx<'_>,
) -> Option<TypeId> {
    match insn.op {
        Opcode::ConstString | Opcode::ConstStringJumbo => tcx.hier.lookup("Ljava/lang/String;"),
        Opcode::ConstClass => tcx.hier.lookup("Ljava/lang/Class;"),
        Opcode::CheckCast | Opcode::NewInstance | Opcode::NewArray => tcx.pool_type(insn.idx),
        Opcode::MoveException => tcx.hier.lookup("Ljava/lang/Throwable;"),
        Opcode::IgetObject | Opcode::SgetObject => tcx.field_type(insn.idx),
        Opcode::AgetObject => {
            let arr = frame.get(insn.b as usize)?.ref_type()?;
            tcx.hier.element(arr)
        }
        Opcode::MoveResultObject => {
            let p = prev?;
            if p.op.is_invoke() {
                let dex = tcx.dex?;
                let method = dex.method_id(p.idx).ok()?;
                let proto = dex.proto(method.proto).ok()?;
                let desc = dex.type_descriptor(proto.return_type).ok()?;
                tcx.hier.lookup(desc)
            } else {
                // filled-new-array carries the array type directly.
                tcx.pool_type(p.idx)
            }
        }
        _ => None,
    }
}

/// Declared-type checks against the pre-state frame: invoke signatures
/// (V0009), field writes (V0010), return types (V0011), provably-failing
/// casts (L0004), and provably-incompatible array stores (L0005).
fn typed_checks(insn: &Insn, pc: u32, frame: &[RegType], ctx: &mut Ctx, tcx: &TypeCtx<'_>) {
    let reg_ref = |reg: u32| frame.get(reg as usize).and_then(|t| t.ref_type());
    let mn = insn.op.mnemonic();
    match insn.op {
        op if op.is_invoke() => check_invoke(insn, pc, frame, ctx, tcx),
        Opcode::CheckCast => {
            if let (Some(src), Some(dst)) = (reg_ref(insn.a), tcx.pool_type(insn.idx)) {
                if tcx.hier.provably_disjoint(src, dst) {
                    ctx.report(
                        Rule::L0004,
                        pc,
                        format!(
                            "check-cast of v{} from {} to {} can never succeed",
                            insn.a,
                            tcx.hier.name(src),
                            tcx.hier.name(dst)
                        ),
                    );
                }
            }
        }
        Opcode::IputObject | Opcode::SputObject => {
            if let (Some(src), Some(field)) = (reg_ref(insn.a), tcx.field_type(insn.idx)) {
                if tcx.hier.provably_disjoint(src, field) {
                    ctx.report(
                        Rule::V0010,
                        pc,
                        format!(
                            "{mn} stores {} into a field of type {}",
                            tcx.hier.name(src),
                            tcx.hier.name(field)
                        ),
                    );
                }
            }
        }
        Opcode::ReturnObject => {
            if let (Some(src), Some(ret)) = (reg_ref(insn.a), tcx.ret) {
                if tcx.hier.provably_disjoint(src, ret) {
                    ctx.report(
                        Rule::V0011,
                        pc,
                        format!(
                            "return-object returns {} from a method declared to return {}",
                            tcx.hier.name(src),
                            tcx.hier.name(ret)
                        ),
                    );
                }
            }
        }
        Opcode::AputObject => {
            let element = reg_ref(insn.b).and_then(|arr| tcx.hier.element(arr));
            if let (Some(src), Some(el)) = (reg_ref(insn.a), element) {
                if tcx.hier.provably_disjoint(src, el) {
                    ctx.report(
                        Rule::L0005,
                        pc,
                        format!(
                            "aput-object stores {} into an array of {}",
                            tcx.hier.name(src),
                            tcx.hier.name(el)
                        ),
                    );
                }
            }
        }
        _ => {}
    }
}

/// Checks an invoke's argument registers against the declared signature:
/// the receiver against the declaring class, each reference parameter
/// against its declared descriptor. Skipped entirely when the register
/// list does not line up with the signature width (other rules cover that).
fn check_invoke(insn: &Insn, pc: u32, frame: &[RegType], ctx: &mut Ctx, tcx: &TypeCtx<'_>) {
    let Some(dex) = tcx.dex else { return };
    let Ok(method) = dex.method_id(insn.idx) else {
        return;
    };
    let Ok(proto) = dex.proto(method.proto) else {
        return;
    };
    let is_static = matches!(insn.op, Opcode::InvokeStatic | Opcode::InvokeStaticRange);
    let mut expected: Vec<(&str, u16)> = Vec::with_capacity(proto.parameters.len() + 1);
    if !is_static {
        let Ok(recv) = dex.type_descriptor(method.class) else {
            return;
        };
        expected.push((recv, 1));
    }
    for &p in &proto.parameters {
        let Ok(desc) = dex.type_descriptor(p) else {
            return;
        };
        let width = if matches!(desc.as_bytes().first(), Some(b'J') | Some(b'D')) {
            2
        } else {
            1
        };
        expected.push((desc, width));
    }
    if expected.iter().map(|&(_, w)| w as usize).sum::<usize>() != insn.regs.len() {
        return;
    }
    let mut at = 0usize;
    for (desc, width) in expected {
        let reg = insn.regs[at];
        at += width as usize;
        if !(desc.starts_with('L') || desc.starts_with('[')) {
            continue;
        }
        let (Some(src), Some(dst)) = (
            frame.get(reg as usize).and_then(|t| t.ref_type()),
            tcx.hier.lookup(desc),
        ) else {
            continue;
        };
        if tcx.hier.provably_disjoint(src, dst) {
            ctx.report(
                Rule::V0009,
                pc,
                format!(
                    "{} passes {} in v{reg} where the signature declares {}",
                    insn.op.mnemonic(),
                    tcx.hier.name(src),
                    tcx.hier.name(dst)
                ),
            );
        }
    }
}

fn read(
    reg: u32,
    need: Need,
    insn: &Insn,
    pc: u32,
    frame: &[RegType],
    ctx: &mut Ctx,
    tcx: &TypeCtx<'_>,
) {
    let mn = insn.op.mnemonic();
    let r = reg as usize;
    let width = if need == Need::Wide { 2 } else { 1 };
    if r + width > ctx.regs {
        ctx.report(
            Rule::V0006,
            pc,
            format!("{mn} reads v{reg} but the frame has {} registers", ctx.regs),
        );
        return;
    }
    if need == Need::Wide {
        let (lo, hi) = (frame[r], frame[r + 1]);
        if lo == RegType::WideLo && hi == RegType::WideHi {
            return;
        }
        if !lo.is_defined() || !hi.is_defined() {
            ctx.report(
                Rule::V0001,
                pc,
                format!(
                    "{mn} reads undefined wide register pair (v{reg}, v{})",
                    reg + 1
                ),
            );
        } else {
            ctx.report(
                Rule::V0002,
                pc,
                format!(
                    "{mn} expects a wide pair in (v{reg}, v{}) but finds {}/{}",
                    reg + 1,
                    tcx.describe(lo),
                    tcx.describe(hi)
                ),
            );
        }
        return;
    }
    let ty = frame[r];
    match ty {
        RegType::Uninit => ctx.report(
            Rule::V0001,
            pc,
            format!("{mn} reads undefined register v{reg}"),
        ),
        RegType::Conflict => ctx.report(
            Rule::V0001,
            pc,
            format!("{mn} reads v{reg}, which holds conflicting definitions"),
        ),
        RegType::WideLo | RegType::WideHi if need != Need::Defined => ctx.report(
            Rule::V0002,
            pc,
            format!("{mn} reads v{reg}, half of a wide pair, as a single register"),
        ),
        _ => {
            let compatible = match need {
                Need::Any1 | Need::Defined => true,
                Need::Num => matches!(
                    ty,
                    RegType::Int | RegType::Float | RegType::Const | RegType::Any
                ),
                Need::IntLike => matches!(ty, RegType::Int | RegType::Const | RegType::Any),
                Need::FloatLike => matches!(ty, RegType::Float | RegType::Const | RegType::Any),
                Need::RefLike => matches!(ty, RegType::Ref(_) | RegType::Const),
                Need::Wide => unreachable!(),
            };
            if !compatible {
                ctx.report(
                    Rule::V0007,
                    pc,
                    format!(
                        "{mn} reads v{reg} as {need:?} but it holds {}",
                        tcx.describe(ty)
                    ),
                );
            }
        }
    }
}

/// Writing over half of an existing wide pair invalidates the other half.
fn invalidate_half(reg: usize, frame: &mut [RegType]) {
    match frame[reg] {
        RegType::WideLo if reg + 1 < frame.len() && frame[reg + 1] == RegType::WideHi => {
            frame[reg + 1] = RegType::Conflict;
        }
        RegType::WideHi if reg >= 1 && frame[reg - 1] == RegType::WideLo => {
            frame[reg - 1] = RegType::Conflict;
        }
        _ => {}
    }
}

fn write_one(reg: u32, ty: RegType, pc: u32, frame: &mut [RegType], ctx: &mut Ctx) {
    let r = reg as usize;
    if r >= ctx.regs {
        ctx.report(
            Rule::V0006,
            pc,
            format!("write to v{reg} but the frame has {} registers", ctx.regs),
        );
        return;
    }
    invalidate_half(r, frame);
    frame[r] = ty;
}

fn write_wide(reg: u32, pc: u32, frame: &mut [RegType], ctx: &mut Ctx) {
    let r = reg as usize;
    if r + 2 > ctx.regs {
        ctx.report(
            Rule::V0006,
            pc,
            format!(
                "wide write to (v{reg}, v{}) but the frame has {} registers",
                reg + 1,
                ctx.regs
            ),
        );
        return;
    }
    invalidate_half(r, frame);
    invalidate_half(r + 1, frame);
    frame[r] = RegType::WideLo;
    frame[r + 1] = RegType::WideHi;
}
