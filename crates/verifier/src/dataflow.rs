//! Worklist fixpoint dataflow over the register typestate lattice.
//!
//! Each basic block has an entry frame (one [`RegType`] per register);
//! blocks are simulated in worklist order, merging the outgoing frame into
//! every successor and re-queueing successors whose entry frame changed.
//! Exception handlers receive the merge of the frame *before* every
//! instruction their try range covers (the ART rule: a throw can occur at
//! any covered instruction). Errors are deduplicated by (rule, pc), since
//! the fixpoint revisits blocks.

use std::collections::{HashSet, VecDeque};

use dexlego_dalvik::insn::Decoded;
use dexlego_dalvik::Opcode;
use dexlego_dex::code::CodeItem;

use crate::cfg::{Cfg, EdgeKind};
use crate::diag::{Diagnostic, Rule};
use crate::effects::{effects, Need, Write};
use crate::typestate::{join_frames, RegType};
use crate::ParamKind;

struct Ctx {
    regs: usize,
    seen: HashSet<(Rule, u32)>,
    out: Vec<Diagnostic>,
}

impl Ctx {
    fn report(&mut self, rule: Rule, pc: u32, message: String) {
        if self.seen.insert((rule, pc)) {
            self.out.push(Diagnostic::new(rule, pc, message));
        }
    }
}

/// Runs the dataflow verification and appends findings to `out`.
pub(crate) fn run(cfg: &Cfg, code: &CodeItem, params: &[ParamKind], out: &mut Vec<Diagnostic>) {
    let regs = code.registers_size as usize;
    let ins = code.ins_size as usize;
    let mut ctx = Ctx {
        regs,
        seen: HashSet::new(),
        out: Vec::new(),
    };

    let entry = entry_frame(regs, ins, params, &mut ctx);
    if cfg.blocks().is_empty() {
        ctx.report(
            Rule::V0005,
            0,
            "method has no instructions: execution falls off the end".to_owned(),
        );
        out.append(&mut ctx.out);
        return;
    }

    let nblocks = cfg.blocks().len();
    let mut in_states: Vec<Option<Vec<RegType>>> = vec![None; nblocks];
    in_states[0] = Some(entry);
    let mut worklist: VecDeque<usize> = VecDeque::from([0]);
    let mut queued = vec![false; nblocks];
    queued[0] = true;

    // try range -> handler block ids, resolved once.
    let handler_edges: Vec<(u32, u32, Vec<usize>)> = handler_ranges(cfg, code);

    while let Some(bid) = worklist.pop_front() {
        queued[bid] = false;
        let Some(mut frame) = in_states[bid].clone() else {
            continue;
        };
        let block = &cfg.blocks()[bid];
        for &i in &block.insns {
            let (pc, d) = &cfg.insns()[i];
            let Decoded::Insn(insn) = d else { continue };

            // A throwing instruction in a try range transfers the *pre*-state
            // of that instruction to its handlers. Non-throwing instructions
            // contribute nothing (the ART rule), so a handler guarding only
            // arithmetic is never entered.
            for (lo, hi, handler_blocks) in &handler_edges {
                if *pc >= *lo && *pc < *hi && insn.op.can_throw() {
                    for &hb in handler_blocks {
                        merge_into(&mut in_states, hb, &frame, &mut worklist, &mut queued);
                    }
                }
            }

            transfer(insn, *pc, prev_insn(cfg, i), &mut frame, &mut ctx);
        }
        for edge in &block.succs {
            if edge.kind == EdgeKind::Exception {
                continue;
            }
            merge_into(
                &mut in_states,
                edge.target,
                &frame,
                &mut worklist,
                &mut queued,
            );
        }
    }

    ctx.out.sort_by_key(|d| (d.dex_pc, d.rule));
    out.append(&mut ctx.out);
}

/// The real instruction immediately preceding instruction `i` in code
/// order, if any (payloads break adjacency).
fn prev_insn(cfg: &Cfg, i: usize) -> Option<&dexlego_dalvik::insn::Insn> {
    if i == 0 {
        return None;
    }
    cfg.insns()[i - 1].1.as_insn()
}

fn merge_into(
    in_states: &mut [Option<Vec<RegType>>],
    target: usize,
    frame: &[RegType],
    worklist: &mut VecDeque<usize>,
    queued: &mut [bool],
) {
    let changed = match &mut in_states[target] {
        Some(existing) => join_frames(existing, frame),
        slot @ None => {
            *slot = Some(frame.to_vec());
            true
        }
    };
    if changed && !queued[target] {
        queued[target] = true;
        worklist.push_back(target);
    }
}

fn entry_frame(regs: usize, ins: usize, params: &[ParamKind], ctx: &mut Ctx) -> Vec<RegType> {
    let mut frame = vec![RegType::Uninit; regs];
    if ins > regs {
        ctx.report(
            Rule::V0006,
            0,
            format!("ins_size {ins} exceeds registers_size {regs}"),
        );
        return frame;
    }
    let mut at = regs - ins;
    for kind in params {
        match kind {
            ParamKind::Wide => {
                if at + 1 < regs {
                    frame[at] = RegType::WideLo;
                    frame[at + 1] = RegType::WideHi;
                }
                at += 2;
            }
            other => {
                if at < regs {
                    frame[at] = match other {
                        ParamKind::Int => RegType::Int,
                        ParamKind::Float => RegType::Float,
                        ParamKind::Object => RegType::Ref,
                        ParamKind::Opaque => RegType::Any,
                        ParamKind::Wide => unreachable!(),
                    };
                }
                at += 1;
            }
        }
    }
    if at != regs {
        ctx.report(
            Rule::V0006,
            0,
            format!(
                "parameter registers occupy {} slots but ins_size is {ins}",
                at - (regs - ins)
            ),
        );
        // Be permissive about the remainder so dataflow can continue.
        for slot in frame.iter_mut().skip(regs - ins) {
            if *slot == RegType::Uninit {
                *slot = RegType::Any;
            }
        }
    }
    frame
}

/// try ranges with their handler block ids.
fn handler_ranges(cfg: &Cfg, code: &CodeItem) -> Vec<(u32, u32, Vec<usize>)> {
    let mut out = Vec::new();
    for t in &code.tries {
        let Some(h) = code.handlers.get(t.handler_index) else {
            continue;
        };
        let mut blocks = Vec::new();
        for clause in &h.catches {
            if let Some(b) = cfg.block_index_of_pc(clause.addr) {
                blocks.push(b);
            }
        }
        if let Some(addr) = h.catch_all_addr {
            if let Some(b) = cfg.block_index_of_pc(addr) {
                blocks.push(b);
            }
        }
        out.push((t.start_addr, t.start_addr + u32::from(t.insn_count), blocks));
    }
    out
}

fn transfer(
    insn: &dexlego_dalvik::insn::Insn,
    pc: u32,
    prev: Option<&dexlego_dalvik::insn::Insn>,
    frame: &mut [RegType],
    ctx: &mut Ctx,
) {
    // Structural `move-result*` placement check (V0003): must directly
    // follow an invoke (or `filled-new-array` for the object form) in code
    // order.
    if matches!(
        insn.op,
        Opcode::MoveResult | Opcode::MoveResultWide | Opcode::MoveResultObject
    ) {
        let ok = prev.is_some_and(|p| {
            p.op.is_invoke() || matches!(p.op, Opcode::FilledNewArray | Opcode::FilledNewArrayRange)
        });
        if !ok {
            ctx.report(
                Rule::V0003,
                pc,
                format!(
                    "{} is not immediately preceded by an invoke or filled-new-array",
                    insn.op.mnemonic()
                ),
            );
        }
    }

    let eff = effects(insn);
    for &(reg, need) in &eff.reads {
        read(reg, need, insn, pc, frame, ctx);
    }
    if let Some((reg, w)) = eff.write {
        match w {
            Write::One(ty) => write_one(reg, ty, pc, frame, ctx),
            Write::Copy(src) => {
                let ty = frame
                    .get(src as usize)
                    .copied()
                    .filter(|t| t.is_defined() && !matches!(t, RegType::WideLo | RegType::WideHi))
                    .unwrap_or(RegType::Any);
                write_one(reg, ty, pc, frame, ctx);
            }
            Write::Wide => write_wide(reg, pc, frame, ctx),
        }
    }
}

fn read(
    reg: u32,
    need: Need,
    insn: &dexlego_dalvik::insn::Insn,
    pc: u32,
    frame: &[RegType],
    ctx: &mut Ctx,
) {
    let mn = insn.op.mnemonic();
    let r = reg as usize;
    let width = if need == Need::Wide { 2 } else { 1 };
    if r + width > ctx.regs {
        ctx.report(
            Rule::V0006,
            pc,
            format!("{mn} reads v{reg} but the frame has {} registers", ctx.regs),
        );
        return;
    }
    if need == Need::Wide {
        let (lo, hi) = (frame[r], frame[r + 1]);
        if lo == RegType::WideLo && hi == RegType::WideHi {
            return;
        }
        if !lo.is_defined() || !hi.is_defined() {
            ctx.report(
                Rule::V0001,
                pc,
                format!(
                    "{mn} reads undefined wide register pair (v{reg}, v{})",
                    reg + 1
                ),
            );
        } else {
            ctx.report(
                Rule::V0002,
                pc,
                format!(
                    "{mn} expects a wide pair in (v{reg}, v{}) but finds {lo:?}/{hi:?}",
                    reg + 1
                ),
            );
        }
        return;
    }
    let ty = frame[r];
    match ty {
        RegType::Uninit => ctx.report(
            Rule::V0001,
            pc,
            format!("{mn} reads undefined register v{reg}"),
        ),
        RegType::Conflict => ctx.report(
            Rule::V0001,
            pc,
            format!("{mn} reads v{reg}, which holds conflicting definitions"),
        ),
        RegType::WideLo | RegType::WideHi if need != Need::Defined => ctx.report(
            Rule::V0002,
            pc,
            format!("{mn} reads v{reg}, half of a wide pair, as a single register"),
        ),
        _ => {
            let compatible = match need {
                Need::Any1 | Need::Defined => true,
                Need::Num => matches!(
                    ty,
                    RegType::Int | RegType::Float | RegType::Const | RegType::Any
                ),
                Need::IntLike => matches!(ty, RegType::Int | RegType::Const | RegType::Any),
                Need::FloatLike => matches!(ty, RegType::Float | RegType::Const | RegType::Any),
                Need::RefLike => matches!(ty, RegType::Ref | RegType::Const),
                Need::Wide => unreachable!(),
            };
            if !compatible {
                ctx.report(
                    Rule::V0007,
                    pc,
                    format!("{mn} reads v{reg} as {need:?} but it holds {ty:?}"),
                );
            }
        }
    }
}

/// Writing over half of an existing wide pair invalidates the other half.
fn invalidate_half(reg: usize, frame: &mut [RegType]) {
    match frame[reg] {
        RegType::WideLo if reg + 1 < frame.len() && frame[reg + 1] == RegType::WideHi => {
            frame[reg + 1] = RegType::Conflict;
        }
        RegType::WideHi if reg >= 1 && frame[reg - 1] == RegType::WideLo => {
            frame[reg - 1] = RegType::Conflict;
        }
        _ => {}
    }
}

fn write_one(reg: u32, ty: RegType, pc: u32, frame: &mut [RegType], ctx: &mut Ctx) {
    let r = reg as usize;
    if r >= ctx.regs {
        ctx.report(
            Rule::V0006,
            pc,
            format!("write to v{reg} but the frame has {} registers", ctx.regs),
        );
        return;
    }
    invalidate_half(r, frame);
    frame[r] = ty;
}

fn write_wide(reg: u32, pc: u32, frame: &mut [RegType], ctx: &mut Ctx) {
    let r = reg as usize;
    if r + 2 > ctx.regs {
        ctx.report(
            Rule::V0006,
            pc,
            format!(
                "wide write to (v{reg}, v{}) but the frame has {} registers",
                reg + 1,
                ctx.regs
            ),
        );
        return;
    }
    invalidate_half(r, frame);
    invalidate_half(r + 1, frame);
    frame[r] = RegType::WideLo;
    frame[r + 1] = RegType::WideHi;
}
