//! Process-level digest-keyed verification cache.
//!
//! Every method's verification result (post-filter diagnostics plus the
//! optional [`TypedIr`]) is keyed by a SHA-1 digest of everything that can
//! influence it:
//!
//! * [`VERIFIER_VERSION`] — bumped whenever verification semantics change,
//!   so a new build never replays results from an older rule set;
//! * the *DEX epoch* ([`dex_epoch`]) — a digest of the constant pools and
//!   class-definition hierarchy links. Two DEX files with equal epochs
//!   intern identical pools in identical order, so an epoch match makes
//!   cached `TypeId`s and pool-index-dependent diagnostics valid verbatim;
//! * the method's pool index (which, under an equal epoch, pins its
//!   signature), staticness, frame configuration, raw code units, and
//!   try/catch tables;
//! * an options fingerprint (engine, lint enablement, suppressed rules,
//!   whether IR was requested).
//!
//! The map is process-global behind a mutex with bounded FIFO eviction.
//! The dominant workload — the pipeline gate plus several taint tools
//! re-verifying the same revealed DEX, and corpus apps sharing generated
//! library classes — hits with zero re-verification. The IR is stored
//! fully identity-stamped behind an [`Arc`]: an equal epoch implies equal
//! pools, so the stamped `method_idx`/signature/class/name transfer
//! verbatim and a hit shares the IR without cloning it. A hit is
//! byte-identical to a fresh run (asserted by the cache tests).

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};

use dexlego_dex::checksum::sha1;
use dexlego_dex::code::CodeItem;
use dexlego_dex::DexFile;

use crate::diag::Diagnostic;
use crate::hierarchy::ClassHierarchy;
use crate::typed_ir::TypedIr;
use crate::VerifyOptions;

/// Version stamp folded into every cache key. Bump the suffix whenever
/// verification semantics change (new rules, lattice changes, message
/// edits), so stale results can never replay across versions.
pub const VERIFIER_VERSION: &str =
    concat!("dexlego-verifier-", env!("CARGO_PKG_VERSION"), "+vfy.2");

/// Entries kept before FIFO eviction. Each entry holds one method's
/// diagnostics and IR; thousands cover a large corpus app.
const CAPACITY: usize = 8192;

/// A cached verification result. Diagnostics are stored method-stamped
/// and the IR fully identity-stamped (both valid verbatim under an equal
/// epoch); the IR is shared, not cloned, on every hit.
pub(crate) struct Entry {
    pub diags: Vec<Diagnostic>,
    pub ir: Option<Arc<TypedIr>>,
}

struct Store {
    map: HashMap<[u8; 20], Arc<Entry>>,
    order: VecDeque<[u8; 20]>,
}

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| {
        Mutex::new(Store {
            map: HashMap::new(),
            order: VecDeque::new(),
        })
    })
}

pub(crate) fn lookup(key: &[u8; 20]) -> Option<Arc<Entry>> {
    store()
        .lock()
        .expect("verify cache lock")
        .map
        .get(key)
        .cloned()
}

pub(crate) fn insert(key: [u8; 20], diags: Vec<Diagnostic>, ir: Option<Arc<TypedIr>>) {
    let mut s = store().lock().expect("verify cache lock");
    if s.map.contains_key(&key) {
        return;
    }
    while s.map.len() >= CAPACITY {
        let Some(old) = s.order.pop_front() else {
            break;
        };
        s.map.remove(&old);
    }
    s.map.insert(key, Arc::new(Entry { diags, ir }));
    s.order.push_back(key);
}

/// Empties the cache (benches and tests).
pub(crate) fn clear() {
    let mut s = store().lock().expect("verify cache lock");
    s.map.clear();
    s.order.clear();
    let mut h = hier_store().lock().expect("hierarchy cache lock");
    h.map.clear();
    h.order.clear();
    drop(h);
    let mut d = dex_store().lock().expect("dex cache lock");
    d.map.clear();
    d.order.clear();
}

/// Interned hierarchies kept before FIFO eviction. Each entry is a full
/// per-DEX hierarchy, so the cap is much smaller than [`CAPACITY`].
const HIER_CAPACITY: usize = 64;

struct HierStore {
    map: HashMap<[u8; 20], Arc<ClassHierarchy>>,
    order: VecDeque<[u8; 20]>,
}

fn hier_store() -> &'static Mutex<HierStore> {
    static STORE: OnceLock<Mutex<HierStore>> = OnceLock::new();
    STORE.get_or_init(|| {
        Mutex::new(HierStore {
            map: HashMap::new(),
            order: VecDeque::new(),
        })
    })
}

/// A cached whole-DEX verification result: the assembled diagnostics and
/// shared method IRs of one `verify_dex`-level call. Keyed by a digest of
/// the epoch, the options fingerprint, and every method body's identity
/// and code, so a re-verification of an unchanged DEX is one lookup
/// instead of one per method.
pub(crate) struct DexEntry {
    pub diags: Vec<Diagnostic>,
    pub methods: Vec<Arc<TypedIr>>,
    pub body_count: u64,
}

/// Whole-DEX entries kept before FIFO eviction.
const DEX_CAPACITY: usize = 128;

struct DexStore {
    map: HashMap<[u8; 20], Arc<DexEntry>>,
    order: VecDeque<[u8; 20]>,
}

fn dex_store() -> &'static Mutex<DexStore> {
    static STORE: OnceLock<Mutex<DexStore>> = OnceLock::new();
    STORE.get_or_init(|| {
        Mutex::new(DexStore {
            map: HashMap::new(),
            order: VecDeque::new(),
        })
    })
}

pub(crate) fn dex_lookup(key: &[u8; 20]) -> Option<Arc<DexEntry>> {
    dex_store()
        .lock()
        .expect("dex cache lock")
        .map
        .get(key)
        .cloned()
}

pub(crate) fn dex_insert(key: [u8; 20], entry: DexEntry) {
    let mut s = dex_store().lock().expect("dex cache lock");
    if s.map.contains_key(&key) {
        return;
    }
    while s.map.len() >= DEX_CAPACITY {
        let Some(old) = s.order.pop_front() else {
            break;
        };
        s.map.remove(&old);
    }
    s.map.insert(key, Arc::new(entry));
    s.order.push_back(key);
}

/// The interned class hierarchy for `dex`, shared across calls with an
/// equal epoch. The epoch digests every pool and class-definition link the
/// interning reads, so two DEX files with equal epochs intern the same
/// hierarchy with the same `TypeId`s — rebuilding it per verification call
/// would be pure waste on the re-verification workload.
pub(crate) fn hierarchy_for(epoch: &[u8; 20], dex: &DexFile) -> Arc<ClassHierarchy> {
    if let Some(hit) = hier_store()
        .lock()
        .expect("hierarchy cache lock")
        .map
        .get(epoch)
    {
        return Arc::clone(hit);
    }
    let built = Arc::new(ClassHierarchy::from_dex(dex));
    let mut s = hier_store().lock().expect("hierarchy cache lock");
    if let Some(racer) = s.map.get(epoch) {
        return Arc::clone(racer);
    }
    while s.map.len() >= HIER_CAPACITY {
        let Some(old) = s.order.pop_front() else {
            break;
        };
        s.map.remove(&old);
    }
    s.map.insert(*epoch, Arc::clone(&built));
    s.order.push_back(*epoch);
    built
}

/// Number of cached method results.
pub(crate) fn len() -> usize {
    store().lock().expect("verify cache lock").map.len()
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Digest of everything pool- and hierarchy-shaped that method verification
/// can observe: strings, type ids, prototypes, field and method ids, and
/// class-definition links (superclass/interfaces/access). Computed once per
/// [`crate::verify_dex`]-level call; an equal epoch means equal interning,
/// so per-method results transfer across `DexFile` instances verbatim.
pub(crate) fn dex_epoch(dex: &DexFile) -> [u8; 20] {
    let mut buf = Vec::with_capacity(4096);
    put_str(&mut buf, VERIFIER_VERSION);
    put_u32(&mut buf, dex.strings().len() as u32);
    for s in dex.strings() {
        put_str(&mut buf, s);
    }
    put_u32(&mut buf, dex.type_ids().len() as u32);
    for &t in dex.type_ids() {
        put_u32(&mut buf, t);
    }
    put_u32(&mut buf, dex.protos().len() as u32);
    for p in dex.protos() {
        put_u32(&mut buf, p.shorty);
        put_u32(&mut buf, p.return_type);
        put_u32(&mut buf, p.parameters.len() as u32);
        for &param in &p.parameters {
            put_u32(&mut buf, param);
        }
    }
    put_u32(&mut buf, dex.field_ids().len() as u32);
    for f in dex.field_ids() {
        put_u32(&mut buf, f.class);
        put_u32(&mut buf, f.type_);
        put_u32(&mut buf, f.name);
    }
    put_u32(&mut buf, dex.method_ids().len() as u32);
    for m in dex.method_ids() {
        put_u32(&mut buf, m.class);
        put_u32(&mut buf, m.proto);
        put_u32(&mut buf, m.name);
    }
    put_u32(&mut buf, dex.class_defs().len() as u32);
    for c in dex.class_defs() {
        put_u32(&mut buf, c.class_idx);
        put_u32(&mut buf, c.access.bits());
        put_u32(&mut buf, c.superclass.map_or(u32::MAX, |s| s));
        put_u32(&mut buf, c.interfaces.len() as u32);
        for &i in &c.interfaces {
            put_u32(&mut buf, i);
        }
    }
    sha1(&buf)
}

/// The part of [`VerifyOptions`] (plus `want_ir`) that selects between
/// distinct result spaces. The engine is included so fast and reference
/// runs never share entries — which keeps differential tests honest even
/// with the cache enabled.
pub(crate) fn options_fingerprint(options: &VerifyOptions, want_ir: bool) -> String {
    let mut allowed: Vec<&str> = options.allowed.iter().map(String::as_str).collect();
    allowed.sort_unstable();
    format!(
        "eo={}|ir={}|ref={}|allow={}",
        options.errors_only,
        want_ir,
        options.reference,
        allowed.join(",")
    )
}

/// Cache key for one method body under one DEX epoch and option set. The
/// method is identified by its pool index — under an equal epoch the
/// method pool is identical, so the index pins the signature without
/// paying to build the signature string on every lookup.
pub(crate) fn method_key(
    epoch: &[u8; 20],
    method_idx: u32,
    is_static: bool,
    code: &CodeItem,
    options_fp: &str,
) -> [u8; 20] {
    let mut buf = Vec::with_capacity(64 + code.insns.len() * 2);
    buf.extend_from_slice(epoch);
    put_u32(&mut buf, method_idx);
    buf.push(u8::from(is_static));
    put_code(&mut buf, code);
    put_str(&mut buf, options_fp);
    sha1(&buf)
}

/// Serialises everything verification reads out of one method body.
fn put_code(buf: &mut Vec<u8>, code: &CodeItem) {
    put_u32(buf, u32::from(code.registers_size));
    put_u32(buf, u32::from(code.ins_size));
    put_u32(buf, code.insns.len() as u32);
    for &unit in &code.insns {
        buf.extend_from_slice(&unit.to_le_bytes());
    }
    put_u32(buf, code.tries.len() as u32);
    for t in &code.tries {
        put_u32(buf, t.start_addr);
        put_u32(buf, u32::from(t.insn_count));
        put_u32(buf, t.handler_index as u32);
    }
    put_u32(buf, code.handlers.len() as u32);
    for h in &code.handlers {
        put_u32(buf, h.catches.len() as u32);
        for c in &h.catches {
            put_u32(buf, c.type_idx);
            put_u32(buf, c.addr);
        }
        put_u32(buf, h.catch_all_addr.map_or(u32::MAX, |a| a));
    }
}

/// Cache key for a whole `verify_dex`-level call: the epoch, the options
/// fingerprint, and every method body in class-definition order. One
/// buffer walk and one digest, much cheaper than a per-method key when
/// nothing changed.
pub(crate) fn dex_key<'a>(
    epoch: &[u8; 20],
    options_fp: &str,
    bodies: impl Iterator<Item = (u32, bool, &'a CodeItem)>,
) -> [u8; 20] {
    let mut buf = Vec::with_capacity(8192);
    buf.extend_from_slice(epoch);
    put_str(&mut buf, options_fp);
    for (method_idx, is_static, code) in bodies {
        put_u32(&mut buf, method_idx);
        buf.push(u8::from(is_static));
        put_code(&mut buf, code);
    }
    sha1(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_code() -> CodeItem {
        CodeItem::new(2, 0, 0, vec![0x0112, 0x000e])
    }

    #[test]
    fn method_key_is_stable_and_input_sensitive() {
        let epoch = [7u8; 20];
        let code = sample_code();
        let k1 = method_key(&epoch, 3, true, &code, "fp");
        assert_eq!(k1, method_key(&epoch, 3, true, &code, "fp"));

        let mut changed = sample_code();
        changed.insns[0] = 0x0212;
        assert_ne!(k1, method_key(&epoch, 3, true, &changed, "fp"));
        assert_ne!(k1, method_key(&epoch, 3, false, &code, "fp"));
        assert_ne!(k1, method_key(&epoch, 4, true, &code, "fp"));
        assert_ne!(k1, method_key(&epoch, 3, true, &code, "fp2"));
        assert_ne!(k1, method_key(&[8u8; 20], 3, true, &code, "fp"));
    }

    #[test]
    fn epoch_reflects_pool_and_version_changes() {
        let mut dex = DexFile::new();
        dex.intern_type("La;");
        let e1 = dex_epoch(&dex);
        assert_eq!(e1, dex_epoch(&dex), "epoch is deterministic");
        dex.intern_type("Lb;");
        assert_ne!(e1, dex_epoch(&dex), "pool growth changes the epoch");
        // The version stamp is folded into the epoch, so a version bump
        // invalidates every key derived from it.
        assert!(VERIFIER_VERSION.contains("+vfy."));
    }

    #[test]
    fn eviction_is_bounded() {
        clear();
        for i in 0..(CAPACITY + 10) {
            let mut key = [0u8; 20];
            key[..8].copy_from_slice(&(i as u64).to_le_bytes());
            insert(key, Vec::new(), None);
        }
        assert!(len() <= CAPACITY);
        clear();
    }
}
