//! Non-fatal lint pass over the CFG: unreachable blocks, self-moves, and
//! dead stores. Lints never gate reassembly; they surface smells the
//! tree-merge process is known to leave behind (NOP-filled holes, redundant
//! prologue moves).

use std::collections::HashMap;

use dexlego_dalvik::insn::Decoded;
use dexlego_dalvik::Opcode;

use crate::cfg::{Cfg, EdgeKind};
use crate::diag::{Diagnostic, Rule};
use crate::effects::{effects, Need, Write};

pub(crate) fn run(cfg: &Cfg, out: &mut Vec<Diagnostic>) {
    unreachable_blocks(cfg, out);
    self_moves(cfg, out);
    dead_stores(cfg, out);
}

fn unreachable_blocks(cfg: &Cfg, out: &mut Vec<Diagnostic>) {
    for block in cfg.blocks() {
        if !block.reachable {
            out.push(Diagnostic::new(
                Rule::L0001,
                block.start,
                format!(
                    "unreachable code ({} instruction{})",
                    block.insns.len(),
                    if block.insns.len() == 1 { "" } else { "s" }
                ),
            ));
        }
    }
}

fn self_moves(cfg: &Cfg, out: &mut Vec<Diagnostic>) {
    for (pc, d) in cfg.insns() {
        let Decoded::Insn(insn) = d else { continue };
        let is_move = matches!(
            insn.op,
            Opcode::Move
                | Opcode::MoveFrom16
                | Opcode::Move16
                | Opcode::MoveWide
                | Opcode::MoveWideFrom16
                | Opcode::MoveWide16
                | Opcode::MoveObject
                | Opcode::MoveObjectFrom16
                | Opcode::MoveObject16
        );
        if is_move && insn.a == insn.b {
            out.push(Diagnostic::new(
                Rule::L0002,
                *pc,
                format!(
                    "{} v{a}, v{a} has no effect",
                    insn.op.mnemonic(),
                    a = insn.a
                ),
            ));
        }
    }
}

fn dead_stores(cfg: &Cfg, out: &mut Vec<Diagnostic>) {
    for block in cfg.blocks() {
        if !block.reachable {
            continue;
        }
        // A handler could observe intermediate states; skip covered blocks.
        if block.succs.iter().any(|e| e.kind == EdgeKind::Exception) {
            continue;
        }
        // reg -> pc of the last write not yet read.
        let mut pending: HashMap<u32, u32> = HashMap::new();
        let mut reported: Vec<u32> = Vec::new();
        for &i in &block.insns {
            let (pc, d) = &cfg.insns()[i];
            let Decoded::Insn(insn) = d else { continue };
            let eff = effects(insn);
            for &(reg, need) in &eff.reads {
                pending.remove(&reg);
                if need == Need::Wide {
                    pending.remove(&(reg + 1));
                }
            }
            if let Some((reg, w)) = eff.write {
                let width = if matches!(w, Write::Wide) { 2 } else { 1 };
                for r in reg..reg + width {
                    if let Some(&store_pc) = pending.get(&r) {
                        if !reported.contains(&store_pc) {
                            reported.push(store_pc);
                            out.push(Diagnostic::new(
                                Rule::L0003,
                                store_pc,
                                format!(
                                    "value stored to v{r} is overwritten at {pc:#06x} without being read"
                                ),
                            ));
                        }
                    }
                    pending.insert(r, *pc);
                }
            }
        }
    }
}
