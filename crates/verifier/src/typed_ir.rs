//! The typed IR: post-fixpoint register frames, successor edges, and
//! def-use sets, materialized per method so downstream analyses share the
//! verifier's work instead of re-deriving it.
//!
//! This is the Dexpler/Soot move applied at the verifier layer: one
//! fixpoint over the typestate lattice, many consumers. `analysis::taint`
//! drives its worklist directly off [`TypedInsn::succs`] and reads receiver
//! static types out of [`TypedInsn::frame`] to prune infeasible virtual
//! dispatch; a disassembler can render frames; future passes get def-use
//! chains for free.

use std::collections::HashMap;

use dexlego_dalvik::disasm;
use dexlego_dalvik::insn::{Decoded, Insn};
use dexlego_dex::DexFile;

use crate::cfg::Cfg;
use crate::dataflow::Frames;
use crate::effects::{effects, Need, Write};
use crate::hierarchy::{ClassHierarchy, TypeId};
use crate::typestate::RegType;

/// One instruction of a verified method, with everything the fixpoint
/// learned about it.
#[derive(Debug, Clone)]
pub struct TypedInsn {
    /// Code-unit address.
    pub pc: u32,
    /// The decoded instruction.
    pub insn: Insn,
    /// Whether the instruction is reachable from the method entry.
    pub reachable: bool,
    /// Fixpoint register typestate *before* this instruction executes.
    /// Empty for unreachable instructions.
    pub frame: Vec<RegType>,
    /// Normal-flow successors, as indices into [`TypedIr::insns`].
    pub succs: Vec<usize>,
    /// Registers this instruction reads (wide pairs listed as both halves).
    pub uses: Vec<u32>,
    /// Registers this instruction writes.
    pub defs: Vec<u32>,
}

impl TypedInsn {
    /// The static reference type held by `reg` on entry to this
    /// instruction, when the frame proves it is a reference.
    pub fn ref_type(&self, reg: u32) -> Option<TypeId> {
        self.frame.get(reg as usize).and_then(|t| t.ref_type())
    }
}

/// The typed IR of one verified method body.
#[derive(Debug, Clone)]
pub struct TypedIr {
    /// Index of the method in the DEX method pool.
    pub method_idx: u32,
    /// Full method reference (`Lpkg/C;->m(...)R`).
    pub signature: String,
    /// Declaring class descriptor.
    pub class: String,
    /// Method name.
    pub name: String,
    /// Frame size in registers.
    pub registers: u16,
    /// Incoming parameter registers.
    pub ins: u16,
    /// Real instructions in address order (payloads folded away).
    pub insns: Vec<TypedInsn>,
    index_of_pc: HashMap<u32, usize>,
}

impl TypedIr {
    /// Builds the IR from a verified method's CFG and fixpoint frames.
    /// Identity fields start empty; the caller stamps them.
    pub(crate) fn build(cfg: &Cfg, frames: &Frames, registers: u16, ins: u16) -> TypedIr {
        // Payloads are folded away, so IR indices differ from cfg indices.
        let mut index_of_pc = HashMap::new();
        let mut count = 0usize;
        for (pc, d) in cfg.insns() {
            if matches!(d, Decoded::Insn(_)) {
                index_of_pc.insert(*pc, count);
                count += 1;
            }
        }

        let mut insns = Vec::with_capacity(count);
        for (i, (pc, d)) in cfg.insns().iter().enumerate() {
            let Decoded::Insn(insn) = d else { continue };
            let frame = frames.get(i).map(<[RegType]>::to_vec);
            let succs = cfg
                .insn_successors(*pc)
                .iter()
                .filter_map(|t| index_of_pc.get(t).copied())
                .collect();
            let (uses, defs) = def_use(insn);
            insns.push(TypedInsn {
                pc: *pc,
                insn: insn.clone(),
                reachable: cfg.is_reachable(*pc),
                frame: frame.unwrap_or_default(),
                succs,
                uses,
                defs,
            });
        }
        TypedIr {
            method_idx: 0,
            signature: String::new(),
            class: String::new(),
            name: String::new(),
            registers,
            ins,
            insns,
            index_of_pc,
        }
    }

    /// The IR index of the instruction at `pc`.
    pub fn index_of_pc(&self, pc: u32) -> Option<usize> {
        self.index_of_pc.get(&pc).copied()
    }

    /// Total register reads+writes recorded, a cheap size proxy for
    /// reporting.
    pub fn def_use_edges(&self) -> usize {
        self.insns.iter().map(|i| i.uses.len() + i.defs.len()).sum()
    }

    /// Smali-flavoured disassembly with each instruction annotated by its
    /// entry frame. Reference registers are named by descriptor
    /// (`Ljava/lang/String;` rather than "ref"); never-written registers
    /// are omitted. Pool indices resolve against `dex` when provided.
    pub fn disassemble(&self, hier: &ClassHierarchy, dex: Option<&DexFile>) -> Vec<String> {
        self.insns
            .iter()
            .map(|ti| {
                let mut line = disasm::format_insn(&ti.insn, ti.pc, dex);
                if !ti.reachable {
                    line.push_str("  ; unreachable");
                } else {
                    let frame: Vec<String> = ti
                        .frame
                        .iter()
                        .enumerate()
                        .filter(|&(_, &t)| t != RegType::Uninit)
                        .map(|(r, &t)| format!("v{r}={}", t.describe(hier)))
                        .collect();
                    if !frame.is_empty() {
                        line.push_str(&format!("  ; {}", frame.join(" ")));
                    }
                }
                line
            })
            .collect()
    }
}

/// Registers read and written by one instruction, wide pairs expanded.
fn def_use(insn: &Insn) -> (Vec<u32>, Vec<u32>) {
    let eff = effects(insn);
    let mut uses = Vec::with_capacity(eff.reads.len());
    for &(reg, need) in &eff.reads {
        uses.push(reg);
        if need == Need::Wide {
            uses.push(reg + 1);
        }
    }
    let mut defs = Vec::new();
    if let Some((reg, w)) = eff.write {
        defs.push(reg);
        if matches!(w, Write::Wide) {
            defs.push(reg + 1);
        }
    }
    (uses, defs)
}
