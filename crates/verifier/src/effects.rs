//! Per-opcode register effects: which registers an instruction reads (and
//! with what category requirement) and what it writes. One table shared by
//! the dataflow verifier and the lint pass.

use dexlego_dalvik::insn::Insn;
use dexlego_dalvik::Opcode;

use crate::typestate::RegType;

/// Requirement on a register read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Need {
    /// Any defined category-1 value (including refs) — `if-*`, `move` of
    /// unknown intent.
    Any1,
    /// A category-1 numeric value (int or float).
    Num,
    /// An int-like value.
    IntLike,
    /// A float value.
    FloatLike,
    /// An object reference.
    RefLike,
    /// Any defined register, wide halves included — invoke arguments,
    /// where wide arguments appear as both halves in the register list.
    Defined,
    /// A properly paired wide value in (reg, reg+1).
    Wide,
}

/// What an instruction writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Write {
    /// A category-1 value of the given type into one register.
    One(RegType),
    /// An object reference whose static type the dataflow resolves from
    /// the instruction's pool index (Object without DEX context).
    Ref,
    /// A copy of the source register's type (the `move` family).
    Copy(u32),
    /// A wide pair into (reg, reg+1).
    Wide,
}

/// Register effects of one instruction.
#[derive(Debug, Clone, Default)]
pub(crate) struct Effects {
    pub reads: Vec<(u32, Need)>,
    pub write: Option<(u32, Write)>,
}

impl Effects {
    fn read(mut self, reg: u32, need: Need) -> Effects {
        self.reads.push((reg, need));
        self
    }

    fn write(mut self, reg: u32, w: Write) -> Effects {
        self.write = Some((reg, w));
        self
    }
}

/// The effects table, allocating a fresh [`Effects`]. Control flow
/// (targets, payloads) is handled by the CFG; this covers only register
/// reads/writes.
pub(crate) fn effects(insn: &Insn) -> Effects {
    let mut out = Effects::default();
    effects_into(insn, &mut out);
    out
}

/// [`effects`] into a reusable buffer: the buffer's read list is cleared
/// and refilled in place, so the dataflow hot loop performs no per-
/// instruction allocation once the buffer has grown to the method's widest
/// instruction.
pub(crate) fn effects_into(insn: &Insn, out: &mut Effects) {
    let mut e = std::mem::take(out);
    e.reads.clear();
    e.write = None;
    *out = fill(insn, e);
}

fn fill(insn: &Insn, e: Effects) -> Effects {
    use Need::*;
    use Opcode as Op;
    use RegType as T;
    let op = insn.op;
    match op {
        Op::Nop | Op::ReturnVoid | Op::Goto | Op::Goto16 | Op::Goto32 => e,

        Op::Move | Op::MoveFrom16 | Op::Move16 => {
            e.read(insn.b, Num).write(insn.a, Write::Copy(insn.b))
        }
        Op::MoveWide | Op::MoveWideFrom16 | Op::MoveWide16 => {
            e.read(insn.b, Wide).write(insn.a, Write::Wide)
        }
        Op::MoveObject | Op::MoveObjectFrom16 | Op::MoveObject16 => {
            e.read(insn.b, RefLike).write(insn.a, Write::Copy(insn.b))
        }

        Op::MoveResult => e.write(insn.a, Write::One(T::Any)),
        Op::MoveResultWide => e.write(insn.a, Write::Wide),
        Op::MoveResultObject | Op::MoveException => e.write(insn.a, Write::Ref),

        Op::Return => e.read(insn.a, Num),
        Op::ReturnWide => e.read(insn.a, Wide),
        Op::ReturnObject => e.read(insn.a, RefLike),

        Op::Const4 | Op::Const16 | Op::Const | Op::ConstHigh16 => {
            e.write(insn.a, Write::One(T::Const))
        }
        Op::ConstWide16 | Op::ConstWide32 | Op::ConstWide | Op::ConstWideHigh16 => {
            e.write(insn.a, Write::Wide)
        }
        Op::ConstString | Op::ConstStringJumbo | Op::ConstClass => e.write(insn.a, Write::Ref),

        Op::MonitorEnter | Op::MonitorExit | Op::Throw | Op::FillArrayData => {
            e.read(insn.a, RefLike)
        }
        Op::CheckCast => e.read(insn.a, RefLike).write(insn.a, Write::Ref),
        Op::InstanceOf => e.read(insn.b, RefLike).write(insn.a, Write::One(T::Int)),
        Op::ArrayLength => e.read(insn.b, RefLike).write(insn.a, Write::One(T::Int)),
        Op::NewInstance => e.write(insn.a, Write::Ref),
        Op::NewArray => e.read(insn.b, IntLike).write(insn.a, Write::Ref),

        Op::FilledNewArray | Op::FilledNewArrayRange => {
            insn.regs.iter().fold(e, |acc, &r| acc.read(r, Defined))
        }

        Op::PackedSwitch | Op::SparseSwitch => e.read(insn.a, IntLike),

        Op::CmplFloat | Op::CmpgFloat => e
            .read(insn.b, FloatLike)
            .read(insn.c, FloatLike)
            .write(insn.a, Write::One(T::Int)),
        Op::CmplDouble | Op::CmpgDouble | Op::CmpLong => e
            .read(insn.b, Wide)
            .read(insn.c, Wide)
            .write(insn.a, Write::One(T::Int)),

        op if op.is_conditional_branch() => {
            if matches!(op.format(), dexlego_dalvik::Format::F22t) {
                e.read(insn.a, Any1).read(insn.b, Any1)
            } else {
                e.read(insn.a, Any1)
            }
        }

        // Array accesses: vB array ref, vC index, vA value.
        Op::Aget => e
            .read(insn.b, RefLike)
            .read(insn.c, IntLike)
            .write(insn.a, Write::One(T::Any)),
        Op::AgetWide => e
            .read(insn.b, RefLike)
            .read(insn.c, IntLike)
            .write(insn.a, Write::Wide),
        Op::AgetObject => e
            .read(insn.b, RefLike)
            .read(insn.c, IntLike)
            .write(insn.a, Write::Ref),
        Op::AgetBoolean | Op::AgetByte | Op::AgetChar | Op::AgetShort => e
            .read(insn.b, RefLike)
            .read(insn.c, IntLike)
            .write(insn.a, Write::One(T::Int)),
        Op::Aput => e
            .read(insn.a, Num)
            .read(insn.b, RefLike)
            .read(insn.c, IntLike),
        Op::AputWide => e
            .read(insn.a, Wide)
            .read(insn.b, RefLike)
            .read(insn.c, IntLike),
        Op::AputObject => e
            .read(insn.a, RefLike)
            .read(insn.b, RefLike)
            .read(insn.c, IntLike),
        Op::AputBoolean | Op::AputByte | Op::AputChar | Op::AputShort => e
            .read(insn.a, IntLike)
            .read(insn.b, RefLike)
            .read(insn.c, IntLike),

        // Instance field accesses: vB object, vA value.
        Op::Iget => e.read(insn.b, RefLike).write(insn.a, Write::One(T::Any)),
        Op::IgetWide => e.read(insn.b, RefLike).write(insn.a, Write::Wide),
        Op::IgetObject => e.read(insn.b, RefLike).write(insn.a, Write::Ref),
        Op::IgetBoolean | Op::IgetByte | Op::IgetChar | Op::IgetShort => {
            e.read(insn.b, RefLike).write(insn.a, Write::One(T::Int))
        }
        Op::Iput => e.read(insn.a, Num).read(insn.b, RefLike),
        Op::IputWide => e.read(insn.a, Wide).read(insn.b, RefLike),
        Op::IputObject => e.read(insn.a, RefLike).read(insn.b, RefLike),
        Op::IputBoolean | Op::IputByte | Op::IputChar | Op::IputShort => {
            e.read(insn.a, IntLike).read(insn.b, RefLike)
        }

        // Static field accesses.
        Op::Sget => e.write(insn.a, Write::One(T::Any)),
        Op::SgetWide => e.write(insn.a, Write::Wide),
        Op::SgetObject => e.write(insn.a, Write::Ref),
        Op::SgetBoolean | Op::SgetByte | Op::SgetChar | Op::SgetShort => {
            e.write(insn.a, Write::One(T::Int))
        }
        Op::Sput => e.read(insn.a, Num),
        Op::SputWide => e.read(insn.a, Wide),
        Op::SputObject => e.read(insn.a, RefLike),
        Op::SputBoolean | Op::SputByte | Op::SputChar | Op::SputShort => e.read(insn.a, IntLike),

        op if op.is_invoke() => insn.regs.iter().fold(e, |acc, &r| acc.read(r, Defined)),

        // Unary operations.
        Op::NegInt | Op::NotInt | Op::IntToByte | Op::IntToChar | Op::IntToShort => {
            e.read(insn.b, IntLike).write(insn.a, Write::One(T::Int))
        }
        Op::NegLong | Op::NotLong | Op::LongToDouble => {
            e.read(insn.b, Wide).write(insn.a, Write::Wide)
        }
        Op::NegFloat => e
            .read(insn.b, FloatLike)
            .write(insn.a, Write::One(T::Float)),
        Op::IntToFloat => e.read(insn.b, IntLike).write(insn.a, Write::One(T::Float)),
        Op::NegDouble | Op::DoubleToLong => e.read(insn.b, Wide).write(insn.a, Write::Wide),
        Op::IntToLong | Op::IntToDouble => e.read(insn.b, IntLike).write(insn.a, Write::Wide),
        Op::LongToInt => e.read(insn.b, Wide).write(insn.a, Write::One(T::Int)),
        Op::LongToFloat | Op::DoubleToFloat => {
            e.read(insn.b, Wide).write(insn.a, Write::One(T::Float))
        }
        Op::FloatToInt => e.read(insn.b, FloatLike).write(insn.a, Write::One(T::Int)),
        Op::FloatToLong | Op::FloatToDouble => e.read(insn.b, FloatLike).write(insn.a, Write::Wide),
        Op::DoubleToInt => e.read(insn.b, Wide).write(insn.a, Write::One(T::Int)),

        // Three-address binary operations.
        Op::ShlLong | Op::ShrLong | Op::UshrLong => e
            .read(insn.b, Wide)
            .read(insn.c, IntLike)
            .write(insn.a, Write::Wide),
        op if (0x90..=0x9a).contains(&(op as u8)) => e
            .read(insn.b, IntLike)
            .read(insn.c, IntLike)
            .write(insn.a, Write::One(T::Int)),
        op if (0x9b..=0xa2).contains(&(op as u8)) => e
            .read(insn.b, Wide)
            .read(insn.c, Wide)
            .write(insn.a, Write::Wide),
        op if (0xa6..=0xaa).contains(&(op as u8)) => e
            .read(insn.b, FloatLike)
            .read(insn.c, FloatLike)
            .write(insn.a, Write::One(T::Float)),
        op if (0xab..=0xaf).contains(&(op as u8)) => e
            .read(insn.b, Wide)
            .read(insn.c, Wide)
            .write(insn.a, Write::Wide),

        // Two-address binary operations.
        Op::ShlLong2addr | Op::ShrLong2addr | Op::UshrLong2addr => e
            .read(insn.a, Wide)
            .read(insn.b, IntLike)
            .write(insn.a, Write::Wide),
        op if (0xb0..=0xba).contains(&(op as u8)) => e
            .read(insn.a, IntLike)
            .read(insn.b, IntLike)
            .write(insn.a, Write::One(T::Int)),
        op if (0xbb..=0xc2).contains(&(op as u8)) => e
            .read(insn.a, Wide)
            .read(insn.b, Wide)
            .write(insn.a, Write::Wide),
        op if (0xc6..=0xca).contains(&(op as u8)) => e
            .read(insn.a, FloatLike)
            .read(insn.b, FloatLike)
            .write(insn.a, Write::One(T::Float)),
        op if (0xcb..=0xcf).contains(&(op as u8)) => e
            .read(insn.a, Wide)
            .read(insn.b, Wide)
            .write(insn.a, Write::Wide),

        // Literal-operand binary operations (lit16/lit8).
        op if (0xd0..=0xe2).contains(&(op as u8)) => {
            e.read(insn.b, IntLike).write(insn.a, Write::One(T::Int))
        }

        // Every opcode is covered above; the ranges make the compiler
        // unable to see that.
        _ => e,
    }
}
