//! Class-hierarchy model built from the DEX `class_def` table.
//!
//! The typestate lattice carries an interned [`TypeId`] inside
//! [`crate::typestate::RegType::Ref`]; this module owns the interning table
//! and answers the two questions typed verification needs:
//!
//! * **subtype** — is a value of static type `a` assignable to `b`?
//!   Answered in three truth values: provably yes, provably no, unknown.
//!   Classes the DEX does not define (framework types) have an unknown
//!   hierarchy, so most queries involving them stay at "unknown" and the
//!   verifier keeps quiet — typed checks only fire on *provable* breakage.
//! * **join** — the least common ancestor of two reference types, used
//!   when control-flow paths merge. Joins climb superclass chains only
//!   (the ART rule: interfaces do not participate in merges), so the join
//!   is a tree LCA: commutative, associative, idempotent. Distinct array
//!   types and classes with unknown ancestry merge to `Ljava/lang/Object;`.
//!
//! Every descriptor in the DEX type pool is interned up front, so lookups
//! during dataflow never mutate the table.

use std::collections::HashMap;

use dexlego_dex::DexFile;

/// The canonical descriptor of the hierarchy root.
pub const OBJECT_DESCRIPTOR: &str = "Ljava/lang/Object;";

/// An interned reference-type descriptor. `TypeId::OBJECT` is always
/// `Ljava/lang/Object;`, the top of the reference lattice; it doubles as
/// "some reference of unknown type" when no DEX context is available.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

impl TypeId {
    /// `Ljava/lang/Object;` — interned first in every hierarchy.
    pub const OBJECT: TypeId = TypeId(0);
}

/// What kind of definition a type has in this DEX.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// Defined by a `class_def` without `ACC_INTERFACE`.
    Class,
    /// Defined by a `class_def` with `ACC_INTERFACE`.
    Interface,
    /// Referenced but not defined here (framework type), or an array or
    /// primitive descriptor.
    Unknown,
}

/// The class-hierarchy model: interning table plus superclass/interface
/// edges for every class the DEX defines.
#[derive(Debug, Clone, Default)]
pub struct ClassHierarchy {
    names: Vec<String>,
    ids: HashMap<String, TypeId>,
    kinds: Vec<Kind>,
    supers: Vec<Option<TypeId>>,
    interfaces: Vec<Vec<TypeId>>,
}

impl ClassHierarchy {
    /// A hierarchy that knows only `Ljava/lang/Object;`. Used when a method
    /// is verified without DEX context.
    pub fn empty() -> ClassHierarchy {
        let mut h = ClassHierarchy::default();
        h.intern(OBJECT_DESCRIPTOR);
        h
    }

    /// Builds the hierarchy from a DEX file: interns every descriptor in
    /// the type pool and records superclass/interface edges for every
    /// defined class.
    pub fn from_dex(dex: &DexFile) -> ClassHierarchy {
        let mut h = ClassHierarchy::empty();
        for &sidx in dex.type_ids() {
            if let Ok(desc) = dex.string(sidx) {
                h.intern(desc);
            }
        }
        for link in dex.hierarchy_links() {
            let id = h.intern(link.class);
            let i = id.0 as usize;
            h.kinds[i] = if link.is_interface {
                Kind::Interface
            } else {
                Kind::Class
            };
            h.supers[i] = Some(match link.superclass {
                Some(s) => h.intern(s),
                None => TypeId::OBJECT,
            });
            h.interfaces[i] = link.interfaces.iter().map(|s| h.intern(s)).collect();
        }
        h
    }

    fn intern(&mut self, desc: &str) -> TypeId {
        if let Some(&id) = self.ids.get(desc) {
            return id;
        }
        let id = TypeId(self.names.len() as u32);
        self.names.push(desc.to_owned());
        self.ids.insert(desc.to_owned(), id);
        self.kinds.push(Kind::Unknown);
        self.supers.push(None);
        self.interfaces.push(Vec::new());
        id
    }

    /// The id of an already-interned descriptor.
    pub fn lookup(&self, desc: &str) -> Option<TypeId> {
        self.ids.get(desc).copied()
    }

    /// The descriptor of an interned type.
    pub fn name(&self, t: TypeId) -> &str {
        self.names
            .get(t.0 as usize)
            .map_or(OBJECT_DESCRIPTOR, String::as_str)
    }

    /// Number of interned types.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when only the implicit `Ljava/lang/Object;` is present.
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 1
    }

    /// Whether `t` is an array type (`[`-prefixed descriptor).
    pub fn is_array(&self, t: TypeId) -> bool {
        self.name(t).starts_with('[')
    }

    /// The element type of an array, when the element descriptor is itself
    /// interned. `None` for non-arrays and primitive/unknown elements.
    pub fn element(&self, t: TypeId) -> Option<TypeId> {
        self.name(t).strip_prefix('[').and_then(|e| {
            if e.starts_with('L') || e.starts_with('[') {
                self.lookup(e)
            } else {
                None
            }
        })
    }

    fn kind(&self, t: TypeId) -> Kind {
        self.kinds
            .get(t.0 as usize)
            .copied()
            .unwrap_or(Kind::Unknown)
    }

    /// The superclass chain of `t`, starting at `t` itself and ending at
    /// the last known link (Object for fully-resolved chains). Bounded to
    /// guard against cyclic `class_def` tables.
    fn chain(&self, t: TypeId) -> Vec<TypeId> {
        let mut chain = vec![t];
        let mut cur = t;
        for _ in 0..64 {
            if cur == TypeId::OBJECT {
                break;
            }
            match self.supers.get(cur.0 as usize).copied().flatten() {
                Some(s) if !chain.contains(&s) => {
                    chain.push(s);
                    cur = s;
                }
                _ => break,
            }
        }
        chain
    }

    /// Whether the full ancestry of `t` is defined in this DEX: every
    /// superclass link resolves until `Ljava/lang/Object;`.
    fn chain_known(&self, t: TypeId) -> bool {
        let chain = self.chain(t);
        chain.last() == Some(&TypeId::OBJECT)
            && chain[..chain.len() - 1]
                .iter()
                .all(|&c| self.kind(c) != Kind::Unknown)
    }

    /// All interfaces provably implemented by `t`: the union of interface
    /// lists along the superclass chain, closed over superinterfaces.
    fn interface_closure(&self, t: TypeId) -> Vec<TypeId> {
        let mut out: Vec<TypeId> = Vec::new();
        let mut work: Vec<TypeId> = self
            .chain(t)
            .iter()
            .flat_map(|&c| self.interfaces.get(c.0 as usize).into_iter().flatten())
            .copied()
            .collect();
        while let Some(i) = work.pop() {
            if out.contains(&i) {
                continue;
            }
            out.push(i);
            // An interface's superinterfaces live in its interface list.
            work.extend(
                self.interfaces
                    .get(i.0 as usize)
                    .into_iter()
                    .flatten()
                    .copied(),
            );
        }
        out
    }

    /// Provable subtyping: `a <: b` by identity, ancestry, implemented
    /// interface, or array covariance. `false` means "not provable", not
    /// "provably false" — see [`ClassHierarchy::provably_disjoint`].
    pub fn is_subtype(&self, a: TypeId, b: TypeId) -> bool {
        if a == b || b == TypeId::OBJECT {
            return true;
        }
        if self.is_array(a) {
            // Array covariance: [A <: [B iff A <: B.
            return match (self.element(a), self.element(b)) {
                (Some(ea), Some(eb)) if self.is_array(b) => self.is_subtype(ea, eb),
                _ => false,
            };
        }
        self.chain(a).contains(&b) || self.interface_closure(a).contains(&b)
    }

    /// Provable *non*-assignability: a value of static type `a` can never
    /// be assigned to `b`. Requires both sides to be fully known — a class
    /// with unknown ancestry, or an interface target (some unknown subclass
    /// of `a` might implement it), keeps the answer at "unknown" and the
    /// result `false`. This is the predicate behind the typed `V####`
    /// checks: they fire only on provable breakage.
    pub fn provably_disjoint(&self, a: TypeId, b: TypeId) -> bool {
        if a == b || a == TypeId::OBJECT || b == TypeId::OBJECT {
            return false;
        }
        match (self.is_array(a), self.is_array(b)) {
            // A defined class (known not to be an array) never holds an
            // array value, and vice versa.
            (true, false) => self.kind(b) == Kind::Class && self.chain_known(b),
            (false, true) => self.kind(a) == Kind::Class && self.chain_known(a),
            (true, true) => match (self.element(a), self.element(b)) {
                (Some(ea), Some(eb)) => self.provably_disjoint(ea, eb),
                _ => false,
            },
            (false, false) => {
                self.kind(a) == Kind::Class
                    && self.kind(b) == Kind::Class
                    && self.chain_known(a)
                    && self.chain_known(b)
                    && !self.is_subtype(a, b)
                    && !self.is_subtype(b, a)
            }
        }
    }

    /// Least common ancestor of two reference types: the merge used at
    /// control-flow joins. Climbs superclass chains only; distinct arrays,
    /// interfaces, and unknown-ancestry classes meet at Object.
    pub fn join(&self, a: TypeId, b: TypeId) -> TypeId {
        if a == b {
            return a;
        }
        if self.is_array(a) || self.is_array(b) {
            return TypeId::OBJECT;
        }
        let chain_a = self.chain(a);
        for &c in &self.chain(b) {
            if chain_a.contains(&c) {
                return c;
            }
        }
        TypeId::OBJECT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dexlego_dex::{AccessFlags, ClassDef};

    /// A: Object; B: A; C: B; D: A; I interface; E: A implements I.
    fn sample() -> ClassHierarchy {
        let mut dex = DexFile::new();
        let names = ["La;", "Lb;", "Lc;", "Ld;", "Li;", "Le;"];
        let ids: Vec<_> = names.iter().map(|n| dex.intern_type(n)).collect();
        let obj = dex.intern_type(OBJECT_DESCRIPTOR);
        dex.intern_type("[La;");
        dex.intern_type("[Lb;");
        dex.intern_type("[I");
        let supers = [obj, ids[0], ids[1], ids[0], obj, ids[0]];
        for (i, (&id, &sup)) in ids.iter().zip(&supers).enumerate() {
            let mut def = ClassDef::new(id);
            def.superclass = Some(sup);
            if names[i] == "Li;" {
                def.access |= AccessFlags::INTERFACE;
            }
            if names[i] == "Le;" {
                def.interfaces = vec![ids[4]];
            }
            dex.class_defs_mut().push(def);
        }
        ClassHierarchy::from_dex(&dex)
    }

    #[test]
    fn subtype_follows_supers_and_interfaces() {
        let h = sample();
        let (a, c, e, i) = (
            h.lookup("La;").unwrap(),
            h.lookup("Lc;").unwrap(),
            h.lookup("Le;").unwrap(),
            h.lookup("Li;").unwrap(),
        );
        assert!(h.is_subtype(c, a));
        assert!(!h.is_subtype(a, c));
        assert!(h.is_subtype(e, i));
        assert!(h.is_subtype(c, TypeId::OBJECT));
    }

    #[test]
    fn join_is_tree_lca() {
        let h = sample();
        let (a, b, c, d) = (
            h.lookup("La;").unwrap(),
            h.lookup("Lb;").unwrap(),
            h.lookup("Lc;").unwrap(),
            h.lookup("Ld;").unwrap(),
        );
        assert_eq!(h.join(c, b), b);
        assert_eq!(h.join(c, d), a);
        assert_eq!(h.join(a, a), a);
        assert_eq!(h.join(c, TypeId::OBJECT), TypeId::OBJECT);
    }

    #[test]
    fn disjointness_needs_full_knowledge() {
        let h = sample();
        let (b, d, i) = (
            h.lookup("Lb;").unwrap(),
            h.lookup("Ld;").unwrap(),
            h.lookup("Li;").unwrap(),
        );
        assert!(h.provably_disjoint(b, d));
        assert!(!h.provably_disjoint(b, b));
        // Interface target: some unknown subclass of B could implement I.
        assert!(!h.provably_disjoint(b, i));
        // Unknown framework class: nothing is provable.
        let mut h2 = ClassHierarchy::empty();
        let s = h2.intern("Ljava/lang/String;");
        assert!(!h2.provably_disjoint(s, TypeId::OBJECT));
    }

    #[test]
    fn arrays_are_covariant_leaves() {
        let h = sample();
        let (aa, ab, ai) = (
            h.lookup("[La;").unwrap(),
            h.lookup("[Lb;").unwrap(),
            h.lookup("[I").unwrap(),
        );
        let b = h.lookup("Lb;").unwrap();
        assert!(h.is_subtype(ab, aa));
        assert!(!h.is_subtype(aa, ab));
        assert_eq!(h.join(aa, ab), TypeId::OBJECT);
        assert!(h.provably_disjoint(aa, b));
        assert_eq!(h.element(ab), Some(b));
        assert_eq!(h.element(ai), None);
    }
}
