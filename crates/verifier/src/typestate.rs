//! The register typestate lattice.
//!
//! The verifier tracks one [`RegType`] per register. DEX constants are
//! untyped (a `const/4 v0, 0` may later be used as an int, a float, or a
//! null reference), so the lattice includes a wildcard [`RegType::Const`];
//! similarly, `aget`/`iget`/`sget`/`move-result` load category-1 values
//! whose int/float distinction is not recoverable without the constant
//! pool, which [`RegType::Any`] models. This keeps the verifier strict on
//! genuine breakage (undefined reads, broken wide pairs, int/ref clashes)
//! while accepting the type ambiguity inherent to real Dalvik bytecode.
//!
//! References carry an interned [`TypeId`]: `Ref(TypeId::OBJECT)` is a
//! reference of unknown type, anything else names a descriptor in the
//! [`ClassHierarchy`]. Merging two distinct reference types is a
//! least-common-ancestor walk, so joins need hierarchy context — use
//! [`RegType::join_with`]; the context-free [`RegType::join`] degrades
//! distinct references to `Ref(TypeId::OBJECT)`.

use crate::hierarchy::{ClassHierarchy, TypeId};

/// Abstract type of one register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegType {
    /// Never written on this path.
    Uninit,
    /// Result of a category-1 `const`: compatible with int, float, and ref.
    Const,
    /// An int-like (boolean/byte/char/short/int) value.
    Int,
    /// A `float` value.
    Float,
    /// A category-1 value of unknown int/float kind (field load, array
    /// load, invoke result).
    Any,
    /// An object or array reference of the given static type
    /// (`TypeId::OBJECT` when unknown).
    Ref(TypeId),
    /// Low half of a wide (long/double) pair.
    WideLo,
    /// High half of a wide pair.
    WideHi,
    /// Incompatible definitions merged; unusable until overwritten.
    Conflict,
}

impl RegType {
    /// A reference of statically unknown type.
    pub const OBJECT: RegType = RegType::Ref(TypeId::OBJECT);

    /// Lattice join of two incoming states for the same register, without
    /// hierarchy context: distinct reference types merge straight to
    /// `Ref(TypeId::OBJECT)`.
    pub fn join(self, other: RegType) -> RegType {
        self.join_with(other, None)
    }

    /// Lattice join with hierarchy context: distinct reference types merge
    /// to their least common ancestor.
    pub fn join_with(self, other: RegType, hier: Option<&ClassHierarchy>) -> RegType {
        use RegType::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Uninit, _) | (_, Uninit) | (Conflict, _) | (_, Conflict) => Conflict,
            (Const, x) | (x, Const) => x,
            (Int, Float) | (Float, Int) => Any,
            (Any, Int) | (Int, Any) | (Any, Float) | (Float, Any) => Any,
            (Ref(a), Ref(b)) => Ref(hier.map_or(TypeId::OBJECT, |h| h.join(a, b))),
            // Ref vs non-ref, or mismatched wide halves: a genuine
            // category clash.
            _ => Conflict,
        }
    }

    /// Whether a read of this register is a read of *some* defined value
    /// (possibly half of a wide pair).
    pub fn is_defined(self) -> bool {
        !matches!(self, RegType::Uninit | RegType::Conflict)
    }

    /// The carried reference type, for `Ref` states.
    pub fn ref_type(self) -> Option<TypeId> {
        match self {
            RegType::Ref(t) => Some(t),
            _ => None,
        }
    }

    /// Renders the type for human output (diagnostics, annotated
    /// disassembly): references by their descriptor
    /// (`Ljava/lang/String;` rather than "Ref" — unknown references keep
    /// the bare "Ref"), everything else by its lattice name.
    pub fn describe(self, hier: &ClassHierarchy) -> String {
        match self {
            RegType::Ref(t) if t == TypeId::OBJECT => "Ref".to_owned(),
            RegType::Ref(t) => hier.name(t).to_owned(),
            other => format!("{other:?}"),
        }
    }
}

/// A register frame: the typestate of every register at one program point.
pub(crate) fn join_frames(into: &mut [RegType], from: &[RegType], hier: &ClassHierarchy) -> bool {
    let mut changed = false;
    for (a, &b) in into.iter_mut().zip(from) {
        let joined = a.join_with(b, Some(hier));
        if joined != *a {
            *a = joined;
            changed = true;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::RegType::{self, *};
    use super::TypeId;

    fn all() -> Vec<RegType> {
        vec![
            Uninit,
            Const,
            Int,
            Float,
            Any,
            Ref(TypeId::OBJECT),
            Ref(TypeId(3)),
            WideLo,
            WideHi,
            Conflict,
        ]
    }

    #[test]
    fn join_is_commutative_and_idempotent() {
        for &a in &all() {
            assert_eq!(a.join(a), a);
            for &b in &all() {
                assert_eq!(a.join(b), b.join(a));
            }
        }
    }

    #[test]
    fn const_is_a_wildcard() {
        assert_eq!(Const.join(Int), Int);
        assert_eq!(Const.join(Float), Float);
        assert_eq!(Const.join(Ref(TypeId(3))), Ref(TypeId(3)));
    }

    #[test]
    fn undefined_paths_conflict() {
        assert_eq!(Uninit.join(Int), Conflict);
        assert_eq!(Ref(TypeId::OBJECT).join(Int), Conflict);
        assert_eq!(WideLo.join(WideHi), Conflict);
    }

    #[test]
    fn distinct_refs_without_context_merge_to_object() {
        assert_eq!(Ref(TypeId(3)).join(Ref(TypeId(4))), RegType::OBJECT);
        assert_eq!(Ref(TypeId(3)).join(Ref(TypeId(3))), Ref(TypeId(3)));
    }
}
