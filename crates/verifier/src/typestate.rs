//! The register typestate lattice.
//!
//! The verifier tracks one [`RegType`] per register. DEX constants are
//! untyped (a `const/4 v0, 0` may later be used as an int, a float, or a
//! null reference), so the lattice includes a wildcard [`RegType::Const`];
//! similarly, `aget`/`iget`/`sget`/`move-result` load category-1 values
//! whose int/float distinction is not recoverable without the constant
//! pool, which [`RegType::Any`] models. This keeps the verifier strict on
//! genuine breakage (undefined reads, broken wide pairs, int/ref clashes)
//! while accepting the type ambiguity inherent to real Dalvik bytecode.

/// Abstract type of one register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegType {
    /// Never written on this path.
    Uninit,
    /// Result of a category-1 `const`: compatible with int, float, and ref.
    Const,
    /// An int-like (boolean/byte/char/short/int) value.
    Int,
    /// A `float` value.
    Float,
    /// A category-1 value of unknown int/float kind (field load, array
    /// load, invoke result).
    Any,
    /// An object or array reference.
    Ref,
    /// Low half of a wide (long/double) pair.
    WideLo,
    /// High half of a wide pair.
    WideHi,
    /// Incompatible definitions merged; unusable until overwritten.
    Conflict,
}

impl RegType {
    /// Lattice join of two incoming states for the same register.
    pub fn join(self, other: RegType) -> RegType {
        use RegType::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Uninit, _) | (_, Uninit) | (Conflict, _) | (_, Conflict) => Conflict,
            (Const, x) | (x, Const) => x,
            (Int, Float) | (Float, Int) => Any,
            (Any, Int) | (Int, Any) | (Any, Float) | (Float, Any) => Any,
            // Ref vs non-ref, or mismatched wide halves: a genuine
            // category clash.
            _ => Conflict,
        }
    }

    /// Whether a read of this register is a read of *some* defined value
    /// (possibly half of a wide pair).
    pub fn is_defined(self) -> bool {
        !matches!(self, RegType::Uninit | RegType::Conflict)
    }
}

/// A register frame: the typestate of every register at one program point.
pub(crate) fn join_frames(into: &mut [RegType], from: &[RegType]) -> bool {
    let mut changed = false;
    for (a, &b) in into.iter_mut().zip(from) {
        let joined = a.join(b);
        if joined != *a {
            *a = joined;
            changed = true;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::RegType::*;

    #[test]
    fn join_is_commutative_and_idempotent() {
        let all = [
            Uninit, Const, Int, Float, Any, Ref, WideLo, WideHi, Conflict,
        ];
        for &a in &all {
            assert_eq!(a.join(a), a);
            for &b in &all {
                assert_eq!(a.join(b), b.join(a));
            }
        }
    }

    #[test]
    fn const_is_a_wildcard() {
        assert_eq!(Const.join(Int), Int);
        assert_eq!(Const.join(Float), Float);
        assert_eq!(Const.join(Ref), Ref);
    }

    #[test]
    fn undefined_paths_conflict() {
        assert_eq!(Uninit.join(Int), Conflict);
        assert_eq!(Ref.join(Int), Conflict);
        assert_eq!(WideLo.join(WideHi), Conflict);
    }
}
