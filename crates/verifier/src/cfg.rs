//! Control-flow graph construction over decoded Dalvik code.
//!
//! Basic blocks are built from [`decode_method`] output: leaders are the
//! entry pc, every valid branch/switch target, every exception handler, and
//! every instruction following a control transfer. Payload
//! pseudo-instructions are excluded from blocks entirely — branching into or
//! falling through to one is a verification error, recorded as a pending
//! finding and reported by the caller once reachability is known.

use std::collections::{BTreeSet, HashMap};

use dexlego_dalvik::insn::{Decoded, Insn};
use dexlego_dalvik::{decode_method, DalvikError, Opcode};
use dexlego_dex::code::{EncodedCatchHandler, TryItem};

use crate::diag::{Diagnostic, Rule};

/// How control reaches a successor block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Sequential flow into the next block.
    FallThrough,
    /// Taken `goto`/`if-*` branch.
    Branch,
    /// One arm of a `packed-switch`/`sparse-switch`.
    Switch,
    /// Transfer to an exception handler from inside a `try` range.
    Exception,
}

/// A successor edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Index of the successor block.
    pub target: usize,
    /// The kind of control transfer.
    pub kind: EdgeKind,
}

/// A basic block: a maximal run of non-payload instructions with a single
/// entry at `start`.
#[derive(Debug, Clone)]
pub struct Block {
    /// dex_pc of the first instruction.
    pub start: u32,
    /// Indices into [`Cfg::insns`] of the member instructions, in order.
    pub insns: Vec<usize>,
    /// Successor edges (normal flow and exception flow).
    pub succs: Vec<Edge>,
    /// Whether the block is reachable from the method entry.
    pub reachable: bool,
}

/// A control-flow graph plus the decoded instruction stream it was built
/// from. Shared between the verifier dataflow, the lint pass, and
/// `analysis::taint` (which drives its worklist off
/// [`Cfg::insn_successors`]).
#[derive(Debug, Clone)]
pub struct Cfg {
    insns: Vec<(u32, Decoded)>,
    blocks: Vec<Block>,
    /// Leader pc -> block index.
    block_at: HashMap<u32, usize>,
    /// Real-instruction pc -> index into `insns`.
    index_of_pc: HashMap<u32, usize>,
    /// Owning block of each real-instruction pc.
    block_of_pc: HashMap<u32, usize>,
    /// Normal-flow (non-exception) successor pcs per real instruction.
    succ_pcs: HashMap<u32, Vec<u32>>,
    /// Findings recorded during construction, already filtered to
    /// reachable code.
    findings: Vec<Diagnostic>,
}

impl Cfg {
    /// Builds the CFG for one method body.
    ///
    /// Malformed control flow (branches off instruction boundaries, wrong
    /// payload kinds, fall-through off the end) does not fail construction:
    /// the offending edges are dropped and the problems reported via
    /// [`Cfg::findings`], so dataflow can still run over the rest.
    ///
    /// # Errors
    ///
    /// Returns the decoder error if the code units do not decode at all.
    pub fn build(
        code: &[u16],
        tries: &[TryItem],
        handlers: &[EncodedCatchHandler],
    ) -> Result<Cfg, DalvikError> {
        let insns = decode_method(code)?;
        Ok(Cfg::from_decoded(insns, tries, handlers))
    }

    fn from_decoded(
        insns: Vec<(u32, Decoded)>,
        tries: &[TryItem],
        handlers: &[EncodedCatchHandler],
    ) -> Cfg {
        let mut index_of_pc = HashMap::new();
        let mut payload_at = HashMap::new();
        for (i, (pc, d)) in insns.iter().enumerate() {
            match d {
                Decoded::Insn(_) => {
                    index_of_pc.insert(*pc, i);
                }
                _ => {
                    payload_at.insert(*pc, i);
                }
            }
        }

        // Pending findings: (source pc, rule, message); reported only if
        // the source instruction ends up reachable.
        let mut pending: Vec<(u32, Rule, String)> = Vec::new();

        // Control-flow targets of each real instruction, with edge kinds.
        let mut out_edges: HashMap<u32, Vec<(u32, EdgeKind)>> = HashMap::new();
        let mut leaders: BTreeSet<u32> = BTreeSet::new();
        if !insns.is_empty() {
            leaders.insert(insns[0].0);
        }

        let check_target = |pc: u32,
                            target: u32,
                            what: &str,
                            pending: &mut Vec<(u32, Rule, String)>|
         -> Option<u32> {
            if index_of_pc.contains_key(&target) {
                Some(target)
            } else if payload_at.contains_key(&target) {
                pending.push((
                    pc,
                    Rule::V0004,
                    format!("{what} target {target:#06x} lands inside payload data"),
                ));
                None
            } else {
                pending.push((
                    pc,
                    Rule::V0004,
                    format!("{what} target {target:#06x} is not on an instruction boundary"),
                ));
                None
            }
        };

        for (pc, d) in &insns {
            let Decoded::Insn(insn) = d else { continue };
            let pc = *pc;
            let mut edges = Vec::new();
            match insn.op {
                Opcode::Goto | Opcode::Goto16 | Opcode::Goto32 => {
                    if let Some(t) = check_target(pc, insn.target(pc), "goto", &mut pending) {
                        edges.push((t, EdgeKind::Branch));
                    }
                }
                op if op.is_conditional_branch() => {
                    if let Some(t) = check_target(pc, insn.target(pc), "branch", &mut pending) {
                        edges.push((t, EdgeKind::Branch));
                    }
                }
                Opcode::PackedSwitch | Opcode::SparseSwitch => {
                    let payload_pc = insn.target(pc);
                    let arm = match payload_at.get(&payload_pc).map(|&i| &insns[i].1) {
                        Some(Decoded::PackedSwitchPayload { targets, .. })
                            if insn.op == Opcode::PackedSwitch =>
                        {
                            Some(targets)
                        }
                        Some(Decoded::SparseSwitchPayload { targets, .. })
                            if insn.op == Opcode::SparseSwitch =>
                        {
                            Some(targets)
                        }
                        _ => {
                            pending.push((
                                pc,
                                Rule::V0008,
                                format!(
                                    "{} at {pc:#06x} does not reference a matching payload",
                                    insn.op.mnemonic()
                                ),
                            ));
                            None
                        }
                    };
                    for &off in arm.into_iter().flatten() {
                        let target = pc.wrapping_add(off as u32);
                        if let Some(t) = check_target(pc, target, "switch arm", &mut pending) {
                            edges.push((t, EdgeKind::Switch));
                        }
                    }
                }
                Opcode::FillArrayData => {
                    let payload_pc = insn.target(pc);
                    if !matches!(
                        payload_at.get(&payload_pc).map(|&i| &insns[i].1),
                        Some(Decoded::FillArrayDataPayload { .. })
                    ) {
                        pending.push((
                            pc,
                            Rule::V0008,
                            format!(
                                "fill-array-data at {pc:#06x} does not reference an array payload"
                            ),
                        ));
                    }
                }
                _ => {}
            }
            for &(t, _) in &edges {
                leaders.insert(t);
            }
            // The instruction after any control transfer starts a block.
            if insn.op.has_branch_target() || insn.op.is_terminator() {
                let next = pc + insn.units() as u32;
                if index_of_pc.contains_key(&next) {
                    leaders.insert(next);
                }
            }
            out_edges.insert(pc, edges);
        }

        // Exception handlers are leaders.
        for t in tries {
            if let Some(h) = handlers.get(t.handler_index) {
                for clause in &h.catches {
                    if index_of_pc.contains_key(&clause.addr) {
                        leaders.insert(clause.addr);
                    }
                }
                if let Some(addr) = h.catch_all_addr {
                    if index_of_pc.contains_key(&addr) {
                        leaders.insert(addr);
                    }
                }
            }
        }

        // Carve the instruction stream into blocks.
        let mut blocks: Vec<Block> = Vec::new();
        let mut block_at = HashMap::new();
        let mut block_of_pc = HashMap::new();
        for (i, (pc, d)) in insns.iter().enumerate() {
            if !matches!(d, Decoded::Insn(_)) {
                continue;
            }
            let start_new = blocks.is_empty()
                || leaders.contains(pc)
                || blocks.last().is_some_and(|b| b.insns.is_empty());
            let start_new = start_new || {
                // Non-adjacent to the previous instruction (payload gap).
                let last = blocks.last().and_then(|b| b.insns.last());
                last.is_some_and(|&j| {
                    let (ppc, pd) = &insns[j];
                    ppc + pd.units() as u32 != *pc
                })
            };
            if start_new {
                block_at.insert(*pc, blocks.len());
                blocks.push(Block {
                    start: *pc,
                    insns: Vec::new(),
                    succs: Vec::new(),
                    reachable: false,
                });
            }
            let bid = blocks.len() - 1;
            blocks[bid].insns.push(i);
            block_of_pc.insert(*pc, bid);
        }

        // Wire normal-flow edges.
        let code_end: u32 = insns
            .last()
            .map(|(pc, d)| pc + d.units() as u32)
            .unwrap_or(0);
        for block in &mut blocks {
            let &last_idx = block.insns.last().expect("blocks are non-empty");
            let (pc, d) = &insns[last_idx];
            let insn = d.as_insn().expect("blocks hold real instructions");
            let mut succs: Vec<Edge> = out_edges
                .remove(pc)
                .unwrap_or_default()
                .into_iter()
                .map(|(t, kind)| Edge {
                    target: block_at[&t],
                    kind,
                })
                .collect();
            if !insn.op.is_terminator() {
                let next = pc + insn.units() as u32;
                if let Some(&b) = block_at.get(&next) {
                    succs.push(Edge {
                        target: b,
                        kind: EdgeKind::FallThrough,
                    });
                } else if next >= code_end {
                    pending.push((
                        *pc,
                        Rule::V0005,
                        format!(
                            "{} falls through off the end of the method",
                            insn.op.mnemonic()
                        ),
                    ));
                } else {
                    pending.push((
                        *pc,
                        Rule::V0005,
                        format!("{} falls through into payload data", insn.op.mnemonic()),
                    ));
                }
            }
            block.succs = succs;
        }

        // Exception edges: a block with a throwing instruction covered by a
        // try range may transfer to each of the range's handlers. Coverage
        // of non-throwing instructions alone adds no edge (the ART rule —
        // a handler guarding only arithmetic is dead).
        for t in tries {
            let Some(h) = handlers.get(t.handler_index) else {
                continue;
            };
            let mut handler_blocks = Vec::new();
            for clause in &h.catches {
                match block_at.get(&clause.addr) {
                    Some(&b) => handler_blocks.push(b),
                    None => pending.push((
                        t.start_addr,
                        Rule::V0004,
                        format!(
                            "catch handler {:#06x} is not on an instruction boundary",
                            clause.addr
                        ),
                    )),
                }
            }
            if let Some(addr) = h.catch_all_addr {
                match block_at.get(&addr) {
                    Some(&b) => handler_blocks.push(b),
                    None => pending.push((
                        t.start_addr,
                        Rule::V0004,
                        format!("catch-all handler {addr:#06x} is not on an instruction boundary"),
                    )),
                }
            }
            let lo = t.start_addr;
            let hi = t.start_addr + u32::from(t.insn_count);
            for block in blocks.iter_mut() {
                let covered = block.insns.iter().any(|&i| {
                    insns[i].0 >= lo
                        && insns[i].0 < hi
                        && insns[i].1.as_insn().is_some_and(|x| x.op.can_throw())
                });
                if covered {
                    for &hb in &handler_blocks {
                        let edge = Edge {
                            target: hb,
                            kind: EdgeKind::Exception,
                        };
                        if !block.succs.contains(&edge) {
                            block.succs.push(edge);
                        }
                    }
                }
            }
        }

        // Reachability from the entry block.
        if !blocks.is_empty() {
            let mut stack = vec![0usize];
            while let Some(b) = stack.pop() {
                if blocks[b].reachable {
                    continue;
                }
                blocks[b].reachable = true;
                for edge in blocks[b].succs.clone() {
                    stack.push(edge.target);
                }
            }
        }

        // Per-instruction normal-flow successors (for `analysis::taint`).
        let mut succ_pcs = HashMap::new();
        for block in &blocks {
            for (k, &i) in block.insns.iter().enumerate() {
                let pc = insns[i].0;
                let next: Vec<u32> = if k + 1 < block.insns.len() {
                    vec![insns[block.insns[k + 1]].0]
                } else {
                    block
                        .succs
                        .iter()
                        .filter(|e| e.kind != EdgeKind::Exception)
                        .map(|e| blocks[e.target].start)
                        .collect()
                };
                succ_pcs.insert(pc, next);
            }
        }

        // Keep only findings whose source instruction is reachable.
        let findings = pending
            .into_iter()
            .filter(|(pc, _, _)| {
                block_of_pc
                    .get(pc)
                    .map(|&b| blocks[b].reachable)
                    // Findings anchored to try ranges (handler problems)
                    // are always kept.
                    .unwrap_or(true)
            })
            .map(|(pc, rule, message)| Diagnostic::new(rule, pc, message))
            .collect();

        Cfg {
            insns,
            blocks,
            block_at,
            index_of_pc,
            block_of_pc,
            succ_pcs,
            findings,
        }
    }

    /// The decoded instruction stream, payloads included, in address order.
    pub fn insns(&self) -> &[(u32, Decoded)] {
        &self.insns
    }

    /// The basic blocks, in address order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The block starting at leader `pc`, if any.
    pub fn block_at(&self, pc: u32) -> Option<&Block> {
        self.block_at.get(&pc).map(|&b| &self.blocks[b])
    }

    /// The real instruction at `pc`, if `pc` is an instruction boundary.
    pub fn insn_at(&self, pc: u32) -> Option<&Insn> {
        self.index_of_pc
            .get(&pc)
            .and_then(|&i| self.insns[i].1.as_insn())
    }

    /// Normal-flow (non-exception) successor pcs of the instruction at
    /// `pc`. Empty for terminators, payloads, and unknown pcs.
    pub fn insn_successors(&self, pc: u32) -> &[u32] {
        self.succ_pcs.get(&pc).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether the instruction at `pc` is reachable from the method entry.
    pub fn is_reachable(&self, pc: u32) -> bool {
        self.block_of_pc
            .get(&pc)
            .is_some_and(|&b| self.blocks[b].reachable)
    }

    /// Control-flow problems discovered during construction (invalid branch
    /// targets, payload mismatches, fall-through off the end), restricted
    /// to reachable code.
    pub fn findings(&self) -> &[Diagnostic] {
        &self.findings
    }

    pub(crate) fn block_index_of_pc(&self, pc: u32) -> Option<usize> {
        self.block_of_pc.get(&pc).copied()
    }
}
