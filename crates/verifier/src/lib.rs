#![forbid(unsafe_code)]

//! ART-style static bytecode verifier and lint engine over the
//! [`dexlego_dalvik`] instruction model.
//!
//! The DEX container checks in `dexlego_dex::verify` stop at pool
//! referential integrity — nothing there looks *inside* an instruction
//! stream. This crate fills that gap with three layers:
//!
//! 1. **CFG construction** ([`cfg::Cfg`]): basic blocks over
//!    [`dexlego_dalvik::decode_method`] output, successor edges for
//!    branches/gotos/switch payloads, exception edges from try/catch
//!    tables, payload regions excluded from reachable code.
//! 2. **Typestate dataflow** ([`typestate::RegType`]): a worklist fixpoint
//!    over a per-register lattice (`Uninit`, `Const`, int-like, `Float`,
//!    `Ref`, `WideLo`/`WideHi` pairing, `Conflict`) flagging undefined
//!    reads, broken wide pairs, stray `move-result`s, branches off
//!    instruction boundaries, and fall-through off the method end.
//! 3. **Lints** (`L####` rules): non-fatal smells — unreachable blocks,
//!    self-moves, dead stores.
//!
//! Rule codes are stable: `V####` diagnostics are errors and gate
//! reassembly (see `dexlego_core::reassemble`); `L####` diagnostics are
//! warnings. Individual rules can be suppressed via
//! [`VerifyOptions::allow`]. See DESIGN.md ("Verification gate") for the
//! full rule table.
//!
//! # Example
//!
//! ```
//! use dexlego_dex::CodeItem;
//! use dexlego_verifier::{verify_method, Rule, VerifyOptions};
//!
//! // add-int v0, v1, v1 reads undefined v1, then return-void.
//! let code = CodeItem::new(2, 0, 0, vec![0x0090, 0x0101, 0x000e]);
//! let diags = verify_method("La;->m()V", &code, &[], &VerifyOptions::default());
//! assert!(diags.iter().any(|d| d.rule == Rule::V0001 && d.dex_pc == 0));
//! ```

pub mod cfg;
mod dataflow;
pub mod diag;
mod effects;
mod lint;
pub mod typestate;

use std::collections::HashSet;

use dexlego_dex::code::CodeItem;
use dexlego_dex::{AccessFlags, DexFile};

pub use cfg::{Block, Cfg, Edge, EdgeKind};
pub use diag::{Diagnostic, Rule, Severity};
pub use typestate::RegType;

/// Category of one declared method parameter, as seen by the register
/// frame. Derive from descriptors with [`param_kinds`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// boolean/byte/char/short/int — one int-like register.
    Int,
    /// float — one float register.
    Float,
    /// long/double — a wide register pair.
    Wide,
    /// Object or array reference (`L...;` / `[...`), including `this`.
    Object,
    /// Unknown category-1 value (used when the signature is unavailable).
    Opaque,
}

impl ParamKind {
    /// The kind for a single type descriptor.
    pub fn of_descriptor(desc: &str) -> ParamKind {
        match desc.as_bytes().first() {
            Some(b'J') | Some(b'D') => ParamKind::Wide,
            Some(b'F') => ParamKind::Float,
            Some(b'L') | Some(b'[') => ParamKind::Object,
            _ => ParamKind::Int,
        }
    }

    /// Registers this parameter occupies.
    pub fn width(self) -> u16 {
        if self == ParamKind::Wide {
            2
        } else {
            1
        }
    }
}

/// Parameter kinds for a method: an implicit `this` reference first unless
/// static, then one entry per declared parameter descriptor.
pub fn param_kinds<S: AsRef<str>>(is_static: bool, params: &[S]) -> Vec<ParamKind> {
    let mut kinds = Vec::with_capacity(params.len() + 1);
    if !is_static {
        kinds.push(ParamKind::Object);
    }
    kinds.extend(params.iter().map(|p| ParamKind::of_descriptor(p.as_ref())));
    kinds
}

/// Verification options: lint enablement and per-rule suppression.
#[derive(Debug, Clone, Default)]
pub struct VerifyOptions {
    /// Skip the lint pass entirely (errors only).
    pub errors_only: bool,
    allowed: HashSet<String>,
}

impl VerifyOptions {
    /// Errors only, no lints.
    pub fn errors_only() -> VerifyOptions {
        VerifyOptions {
            errors_only: true,
            ..VerifyOptions::default()
        }
    }

    /// Suppresses every future diagnostic with the given rule code (e.g.
    /// `"L0003"`). Suppressing a `V####` rule downgrades the gate for that
    /// rule — use with care.
    pub fn allow(mut self, code: &str) -> VerifyOptions {
        self.allowed.insert(code.to_owned());
        self
    }

    fn keeps(&self, d: &Diagnostic) -> bool {
        if self.errors_only && !d.is_error() {
            return false;
        }
        !self.allowed.contains(d.rule.code())
    }
}

/// Verifies one method body.
///
/// `method` is the method reference used in diagnostics (any string;
/// `Lpkg/C;->m(...)R` by convention). `params` are the frame's incoming
/// parameter kinds ([`param_kinds`]); pass `&[]` to treat all `ins`
/// registers as unknown-but-defined.
///
/// Returns all diagnostics, errors first within equal pcs. An empty result
/// means the method is verifier-clean.
pub fn verify_method(
    method: &str,
    code: &CodeItem,
    params: &[ParamKind],
    options: &VerifyOptions,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    match Cfg::build(&code.insns, &code.tries, &code.handlers) {
        Err(e) => {
            diags.push(Diagnostic::new(
                Rule::V0000,
                0,
                format!("bytecode does not decode: {e}"),
            ));
        }
        Ok(cfg) => {
            diags.extend_from_slice(cfg.findings());
            let owned: Vec<ParamKind>;
            let params = if params.is_empty() && code.ins_size > 0 {
                // Unknown signature: treat every in-register as defined.
                owned = vec![ParamKind::Opaque; code.ins_size as usize];
                &owned
            } else {
                params
            };
            dataflow::run(&cfg, code, params, &mut diags);
            if !options.errors_only {
                lint::run(&cfg, &mut diags);
            }
        }
    }
    diags.retain(|d| options.keeps(d));
    for d in &mut diags {
        d.method = method.to_owned();
    }
    diags.sort_by_key(|d| (d.dex_pc, d.rule));
    diags
}

/// Verifies every method body in a DEX file.
///
/// Parameter kinds are derived from each method's prototype and access
/// flags. Diagnostics carry full method references.
pub fn verify_dex(dex: &DexFile, options: &VerifyOptions) -> Vec<Diagnostic> {
    let mut all = Vec::new();
    for class in dex.class_defs() {
        let Some(data) = &class.class_data else {
            continue;
        };
        for method in data.methods() {
            let Some(code) = &method.code else { continue };
            let sig = dex
                .method_signature(method.method_idx)
                .unwrap_or_else(|_| format!("<method#{}>", method.method_idx));
            let kinds = method_param_kinds(dex, method.method_idx, method.access);
            all.extend(verify_method(&sig, code, &kinds, options));
        }
    }
    all
}

/// Parameter kinds for a pool method, from its prototype and access flags.
pub fn method_param_kinds(dex: &DexFile, method_idx: u32, access: AccessFlags) -> Vec<ParamKind> {
    let mut descs = Vec::new();
    if let Ok(m) = dex.method_id(method_idx) {
        if let Ok(proto) = dex.proto(m.proto) {
            for &p in &proto.parameters {
                if let Ok(d) = dex.type_descriptor(p) {
                    descs.push(d.to_owned());
                }
            }
        }
    }
    param_kinds(access.contains(AccessFlags::STATIC), &descs)
}

/// Convenience: true when `diags` contains no error-severity diagnostics.
pub fn is_clean(diags: &[Diagnostic]) -> bool {
    !diags.iter().any(Diagnostic::is_error)
}
