#![forbid(unsafe_code)]

//! ART-style static bytecode verifier and lint engine over the
//! [`dexlego_dalvik`] instruction model.
//!
//! The DEX container checks in `dexlego_dex::verify` stop at pool
//! referential integrity — nothing there looks *inside* an instruction
//! stream. This crate fills that gap with four layers:
//!
//! 1. **CFG construction** ([`cfg::Cfg`]): basic blocks over
//!    [`dexlego_dalvik::decode_method`] output, successor edges for
//!    branches/gotos/switch payloads, exception edges from try/catch
//!    tables, payload regions excluded from reachable code.
//! 2. **Typestate dataflow** ([`typestate::RegType`]): a worklist fixpoint
//!    over a per-register lattice (`Uninit`, `Const`, int-like, `Float`,
//!    descriptor-carrying `Ref`, `WideLo`/`WideHi` pairing, `Conflict`)
//!    flagging undefined reads, broken wide pairs, stray `move-result`s,
//!    branches off instruction boundaries, and fall-through off the method
//!    end. With DEX context, reference types are tracked per descriptor
//!    over the [`hierarchy::ClassHierarchy`] and checked against declared
//!    signatures, field types, and return types (V0009–V0011).
//! 3. **Lints** (`L####` rules): non-fatal smells — unreachable blocks,
//!    self-moves, dead stores, provably-failing casts and array stores.
//! 4. **Typed IR** ([`typed_ir::TypedIr`]): the fixpoint's per-instruction
//!    register frames, successor edges, and def-use sets, materialized via
//!    [`verify_dex_typed`] so downstream analyses (`analysis::taint`)
//!    consume the verifier's work instead of re-deriving it.
//!
//! Rule codes are stable: `V####` diagnostics are errors and gate
//! reassembly (see `dexlego_core::reassemble`); `L####` diagnostics are
//! warnings. Individual rules can be suppressed via
//! [`VerifyOptions::allow`]. See DESIGN.md ("Verification gate" and "Typed
//! verifier IR") for the full rule table.
//!
//! # Example
//!
//! ```
//! use dexlego_dex::CodeItem;
//! use dexlego_verifier::{verify_method, Rule, VerifyOptions};
//!
//! // add-int v0, v1, v1 reads undefined v1, then return-void.
//! let code = CodeItem::new(2, 0, 0, vec![0x0090, 0x0101, 0x000e]);
//! let diags = verify_method("La;->m()V", &code, &[], &VerifyOptions::default());
//! assert!(diags.iter().any(|d| d.rule == Rule::V0001 && d.dex_pc == 0));
//! ```

mod cache;
pub mod cfg;
mod dataflow;
pub mod diag;
mod effects;
pub mod hierarchy;
mod lint;
pub mod typed_ir;
pub mod typestate;

use std::collections::HashSet;
use std::sync::Arc;

use dexlego_dex::code::CodeItem;
use dexlego_dex::{AccessFlags, DexFile};

pub use cache::VERIFIER_VERSION;
pub use cfg::{Block, Cfg, Edge, EdgeKind};
pub use diag::{Diagnostic, Rule, Severity};
pub use hierarchy::{ClassHierarchy, TypeId};
pub use typed_ir::{TypedInsn, TypedIr};
pub use typestate::RegType;

use dataflow::{Strategy, TypeCtx};

/// Empties the process-level verify cache (benches and tests; production
/// callers never need this — version and epoch digests handle
/// invalidation).
pub fn clear_verify_cache() {
    cache::clear();
}

/// Number of method results currently held by the process-level verify
/// cache.
pub fn verify_cache_len() -> usize {
    cache::len()
}

/// Category of one declared method parameter, as seen by the register
/// frame. Derive from descriptors with [`param_kinds`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// boolean/byte/char/short/int — one int-like register.
    Int,
    /// float — one float register.
    Float,
    /// long/double — a wide register pair.
    Wide,
    /// Object or array reference (`L...;` / `[...`), including `this`.
    Object,
    /// Unknown category-1 value (used when the signature is unavailable).
    Opaque,
}

impl ParamKind {
    /// The kind for a single type descriptor.
    pub fn of_descriptor(desc: &str) -> ParamKind {
        match desc.as_bytes().first() {
            Some(b'J') | Some(b'D') => ParamKind::Wide,
            Some(b'F') => ParamKind::Float,
            Some(b'L') | Some(b'[') => ParamKind::Object,
            _ => ParamKind::Int,
        }
    }

    /// Registers this parameter occupies.
    pub fn width(self) -> u16 {
        if self == ParamKind::Wide {
            2
        } else {
            1
        }
    }
}

/// Parameter kinds for a method: an implicit `this` reference first unless
/// static, then one entry per declared parameter descriptor.
pub fn param_kinds<S: AsRef<str>>(is_static: bool, params: &[S]) -> Vec<ParamKind> {
    let mut kinds = Vec::with_capacity(params.len() + 1);
    if !is_static {
        kinds.push(ParamKind::Object);
    }
    kinds.extend(params.iter().map(|p| ParamKind::of_descriptor(p.as_ref())));
    kinds
}

/// Verification options: lint enablement, per-rule suppression, and the
/// execution knobs of the fast path (engine, cache, worker count).
///
/// Defaults are the production configuration: the fast fixpoint engine,
/// the process-level verify cache enabled, and the worker count resolved
/// from `DEXLEGO_WORKERS`/available parallelism. Both engines and the
/// cached/uncached paths produce identical diagnostics and IR (enforced by
/// the differential proptests), so these knobs trade speed, never results.
#[derive(Debug, Clone, Default)]
pub struct VerifyOptions {
    /// Skip the lint pass entirely (errors only).
    pub errors_only: bool,
    allowed: HashSet<String>,
    /// Use the pre-optimization FIFO engine (the measured baseline).
    reference: bool,
    /// Bypass the process-level verify cache.
    no_cache: bool,
    /// Explicit worker count for whole-DEX verification; `None` resolves
    /// via [`dexlego_pool::resolve_workers`].
    workers: Option<usize>,
}

impl VerifyOptions {
    /// Errors only, no lints.
    pub fn errors_only() -> VerifyOptions {
        VerifyOptions {
            errors_only: true,
            ..VerifyOptions::default()
        }
    }

    /// Suppresses every future diagnostic with the given rule code (e.g.
    /// `"L0003"`). Suppressing a `V####` rule downgrades the gate for that
    /// rule — use with care.
    pub fn allow(mut self, code: &str) -> VerifyOptions {
        self.allowed.insert(code.to_owned());
        self
    }

    /// Selects the pre-optimization sequential engine: FIFO worklist,
    /// per-visit frame clones, no parallelism. This is the `--baseline`
    /// measured by `bench --bin verifier` and the reference side of the
    /// differential proptests.
    pub fn sequential_reference(mut self) -> VerifyOptions {
        self.reference = true;
        self
    }

    /// Disables the process-level verify cache for this run.
    pub fn without_cache(mut self) -> VerifyOptions {
        self.no_cache = true;
        self
    }

    /// Pins the worker count for whole-DEX verification (1 = sequential).
    pub fn with_workers(mut self, workers: usize) -> VerifyOptions {
        self.workers = Some(workers.max(1));
        self
    }

    fn keeps(&self, d: &Diagnostic) -> bool {
        if self.errors_only && !d.is_error() {
            return false;
        }
        !self.allowed.contains(d.rule.code())
    }
}

/// Verifies one method body.
///
/// `method` is the method reference used in diagnostics (any string;
/// `Lpkg/C;->m(...)R` by convention). `params` are the frame's incoming
/// parameter kinds ([`param_kinds`]); pass `&[]` to treat all `ins`
/// registers as unknown-but-defined. Without DEX context, references are
/// tracked untyped; use [`verify_dex_typed`] for descriptor-level checks.
///
/// Returns all diagnostics, errors first within equal pcs. An empty result
/// means the method is verifier-clean.
pub fn verify_method(
    method: &str,
    code: &CodeItem,
    params: &[ParamKind],
    options: &VerifyOptions,
) -> Vec<Diagnostic> {
    let hier = ClassHierarchy::empty();
    let tcx = TypeCtx::bare(&hier);
    verify_method_with(method, code, params, &tcx, options, false).0
}

/// Shared verification core: CFG, dataflow (optionally typed via `tcx`),
/// lints, filtering, and — when `want_ir` — the typed IR with identity
/// fields left for the caller to stamp.
fn verify_method_with(
    method: &str,
    code: &CodeItem,
    params: &[ParamKind],
    tcx: &TypeCtx<'_>,
    options: &VerifyOptions,
    want_ir: bool,
) -> (Vec<Diagnostic>, Option<TypedIr>) {
    let mut diags = Vec::new();
    let mut ir = None;
    match Cfg::build(&code.insns, &code.tries, &code.handlers) {
        Err(e) => {
            diags.push(Diagnostic::new(
                Rule::V0000,
                0,
                format!("bytecode does not decode: {e}"),
            ));
        }
        Ok(cfg) => {
            diags.extend_from_slice(cfg.findings());
            let owned: Vec<ParamKind>;
            let params = if params.is_empty() && code.ins_size > 0 {
                // Unknown signature: treat every in-register as defined.
                owned = vec![ParamKind::Opaque; code.ins_size as usize];
                &owned
            } else {
                params
            };
            let strategy = if options.reference {
                Strategy::Reference
            } else {
                Strategy::Fast
            };
            let frames = dataflow::run(&cfg, code, params, tcx, &mut diags, strategy);
            if !options.errors_only {
                lint::run(&cfg, &mut diags);
            }
            if want_ir {
                ir = Some(TypedIr::build(
                    &cfg,
                    &frames,
                    code.registers_size,
                    code.ins_size,
                ));
            }
        }
    }
    diags.retain(|d| options.keeps(d));
    for d in &mut diags {
        d.method = method.to_owned();
    }
    diags.sort_by_key(|d| (d.dex_pc, d.rule));
    (diags, ir)
}

/// Verifies every method body in a DEX file.
///
/// Parameter kinds are derived from each method's prototype and access
/// flags, reference types from the DEX class hierarchy. Diagnostics carry
/// full method references.
pub fn verify_dex(dex: &DexFile, options: &VerifyOptions) -> Vec<Diagnostic> {
    verify_dex_inner(dex, options, false).diagnostics
}

/// The result of [`verify_dex_typed`]: diagnostics plus the reusable typed
/// artifacts — the class hierarchy and one [`TypedIr`] per verified method
/// body. This is the "verify + analyze in one fixpoint" entry point:
/// downstream analyses consume the IR instead of re-running the dataflow.
#[derive(Debug, Clone, Default)]
pub struct TypedDex {
    /// The interned class hierarchy of the DEX, shared (`Arc`) with the
    /// epoch-keyed hierarchy cache.
    pub hierarchy: Arc<ClassHierarchy>,
    /// Typed IR for every method body, in class-definition order. Shared
    /// (`Arc`) because a verify-cache hit hands out the cached IR without
    /// cloning it.
    pub methods: Vec<Arc<TypedIr>>,
    /// All diagnostics, as from [`verify_dex`].
    pub diagnostics: Vec<Diagnostic>,
    /// Method results served from the process-level verify cache.
    pub cache_hits: u64,
    /// Method results verified from scratch in this call.
    pub cache_misses: u64,
}

impl TypedDex {
    /// Total instructions across all method IRs.
    pub fn insn_count(&self) -> usize {
        self.methods.iter().map(|m| m.insns.len()).sum()
    }
}

/// Verifies every method body and materializes the typed IR.
pub fn verify_dex_typed(dex: &DexFile, options: &VerifyOptions) -> TypedDex {
    verify_dex_inner(dex, options, true)
}

/// Methods below this count are verified sequentially even when more
/// workers are available: thread-scope setup would dominate.
const PARALLEL_THRESHOLD: usize = 16;

/// One method body to verify, in class-definition order.
struct WorkItem<'a> {
    method_idx: u32,
    access: AccessFlags,
    code: &'a CodeItem,
}

fn verify_dex_inner(dex: &DexFile, options: &VerifyOptions, want_ir: bool) -> TypedDex {
    // One epoch digest per call covers every per-method cache key and the
    // hierarchy cache; skip the pool walk entirely when the cache is
    // bypassed.
    let epoch = if options.no_cache {
        None
    } else {
        Some(cache::dex_epoch(dex))
    };
    let hierarchy = match &epoch {
        Some(e) => cache::hierarchy_for(e, dex),
        None => Arc::new(ClassHierarchy::from_dex(dex)),
    };
    let mut work: Vec<WorkItem<'_>> = Vec::new();
    for class in dex.class_defs() {
        let Some(data) = &class.class_data else {
            continue;
        };
        for method in data.methods() {
            let Some(code) = &method.code else { continue };
            work.push(WorkItem {
                method_idx: method.method_idx,
                access: method.access,
                code,
            });
        }
    }

    let options_fp = cache::options_fingerprint(options, want_ir);

    // Whole-DEX fast path: one digest over every method body answers an
    // unchanged re-verification (the pipeline gate plus downstream taint
    // tools verifying the same revealed DEX) with a single lookup.
    let dex_key = epoch.as_ref().map(|e| {
        cache::dex_key(
            e,
            &options_fp,
            work.iter()
                .map(|w| (w.method_idx, w.access.contains(AccessFlags::STATIC), w.code)),
        )
    });
    if let Some(key) = &dex_key {
        if let Some(hit) = cache::dex_lookup(key) {
            return TypedDex {
                hierarchy,
                methods: hit.methods.clone(),
                diagnostics: hit.diags.clone(),
                cache_hits: hit.body_count,
                cache_misses: 0,
            };
        }
    }

    // Verifies one method: cache lookup, else the full CFG + fixpoint.
    // Returns (diagnostics, stamped shared IR, cache hit?). A hit pays no
    // signature construction and no IR clone: the key pins the method by
    // pool index, and the stored IR is already identity-stamped (valid
    // verbatim because an equal epoch means equal pools).
    let run_one = |w: &WorkItem<'_>| -> (Vec<Diagnostic>, Option<Arc<TypedIr>>, bool) {
        let is_static = w.access.contains(AccessFlags::STATIC);
        let key = epoch
            .as_ref()
            .map(|e| cache::method_key(e, w.method_idx, is_static, w.code, &options_fp));
        if let Some(key) = &key {
            if let Some(hit) = cache::lookup(key) {
                return (hit.diags.clone(), hit.ir.clone(), true);
            }
        }
        let sig = dex
            .method_signature(w.method_idx)
            .unwrap_or_else(|_| format!("<method#{}>", w.method_idx));
        let kinds = method_param_kinds(dex, w.method_idx, w.access);
        let param_refs = method_param_refs(dex, &hierarchy, w.method_idx, w.access);
        let tcx = TypeCtx {
            dex: Some(dex),
            hier: &hierarchy,
            ret: method_return_ref(dex, &hierarchy, w.method_idx),
            param_refs: &param_refs,
        };
        let (diags, ir) = verify_method_with(&sig, w.code, &kinds, &tcx, options, want_ir);
        let ir = ir.map(|mut ir| {
            ir.method_idx = w.method_idx;
            ir.signature = sig;
            if let Ok(m) = dex.method_id(w.method_idx) {
                ir.class = dex.type_descriptor(m.class).unwrap_or_default().to_owned();
                ir.name = dex.string(m.name).unwrap_or_default().to_owned();
            }
            Arc::new(ir)
        });
        if let Some(key) = key {
            cache::insert(key, diags.clone(), ir.clone());
        }
        (diags, ir, false)
    };

    // Methods are independent and the hierarchy is read-only after
    // interning, so whole-DEX verification fans out per method. The pool
    // preserves submission order, so concatenating per-method results
    // reproduces the sequential output byte for byte regardless of worker
    // count (each method's diagnostics are already sorted; methods stay in
    // class-definition order).
    let workers = dexlego_pool::resolve_workers(options.workers).min(work.len().max(1));
    let results: Vec<(Vec<Diagnostic>, Option<Arc<TypedIr>>, bool)> =
        if workers > 1 && !options.reference && work.len() >= PARALLEL_THRESHOLD {
            let refs: Vec<&WorkItem<'_>> = work.iter().collect();
            dexlego_pool::parallel_map_expect(refs, workers, run_one)
        } else {
            work.iter().map(run_one).collect()
        };

    let mut out = TypedDex::default();
    for (diags, ir, hit) in results {
        if hit {
            out.cache_hits += 1;
        } else {
            out.cache_misses += 1;
        }
        out.diagnostics.extend(diags);
        if let Some(ir) = ir {
            out.methods.push(ir);
        }
    }
    if let Some(key) = dex_key {
        cache::dex_insert(
            key,
            cache::DexEntry {
                diags: out.diagnostics.clone(),
                methods: out.methods.clone(),
                body_count: work.len() as u64,
            },
        );
    }
    out.hierarchy = hierarchy;
    out
}

/// Parameter kinds for a pool method, from its prototype and access flags.
pub fn method_param_kinds(dex: &DexFile, method_idx: u32, access: AccessFlags) -> Vec<ParamKind> {
    let mut descs = Vec::new();
    if let Ok(m) = dex.method_id(method_idx) {
        if let Ok(proto) = dex.proto(m.proto) {
            for &p in &proto.parameters {
                if let Ok(d) = dex.type_descriptor(p) {
                    descs.push(d.to_owned());
                }
            }
        }
    }
    param_kinds(access.contains(AccessFlags::STATIC), &descs)
}

/// Interned reference types for a pool method's parameters, aligned with
/// [`method_param_kinds`] (the implicit `this` first unless static).
fn method_param_refs(
    dex: &DexFile,
    hier: &ClassHierarchy,
    method_idx: u32,
    access: AccessFlags,
) -> Vec<Option<TypeId>> {
    let mut refs = Vec::new();
    let Ok(m) = dex.method_id(method_idx) else {
        return refs;
    };
    if !access.contains(AccessFlags::STATIC) {
        refs.push(
            dex.type_descriptor(m.class)
                .ok()
                .and_then(|d| hier.lookup(d)),
        );
    }
    if let Ok(proto) = dex.proto(m.proto) {
        for &p in &proto.parameters {
            let r = dex.type_descriptor(p).ok().and_then(|d| {
                if d.starts_with('L') || d.starts_with('[') {
                    hier.lookup(d)
                } else {
                    None
                }
            });
            refs.push(r);
        }
    }
    refs
}

/// The declared return type of a pool method, when it is a reference type.
fn method_return_ref(dex: &DexFile, hier: &ClassHierarchy, method_idx: u32) -> Option<TypeId> {
    let m = dex.method_id(method_idx).ok()?;
    let proto = dex.proto(m.proto).ok()?;
    let desc = dex.type_descriptor(proto.return_type).ok()?;
    if desc.starts_with('L') || desc.starts_with('[') {
        hier.lookup(desc)
    } else {
        None
    }
}

/// Convenience: true when `diags` contains no error-severity diagnostics.
pub fn is_clean(diags: &[Diagnostic]) -> bool {
    !diags.iter().any(Diagnostic::is_error)
}
