//! End-to-end packer tests: every profile hides the app from static
//! analysis, every profile is defeated by DexLego's JIT collection, and the
//! re-hiding adversary additionally defeats dump-based baselines.

use dexlego_analysis::tools::all_tools;
use dexlego_core::baseline::{dump, BaselineKind};
use dexlego_core::pipeline::reveal;
use dexlego_dalvik::builder::ProgramBuilder;
use dexlego_dalvik::{Insn, Opcode};
use dexlego_dex::DexFile;
use dexlego_packer::{pack, PackerId};
use dexlego_runtime::Runtime;

const ENTRY: &str = "Lapp/Main;";

/// A small app whose `onCreate` leaks the device id to the network.
fn leaky_app() -> DexFile {
    let mut pb = ProgramBuilder::new();
    pb.class(ENTRY, |c| {
        c.superclass("Landroid/app/Activity;");
        c.method("onCreate", &["Landroid/os/Bundle;"], "V", 2, |m| {
            let this = m.this_reg();
            m.const_str(0, "phone");
            m.invoke(
                Opcode::InvokeVirtual,
                "Landroid/content/Context;",
                "getSystemService",
                &["Ljava/lang/String;"],
                "Ljava/lang/Object;",
                &[this, 0],
            );
            let mut mr0 = Insn::of(Opcode::MoveResultObject);
            mr0.a = 0;
            m.asm.push(mr0);
            m.invoke(
                Opcode::InvokeVirtual,
                "Landroid/telephony/TelephonyManager;",
                "getDeviceId",
                &[],
                "Ljava/lang/String;",
                &[0],
            );
            let mut mr = Insn::of(Opcode::MoveResultObject);
            mr.a = 1;
            m.asm.push(mr);
            m.invoke(
                Opcode::InvokeStatic,
                "Lcom/dexlego/Net;",
                "send",
                &["Ljava/lang/String;"],
                "V",
                &[1],
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    pb.build().unwrap()
}

#[test]
fn original_app_is_flagged_but_shell_is_not() {
    let app = leaky_app();
    for tool in all_tools() {
        assert!(tool.run(&app).leaky(), "{} finds the plain leak", tool.name);
    }
    for id in PackerId::table1() {
        let packed = pack(&app, ENTRY, id).unwrap();
        assert!(
            packed.shell_dex.find_class(ENTRY).is_none(),
            "{id:?}: original class must not appear in the shell"
        );
        for tool in all_tools() {
            assert!(
                !tool.run(&packed.shell_dex).leaky(),
                "{}: shell of {id:?} must look benign",
                tool.name
            );
        }
    }
}

#[test]
fn every_packer_runs_and_leaks_at_runtime() {
    for id in PackerId::table1() {
        let app = leaky_app();
        let packed = pack(&app, ENTRY, id).unwrap();
        let mut rt = Runtime::new();
        packed.install(&mut rt).unwrap();
        let mut obs = dexlego_runtime::observer::NullObserver;
        packed.launch(&mut rt, &mut obs).unwrap();
        assert_eq!(
            rt.log.tainted_sinks().count(),
            1,
            "{id:?}: the packed app must behave like the original"
        );
    }
}

#[test]
fn dexlego_reveals_every_packer() {
    for id in PackerId::table1() {
        let app = leaky_app();
        let packed = pack(&app, ENTRY, id).unwrap();
        let mut rt = Runtime::new();
        let packed2 = packed.clone();
        let outcome = reveal(&mut rt, move |rt, obs| {
            packed2.install_observed(rt, obs).unwrap();
            packed2.launch(rt, obs).unwrap();
        })
        .unwrap();
        // The revealed DEX contains the original entry class again and all
        // tools find the flow.
        assert!(
            outcome.dex.find_class(ENTRY).is_some(),
            "{id:?}: unpacked class reassembled"
        );
        for tool in all_tools() {
            assert!(
                tool.run(&outcome.dex).leaky(),
                "{}: flow visible after DexLego on {id:?}",
                tool.name
            );
        }
    }
}

#[test]
fn baselines_beat_simple_packers_but_not_rehiding() {
    // Simple packer: dump after run contains the original code.
    let app = leaky_app();
    let packed = pack(&app, ENTRY, PackerId::P360).unwrap();
    let mut rt = Runtime::new();
    packed.install(&mut rt).unwrap();
    let mut obs = dexlego_runtime::observer::NullObserver;
    packed.launch(&mut rt, &mut obs).unwrap();
    let dumped = dump(&rt, BaselineKind::DexHunter).unwrap();
    for tool in all_tools() {
        assert!(
            tool.run(&dumped).leaky(),
            "{}: DexHunter unpacks a plain packer",
            tool.name
        );
    }

    // Re-hiding adversary: the dump holds garbled units.
    let packed = pack(&app, ENTRY, PackerId::Advanced).unwrap();
    let mut rt = Runtime::new();
    packed.install(&mut rt).unwrap();
    packed.launch(&mut rt, &mut obs).unwrap();
    let dumped = dump(&rt, BaselineKind::DexHunter).unwrap();
    for tool in all_tools() {
        assert!(
            !tool.run(&dumped).leaky(),
            "{}: dump-based extraction loses re-hidden code",
            tool.name
        );
    }
    // ... while DexLego, collecting during execution, still reveals it.
    let mut rt = Runtime::new();
    let packed2 = packed.clone();
    let outcome = reveal(&mut rt, move |rt, obs| {
        packed2.install_observed(rt, obs).unwrap();
        packed2.launch(rt, obs).unwrap();
    })
    .unwrap();
    for tool in all_tools() {
        assert!(
            tool.run(&outcome.dex).leaky(),
            "{}: DexLego defeats the re-hiding adversary",
            tool.name
        );
    }
}

#[test]
fn split_packers_load_both_stages() {
    let app = leaky_app();
    for id in [PackerId::Tencent, PackerId::Bangcle] {
        let packed = pack(&app, ENTRY, id).unwrap();
        let mut rt = Runtime::new();
        packed.install(&mut rt).unwrap();
        let mut obs = dexlego_runtime::observer::NullObserver;
        packed.launch(&mut rt, &mut obs).unwrap();
        let loads = rt
            .log
            .events()
            .iter()
            .filter(|e| matches!(e, dexlego_runtime::RuntimeEvent::DynamicLoad { .. }))
            .count();
        assert_eq!(loads, 2, "{id:?} must unpack two stages");
    }
}
