//! Payload ciphers used by the packer profiles.
//!
//! Real packers use proprietary stream ciphers; what matters for the
//! reproduction is the observable property — the payload bytes are
//! unparseable at rest and recoverable at runtime — so two light symmetric
//! ciphers suffice.

/// Cipher algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cipher {
    /// Xorshift-keystream XOR cipher.
    XorStream,
    /// RC4-style byte-permutation stream cipher.
    Rc4Lite,
}

impl Cipher {
    /// Encrypts (or, being symmetric, decrypts) `data` under `key`.
    pub fn apply(self, key: u64, data: &[u8]) -> Vec<u8> {
        match self {
            Cipher::XorStream => xor_stream(key, data),
            Cipher::Rc4Lite => rc4_lite(key, data),
        }
    }
}

fn xor_stream(key: u64, data: &[u8]) -> Vec<u8> {
    let mut state = key | 1;
    data.iter()
        .map(|&b| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            b ^ (state as u8)
        })
        .collect()
}

fn rc4_lite(key: u64, data: &[u8]) -> Vec<u8> {
    // Standard RC4 KSA/PRGA over the 8-byte key.
    let key_bytes = key.to_le_bytes();
    let mut s: [u8; 256] = std::array::from_fn(|i| i as u8);
    let mut j: u8 = 0;
    for i in 0..256 {
        j = j
            .wrapping_add(s[i])
            .wrapping_add(key_bytes[i % key_bytes.len()]);
        s.swap(i, j as usize);
    }
    let (mut i, mut j) = (0u8, 0u8);
    data.iter()
        .map(|&b| {
            i = i.wrapping_add(1);
            j = j.wrapping_add(s[i as usize]);
            s.swap(i as usize, j as usize);
            let k = s[(s[i as usize].wrapping_add(s[j as usize])) as usize];
            b ^ k
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_ciphers_roundtrip() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for cipher in [Cipher::XorStream, Cipher::Rc4Lite] {
            let enc = cipher.apply(0xdead_beef, &data);
            assert_ne!(enc, data, "{cipher:?} must actually transform");
            let dec = cipher.apply(0xdead_beef, &enc);
            assert_eq!(dec, data, "{cipher:?} must roundtrip");
        }
    }

    #[test]
    fn wrong_key_fails_to_decrypt() {
        let data = b"dex\n035\0payload".to_vec();
        let enc = Cipher::Rc4Lite.apply(1, &data);
        let dec = Cipher::Rc4Lite.apply(2, &enc);
        assert_ne!(dec, data);
    }

    #[test]
    fn encrypted_dex_is_unparseable() {
        let dex = dexlego_dex::writer::write_dex(&dexlego_dex::DexFile::new()).unwrap();
        let enc = Cipher::XorStream.apply(7, &dex);
        assert!(dexlego_dex::reader::read_dex_unchecked(&enc).is_err());
    }
}
