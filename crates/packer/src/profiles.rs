//! Packer platform profiles.

use crate::cipher::Cipher;

/// The packing platforms evaluated in Table I, plus the advanced
/// interleaved/re-hiding adversary discussed in the introduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PackerId {
    /// Qihoo 360: whole-DEX XOR stream, unpacked eagerly at attach time.
    P360,
    /// Alibaba: whole-DEX RC4-style cipher.
    Alibaba,
    /// Tencent: the app is split into two separately encrypted payloads
    /// loaded one after the other.
    Tencent,
    /// Baidu: whole-DEX XOR stream, unpacked lazily inside `onCreate`.
    Baidu,
    /// Bangcle: split payloads with RC4-style cipher, second stage loaded
    /// lazily.
    Bangcle,
    /// Advanced adversary: like 360, but a native re-encrypts (garbles) the
    /// unpacked code in memory after the entry activity finishes — dumps
    /// taken "at the end" recover nothing.
    Advanced,
}

/// Behavioural parameters of a profile.
#[derive(Debug, Clone, Copy)]
pub struct Profile {
    /// Display name of the platform.
    pub name: &'static str,
    /// Payload cipher.
    pub cipher: Cipher,
    /// Number of encrypted payload stages (1 or 2).
    pub stages: usize,
    /// Whether the final stage is unpacked lazily, immediately before the
    /// original entry runs (vs eagerly at shell start).
    pub lazy_final_stage: bool,
    /// Whether code is re-hidden in memory after execution.
    pub rehide_after_run: bool,
    /// Key material.
    pub key: u64,
}

impl PackerId {
    /// The profile parameters of this platform.
    pub fn profile(self) -> Profile {
        match self {
            PackerId::P360 => Profile {
                name: "360",
                cipher: Cipher::XorStream,
                stages: 1,
                lazy_final_stage: false,
                rehide_after_run: false,
                key: 0x0360_0360_0360_0360,
            },
            PackerId::Alibaba => Profile {
                name: "Alibaba",
                cipher: Cipher::Rc4Lite,
                stages: 1,
                lazy_final_stage: false,
                rehide_after_run: false,
                key: 0xa11b_aba0_5eed_0001,
            },
            PackerId::Tencent => Profile {
                name: "Tencent",
                cipher: Cipher::XorStream,
                stages: 2,
                lazy_final_stage: false,
                rehide_after_run: false,
                key: 0x7e0c_e017_7e0c_e017,
            },
            PackerId::Baidu => Profile {
                name: "Baidu",
                cipher: Cipher::XorStream,
                stages: 1,
                lazy_final_stage: true,
                rehide_after_run: false,
                key: 0xba1d_0ba1_d0ba_1d00,
            },
            PackerId::Bangcle => Profile {
                name: "Bangcle",
                cipher: Cipher::Rc4Lite,
                stages: 2,
                lazy_final_stage: true,
                rehide_after_run: false,
                key: 0xbac1_e000_bac1_e000,
            },
            PackerId::Advanced => Profile {
                name: "Advanced (interleaved/re-hiding)",
                cipher: Cipher::XorStream,
                stages: 1,
                lazy_final_stage: false,
                rehide_after_run: true,
                key: 0xad7a_9ced_0000_0001,
            },
        }
    }

    /// All platform profiles in the order of Table I (excluding the
    /// advanced adversary).
    pub fn table1() -> [PackerId; 5] {
        [
            PackerId::P360,
            PackerId::Alibaba,
            PackerId::Tencent,
            PackerId::Baidu,
            PackerId::Bangcle,
        ]
    }

    /// Every profile, including the advanced adversary.
    pub fn all() -> [PackerId; 6] {
        [
            PackerId::P360,
            PackerId::Alibaba,
            PackerId::Tencent,
            PackerId::Baidu,
            PackerId::Bangcle,
            PackerId::Advanced,
        ]
    }

    /// Looks up a profile by display name (case-insensitive). The advanced
    /// adversary's display name is long, so the shorthand `"advanced"` is
    /// accepted too — the form the `dexlegod` wire protocol uses.
    pub fn by_name(name: &str) -> Option<PackerId> {
        if name.eq_ignore_ascii_case("advanced") {
            return Some(PackerId::Advanced);
        }
        PackerId::all()
            .into_iter()
            .find(|id| id.profile().name.eq_ignore_ascii_case(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_distinct() {
        let keys: Vec<u64> = PackerId::table1().iter().map(|p| p.profile().key).collect();
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len());
    }

    #[test]
    fn by_name_resolves_every_profile() {
        for id in PackerId::all() {
            assert_eq!(PackerId::by_name(id.profile().name), Some(id));
        }
        assert_eq!(PackerId::by_name("360"), Some(PackerId::P360));
        assert_eq!(PackerId::by_name("baidu"), Some(PackerId::Baidu));
        assert_eq!(PackerId::by_name("advanced"), Some(PackerId::Advanced));
        assert_eq!(PackerId::by_name("nonesuch"), None);
    }

    #[test]
    fn split_profiles_have_two_stages() {
        assert_eq!(PackerId::Tencent.profile().stages, 2);
        assert_eq!(PackerId::Bangcle.profile().stages, 2);
        assert_eq!(PackerId::P360.profile().stages, 1);
    }
}
