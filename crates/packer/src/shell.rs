//! Shell generation and runtime unpacking.

use dexlego_dalvik::builder::ProgramBuilder;
use dexlego_dalvik::canon::canonicalize;
use dexlego_dalvik::subset::extract_classes;
use dexlego_dalvik::Opcode;
use dexlego_dex::{writer, DexFile};
use dexlego_runtime::class::MethodImpl;
use dexlego_runtime::events::RuntimeEvent;
use dexlego_runtime::observer::RuntimeObserver;
use dexlego_runtime::{RetVal, Runtime, Slot};

use crate::profiles::PackerId;
use crate::{PackerError, Result};

/// A packed application: the shell DEX plus the state needed to install
/// its unpacking natives into a runtime.
#[derive(Debug, Clone)]
pub struct PackedApp {
    /// The shell DEX — the only thing a static analyser gets to see.
    pub shell_dex: DexFile,
    /// The packer used.
    pub id: PackerId,
    /// Descriptor of the shell's entry activity.
    pub shell_class: String,
    /// Descriptor of the original entry activity, launched after unpacking.
    pub entry_class: String,
    payloads: Vec<Vec<u8>>,
}

fn shell_class_of(id: PackerId) -> &'static str {
    match id {
        PackerId::P360 => "Lcom/qihoo360/StubApp;",
        PackerId::Alibaba => "Lcom/ali/mobisecenhance/StubApplication;",
        PackerId::Tencent => "Lcom/tencent/StubShell;",
        PackerId::Baidu => "Lcom/baidu/protect/StubApplication;",
        PackerId::Bangcle => "Lcom/secapk/wrapper/ApplicationWrapper;",
        PackerId::Advanced => "Lshell/advanced/Stub;",
    }
}

/// Packs `original` with the given platform profile.
///
/// # Errors
///
/// Fails if `entry_class` is not defined in `original` or the payload
/// cannot be serialised.
///
/// # Example
///
/// ```no_run
/// use dexlego_packer::{pack, PackerId};
/// # let original = dexlego_dex::DexFile::new();
/// let packed = pack(&original, "Lapp/Main;", PackerId::P360).unwrap();
/// assert!(packed.shell_dex.find_class("Lapp/Main;").is_none());
/// ```
pub fn pack(original: &DexFile, entry_class: &str, id: PackerId) -> Result<PackedApp> {
    if original.find_class(entry_class).is_none() {
        return Err(PackerError::BadInput(format!(
            "entry class {entry_class} not defined in the app"
        )));
    }
    let profile = id.profile();

    // Serialise the payload stage(s).
    let mut payload_models: Vec<DexFile> = Vec::new();
    if profile.stages == 1 {
        payload_models.push(original.clone());
    } else {
        // Split classes across two payloads, first half (which includes
        // superclasses emitted first) in stage one.
        let descriptors: Vec<String> = original
            .class_defs()
            .iter()
            .filter_map(|c| {
                original
                    .type_descriptor(c.class_idx)
                    .ok()
                    .map(str::to_owned)
            })
            .collect();
        let cut = descriptors.len().div_ceil(2);
        let first: std::collections::HashSet<&str> =
            descriptors[..cut].iter().map(String::as_str).collect();
        payload_models.push(extract_classes(original, |d| first.contains(d))?);
        payload_models.push(extract_classes(original, |d| !first.contains(d))?);
    }
    let mut payloads = Vec::new();
    for model in &payload_models {
        let canonical = canonicalize(model)?;
        let bytes = writer::write_dex(&canonical)?;
        payloads.push(profile.cipher.apply(profile.key, &bytes));
    }

    // Build the shell DEX.
    let shell_class = shell_class_of(id).to_owned();
    let mut pb = ProgramBuilder::new();
    {
        let payloads_for_shell = payloads.clone();
        let entry = entry_class.to_owned();
        let shell_desc = shell_class.clone();
        pb.class(&shell_class, move |c| {
            c.superclass("Landroid/app/Activity;");
            for i in 0..payloads_for_shell.len() {
                c.static_native_method(&format!("unpack{i}"), &["[B"], "V");
            }
            if id.profile().rehide_after_run {
                c.static_native_method("rehide", &[], "V");
            }
            c.method("onCreate", &["Landroid/os/Bundle;"], "V", 4, move |m| {
                let emit_unpack =
                    |m: &mut dexlego_dalvik::builder::MethodBuilder<'_>, i: usize, data: &[u8]| {
                        m.asm.const4(0, data.len() as i64);
                        m.new_array(1, 0, "[B");
                        m.asm.fill_array_data(1, 1, data.to_vec());
                        m.invoke(
                            Opcode::InvokeStatic,
                            &shell_desc,
                            &format!("unpack{i}"),
                            &["[B"],
                            "V",
                            &[1],
                        );
                    };
                let lazy = id.profile().lazy_final_stage;
                let n = payloads_for_shell.len();
                for (i, data) in payloads_for_shell.iter().enumerate() {
                    let is_final = i == n - 1;
                    if !(lazy && is_final) {
                        emit_unpack(m, i, data);
                    }
                }
                if lazy {
                    // Do some shell business first (what a lazy packer's
                    // shim does), then release the final stage on demand.
                    m.asm.const4(2, 0);
                    m.asm.binop_lit8(Opcode::AddIntLit8, 2, 2, 1);
                    emit_unpack(m, n - 1, &payloads_for_shell[n - 1]);
                }
                // Hand over to the original entry activity.
                m.new_instance(2, &entry);
                m.invoke(Opcode::InvokeDirect, &entry, "<init>", &[], "V", &[2]);
                m.asm.const4(3, 0);
                m.invoke(
                    Opcode::InvokeVirtual,
                    &entry,
                    "onCreate",
                    &["Landroid/os/Bundle;"],
                    "V",
                    &[2, 3],
                );
                if id.profile().rehide_after_run {
                    m.invoke(Opcode::InvokeStatic, &shell_desc, "rehide", &[], "V", &[]);
                }
                m.asm.ret(Opcode::ReturnVoid, 0);
            });
        });
    }
    let shell_dex = pb.build()?;

    Ok(PackedApp {
        shell_dex,
        id,
        shell_class,
        entry_class: entry_class.to_owned(),
        payloads,
    })
}

impl PackedApp {
    /// Loads the shell into `rt` and registers the unpacking natives.
    ///
    /// # Errors
    ///
    /// Propagates linker failures.
    pub fn install(&self, rt: &mut Runtime) -> Result<()> {
        self.install_observed(rt, &mut dexlego_runtime::observer::NullObserver)
    }

    /// [`Self::install`] with class-load observation (needed when DexLego
    /// collects from the very beginning).
    ///
    /// # Errors
    ///
    /// Propagates linker failures.
    pub fn install_observed(&self, rt: &mut Runtime, obs: &mut dyn RuntimeObserver) -> Result<()> {
        rt.load_dex_observed(&self.shell_dex, "shell", obs)?;
        let profile = self.id.profile();
        for i in 0..self.payloads.len() {
            let cipher = profile.cipher;
            let key = profile.key;
            let name = profile.name;
            rt.natives.register(
                &self.shell_class,
                &format!("unpack{i}"),
                "([B)V",
                move |rt, obs, args| {
                    let encrypted: Vec<u8> = match rt.heap.get(args[0].raw).map(|o| &o.kind) {
                        Some(dexlego_runtime::ObjKind::Array { data, .. }) => {
                            data.iter().map(|w| w.raw as u8).collect()
                        }
                        _ => {
                            return Err(dexlego_runtime::RuntimeError::Internal(
                                "unpack expects the payload array".into(),
                            ))
                        }
                    };
                    let plain = cipher.apply(key, &encrypted);
                    let dex = dexlego_dex::reader::read_dex_unchecked(&plain)?;
                    let tag = format!("unpacked:{name}:{i}");
                    let classes = rt.load_dex_observed(&dex, &tag, obs)?;
                    rt.log.push(RuntimeEvent::DynamicLoad {
                        source: tag.clone(),
                        classes: classes.len(),
                    });
                    obs.on_dynamic_load(rt, &tag, &classes);
                    Ok(RetVal::Void)
                },
            );
        }
        if profile.rehide_after_run {
            rt.natives
                .register(&self.shell_class, "rehide", "()V", |rt, _, _| {
                    // Garble the unpacked code in memory: dump-based tools that
                    // run after execution recover nothing.
                    let targets: Vec<dexlego_runtime::MethodId> = rt
                        .method_ids()
                        .filter(|&m| {
                            let class = rt.method(m).class;
                            rt.class(class).source.starts_with("unpacked:")
                        })
                        .collect();
                    for m in targets {
                        if let MethodImpl::Bytecode { insns, .. } = &mut rt.method_mut(m).body {
                            for unit in insns.iter_mut() {
                                *unit = 0xffff;
                            }
                        }
                    }
                    Ok(RetVal::Void)
                });
        }
        Ok(())
    }

    /// Launches the shell activity (install must have happened), driving
    /// the full unpack-and-run sequence.
    ///
    /// # Errors
    ///
    /// Propagates execution failures from the shell or the original app.
    pub fn launch(&self, rt: &mut Runtime, obs: &mut dyn RuntimeObserver) -> Result<()> {
        let activity = rt.new_instance(obs, &self.shell_class)?;
        let class = rt
            .find_class(&self.shell_class)
            .ok_or_else(|| PackerError::BadInput("shell not installed".into()))?;
        let on_create = rt
            .resolve_method(
                class,
                &dexlego_runtime::class::SigKey::new("onCreate", "(Landroid/os/Bundle;)V"),
            )
            .ok_or_else(|| PackerError::BadInput("shell has no onCreate".into()))?;
        rt.call_method(obs, on_create, &[Slot::of(activity), Slot::of(0)])?;
        Ok(())
    }

    /// Total encrypted payload bytes (for size reporting).
    pub fn payload_size(&self) -> usize {
        self.payloads.iter().map(Vec::len).sum()
    }
}
