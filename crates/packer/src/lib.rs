#![forbid(unsafe_code)]

//! Simulated Android packers (paper §V-A, Table I).
//!
//! A packer replaces an application's DEX with a *shell*: a small loader
//! whose bytecode carries the original DEX encrypted (embedded via
//! `fill-array-data`), decrypts it at runtime through a "native" stub, loads
//! it dynamically, and finally transfers control to the original entry
//! activity. Static analysis of the packed app sees only the shell.
//!
//! Five profiles reproduce the packing strategies of the platforms the
//! paper evaluates (whole-file vs split payloads, different ciphers, eager
//! vs lazy unpacking), plus an [`PackerId::Advanced`] profile that re-hides
//! code after execution — the "interleaved packing and unpacking" adversary
//! that defeats dump-based unpackers (§I).

pub mod cipher;
pub mod profiles;
pub mod shell;

pub use profiles::PackerId;
pub use shell::{pack, PackedApp};

use std::fmt;

/// Packer errors.
#[derive(Debug)]
pub enum PackerError {
    /// Underlying DEX failure.
    Dex(dexlego_dex::DexError),
    /// Underlying bytecode failure.
    Dalvik(dexlego_dalvik::DalvikError),
    /// Underlying runtime failure.
    Runtime(dexlego_runtime::RuntimeError),
    /// The app to pack is structurally unusable (e.g. missing entry class).
    BadInput(String),
}

impl fmt::Display for PackerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackerError::Dex(e) => write!(f, "dex error: {e}"),
            PackerError::Dalvik(e) => write!(f, "bytecode error: {e}"),
            PackerError::Runtime(e) => write!(f, "runtime error: {e}"),
            PackerError::BadInput(m) => write!(f, "cannot pack: {m}"),
        }
    }
}

impl std::error::Error for PackerError {}

impl From<dexlego_dex::DexError> for PackerError {
    fn from(e: dexlego_dex::DexError) -> PackerError {
        PackerError::Dex(e)
    }
}
impl From<dexlego_dalvik::DalvikError> for PackerError {
    fn from(e: dexlego_dalvik::DalvikError) -> PackerError {
        PackerError::Dalvik(e)
    }
}
impl From<dexlego_runtime::RuntimeError> for PackerError {
    fn from(e: dexlego_runtime::RuntimeError) -> PackerError {
        PackerError::Runtime(e)
    }
}

/// Convenience alias for results with [`PackerError`].
pub type Result<T> = std::result::Result<T, PackerError>;
