//! `code_item` — the bytecode body of a method, including try/catch metadata.

use crate::TypeIdx;

/// One `try_item`: a range of code units covered by exception handlers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TryItem {
    /// Start of the covered range, in 16-bit code units from method start.
    pub start_addr: u32,
    /// Number of code units covered.
    pub insn_count: u16,
    /// Index into [`CodeItem::handlers`] of the handler list for this range.
    pub handler_index: usize,
}

/// One typed catch clause: `catch (type) -> handler_addr`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatchClause {
    /// Exception type caught.
    pub type_idx: TypeIdx,
    /// Handler address in code units.
    pub addr: u32,
}

/// An `encoded_catch_handler`: typed clauses plus an optional catch-all.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EncodedCatchHandler {
    /// Typed catch clauses, in declaration order.
    pub catches: Vec<CatchClause>,
    /// Address of a `catch-all` handler, if present.
    pub catch_all_addr: Option<u32>,
}

/// A method body: register file configuration plus raw instruction units and
/// try/catch tables.
///
/// Instructions are stored exactly as the interpreter consumes them — an
/// array of 16-bit code units — so a `CodeItem` can represent bytecode that
/// [`dexlego-dalvik`](https://docs.rs) has not (or cannot) decode, which is
/// essential for carrying packed/encrypted payloads around.
///
/// # Example
///
/// ```
/// use dexlego_dex::CodeItem;
/// let code = CodeItem::new(1, 0, 0, vec![0x000e]); // return-void
/// assert_eq!(code.insns.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CodeItem {
    /// Number of registers used by this method.
    pub registers_size: u16,
    /// Number of words of incoming arguments (stored in the highest
    /// registers).
    pub ins_size: u16,
    /// Number of words of outgoing argument space required.
    pub outs_size: u16,
    /// The instruction stream, as 16-bit code units.
    pub insns: Vec<u16>,
    /// Try ranges, sorted by `start_addr`, non-overlapping.
    pub tries: Vec<TryItem>,
    /// Handler lists referenced by [`TryItem::handler_index`].
    pub handlers: Vec<EncodedCatchHandler>,
}

impl CodeItem {
    /// Creates a code item with no try/catch structure.
    pub fn new(registers_size: u16, ins_size: u16, outs_size: u16, insns: Vec<u16>) -> CodeItem {
        CodeItem {
            registers_size,
            ins_size,
            outs_size,
            insns,
            tries: Vec::new(),
            handlers: Vec::new(),
        }
    }

    /// Index of the first local (non-argument) register.
    pub fn first_in_register(&self) -> u16 {
        self.registers_size - self.ins_size
    }

    /// Handlers covering the instruction at `addr` (in code units), innermost
    /// (first-declared) try first.
    pub fn handlers_at(&self, addr: u32) -> impl Iterator<Item = &EncodedCatchHandler> {
        self.tries
            .iter()
            .filter(move |t| addr >= t.start_addr && addr < t.start_addr + u32::from(t.insn_count))
            .filter_map(|t| self.handlers.get(t.handler_index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_in_register_accounts_for_ins() {
        let code = CodeItem::new(5, 2, 0, vec![]);
        assert_eq!(code.first_in_register(), 3);
    }

    #[test]
    fn handlers_at_respects_ranges() {
        let mut code = CodeItem::new(1, 0, 0, vec![0; 10]);
        code.handlers.push(EncodedCatchHandler {
            catches: vec![],
            catch_all_addr: Some(8),
        });
        code.tries.push(TryItem {
            start_addr: 2,
            insn_count: 3,
            handler_index: 0,
        });
        assert_eq!(code.handlers_at(1).count(), 0);
        assert_eq!(code.handlers_at(2).count(), 1);
        assert_eq!(code.handlers_at(4).count(), 1);
        assert_eq!(code.handlers_at(5).count(), 0);
    }
}
