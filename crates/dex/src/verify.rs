//! Structural verification of a [`DexFile`] model.
//!
//! The checks mirror the invariants a real DEX verifier enforces at the
//! container level: every index in range, shorties consistent with
//! prototypes, class-data member lists ascending, no duplicate class
//! definitions, and (in strict mode) pools sorted per the specification.

use std::collections::HashSet;

use crate::error::{DexError, Result};
use crate::file::DexFile;

/// How thorough verification should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strictness {
    /// Check referential integrity only. Models produced by interning are
    /// valid at this level even before canonicalisation.
    #[default]
    Referential,
    /// Additionally require the pool-sorting invariants of the binary
    /// format (strings by code-point order, types by descriptor index, …).
    Sorted,
}

/// Verifies the structural invariants of `dex`.
///
/// # Errors
///
/// Returns the first violated invariant as a [`DexError`].
///
/// # Example
///
/// ```
/// use dexlego_dex::{DexFile, verify::{verify, Strictness}};
/// let mut dex = DexFile::new();
/// dex.intern_method("La;", "m", "V", &[]);
/// verify(&dex, Strictness::Referential).unwrap();
/// ```
pub fn verify(dex: &DexFile, strictness: Strictness) -> Result<()> {
    // Type ids reference valid strings that look like descriptors.
    for (i, &sidx) in dex.type_ids().iter().enumerate() {
        let desc = dex.string(sidx)?;
        if !is_type_descriptor(desc) {
            return Err(DexError::Invalid(format!(
                "type {i} has malformed descriptor {desc:?}"
            )));
        }
    }
    // Protos: valid indices, shorty consistent.
    for (i, proto) in dex.protos().iter().enumerate() {
        let shorty = dex.string(proto.shorty)?;
        let ret = dex.type_descriptor(proto.return_type)?;
        let mut expected = String::new();
        expected.push(crate::file::shorty_char(ret));
        for &p in &proto.parameters {
            expected.push(crate::file::shorty_char(dex.type_descriptor(p)?));
        }
        if shorty != expected {
            return Err(DexError::Invalid(format!(
                "proto {i} shorty {shorty:?} does not match signature (expected {expected:?})"
            )));
        }
    }
    // Field/method ids reference valid pools.
    for f in dex.field_ids() {
        dex.type_descriptor(f.class)?;
        dex.type_descriptor(f.type_)?;
        dex.string(f.name)?;
    }
    for m in dex.method_ids() {
        dex.type_descriptor(m.class)?;
        dex.proto(m.proto)?;
        dex.string(m.name)?;
    }
    // Class defs.
    let mut seen = HashSet::new();
    for class in dex.class_defs() {
        dex.type_descriptor(class.class_idx)?;
        if !seen.insert(class.class_idx) {
            return Err(DexError::Invalid(format!(
                "duplicate class definition for {}",
                dex.type_descriptor(class.class_idx)?
            )));
        }
        if let Some(sup) = class.superclass {
            dex.type_descriptor(sup)?;
        }
        for &iface in &class.interfaces {
            dex.type_descriptor(iface)?;
        }
        if let Some(src) = class.source_file {
            dex.string(src)?;
        }
        if let Some(data) = &class.class_data {
            for field in data.fields() {
                let id = dex.field_id(field.field_idx)?;
                if id.class != class.class_idx {
                    return Err(DexError::Invalid(format!(
                        "field {} listed in class {}",
                        dex.field_signature(field.field_idx)?,
                        dex.type_descriptor(class.class_idx)?
                    )));
                }
            }
            for method in data.methods() {
                let id = dex.method_id(method.method_idx)?;
                if id.class != class.class_idx {
                    return Err(DexError::Invalid(format!(
                        "method {} listed in class {}",
                        dex.method_signature(method.method_idx)?,
                        dex.type_descriptor(class.class_idx)?
                    )));
                }
                let has_code = method.code.is_some();
                let expects_code = !method.access.is_native() && !method.access.is_abstract();
                if has_code != expects_code {
                    return Err(DexError::Invalid(format!(
                        "method {} {} a body but access flags are {}",
                        dex.method_signature(method.method_idx)?,
                        if has_code { "has" } else { "lacks" },
                        method.access
                    )));
                }
                if let Some(code) = &method.code {
                    if code.ins_size > code.registers_size {
                        return Err(DexError::Invalid(format!(
                            "method {}: ins_size {} exceeds registers_size {}",
                            dex.method_signature(method.method_idx)?,
                            code.ins_size,
                            code.registers_size
                        )));
                    }
                    for t in &code.tries {
                        if t.handler_index >= code.handlers.len() {
                            return Err(DexError::Invalid(format!(
                                "method {}: try references handler {} of {}",
                                dex.method_signature(method.method_idx)?,
                                t.handler_index,
                                code.handlers.len()
                            )));
                        }
                        let end = u64::from(t.start_addr) + u64::from(t.insn_count);
                        if end > code.insns.len() as u64 {
                            return Err(DexError::Invalid(format!(
                                "method {}: try range [{}, {}) outside code of {} units",
                                dex.method_signature(method.method_idx)?,
                                t.start_addr,
                                end,
                                code.insns.len()
                            )));
                        }
                    }
                    for handler in &code.handlers {
                        for clause in &handler.catches {
                            dex.type_descriptor(clause.type_idx)?;
                        }
                    }
                }
            }
            if class.static_values.len() > data.static_fields.len() {
                return Err(DexError::Invalid(format!(
                    "class {} has {} static values for {} static fields",
                    dex.type_descriptor(class.class_idx)?,
                    class.static_values.len(),
                    data.static_fields.len()
                )));
            }
        }
    }

    if strictness == Strictness::Sorted {
        check_sorted(dex)?;
    }
    Ok(())
}

fn check_sorted(dex: &DexFile) -> Result<()> {
    if dex.strings().windows(2).any(|w| w[0] >= w[1]) {
        return Err(DexError::Invalid("string pool not sorted/unique".into()));
    }
    if dex.type_ids().windows(2).any(|w| w[0] >= w[1]) {
        return Err(DexError::Invalid(
            "type pool not sorted by descriptor".into(),
        ));
    }
    let proto_key = |p: &crate::file::ProtoIdItem| (p.return_type, p.parameters.clone());
    if dex
        .protos()
        .windows(2)
        .any(|w| proto_key(&w[0]) >= proto_key(&w[1]))
    {
        return Err(DexError::Invalid("proto pool not sorted".into()));
    }
    if dex
        .field_ids()
        .windows(2)
        .any(|w| (w[0].class, w[0].name, w[0].type_) >= (w[1].class, w[1].name, w[1].type_))
    {
        return Err(DexError::Invalid("field pool not sorted".into()));
    }
    if dex
        .method_ids()
        .windows(2)
        .any(|w| (w[0].class, w[0].name, w[0].proto) >= (w[1].class, w[1].name, w[1].proto))
    {
        return Err(DexError::Invalid("method pool not sorted".into()));
    }
    Ok(())
}

/// Whether `s` is a well-formed single type descriptor.
pub fn is_type_descriptor(s: &str) -> bool {
    let bytes = s.as_bytes();
    match bytes.first() {
        Some(b'V' | b'Z' | b'B' | b'S' | b'C' | b'I' | b'J' | b'F' | b'D') => bytes.len() == 1,
        Some(b'L') => bytes.len() >= 3 && bytes.ends_with(b";") && !s[1..s.len() - 1].is_empty(),
        Some(b'[') => is_type_descriptor(&s[1..]) && s.as_bytes().get(1) != Some(&b'V'),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessFlags;
    use crate::code::CodeItem;
    use crate::file::{ClassDef, EncodedMethod};

    #[test]
    fn descriptor_grammar() {
        for good in ["V", "I", "J", "Ljava/lang/Object;", "[I", "[[Lfoo;", "[B"] {
            assert!(is_type_descriptor(good), "{good} should be valid");
        }
        for bad in ["", "X", "L;", "Lfoo", "[V", "II", "foo"] {
            assert!(!is_type_descriptor(bad), "{bad} should be invalid");
        }
    }

    #[test]
    fn interned_model_passes_referential() {
        let mut dex = DexFile::new();
        let t = dex.intern_type("La;");
        let m = dex.intern_method("La;", "m", "V", &[]);
        let mut def = ClassDef::new(t);
        def.class_data
            .as_mut()
            .unwrap()
            .direct_methods
            .push(EncodedMethod {
                method_idx: m,
                access: AccessFlags::PUBLIC | AccessFlags::STATIC,
                code: Some(CodeItem::new(0, 0, 0, vec![0x000e])),
            });
        dex.add_class(def);
        verify(&dex, Strictness::Referential).unwrap();
    }

    #[test]
    fn duplicate_class_rejected() {
        let mut dex = DexFile::new();
        let t = dex.intern_type("La;");
        dex.add_class(ClassDef::new(t));
        dex.add_class(ClassDef::new(t));
        assert!(verify(&dex, Strictness::Referential).is_err());
    }

    #[test]
    fn native_method_with_code_rejected() {
        let mut dex = DexFile::new();
        let t = dex.intern_type("La;");
        let m = dex.intern_method("La;", "n", "V", &[]);
        let mut def = ClassDef::new(t);
        def.class_data
            .as_mut()
            .unwrap()
            .direct_methods
            .push(EncodedMethod {
                method_idx: m,
                access: AccessFlags::NATIVE | AccessFlags::STATIC,
                code: Some(CodeItem::new(0, 0, 0, vec![0x000e])),
            });
        dex.add_class(def);
        assert!(verify(&dex, Strictness::Referential).is_err());
    }

    #[test]
    fn ins_exceeding_registers_rejected() {
        let mut dex = DexFile::new();
        let t = dex.intern_type("La;");
        let m = dex.intern_method("La;", "m", "V", &[]);
        let mut def = ClassDef::new(t);
        def.class_data
            .as_mut()
            .unwrap()
            .direct_methods
            .push(EncodedMethod {
                method_idx: m,
                access: AccessFlags::STATIC,
                code: Some(CodeItem::new(1, 2, 0, vec![0x000e])),
            });
        dex.add_class(def);
        assert!(verify(&dex, Strictness::Referential).is_err());
    }

    #[test]
    fn unsorted_strings_fail_strict_only() {
        let mut dex = DexFile::new();
        dex.intern_string("b");
        dex.intern_string("a");
        verify(&dex, Strictness::Referential).unwrap();
        assert!(verify(&dex, Strictness::Sorted).is_err());
    }
}
