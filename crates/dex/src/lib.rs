#![forbid(unsafe_code)]

//! Dalvik Executable (DEX) container format.
//!
//! This crate implements the on-disk DEX format used by Android's Dalvik and
//! ART runtimes: an in-memory model ([`DexFile`]), a binary [`reader`], a
//! binary [`writer`] that lays out a spec-conformant file (header, id pools,
//! data section, map list, Adler-32 checksum and SHA-1 signature), and a
//! structural [`verify`] pass.
//!
//! It is the substrate underneath the DexLego reproduction: the reassembler
//! in `dexlego-core` emits [`DexFile`] values and serialises them with
//! [`writer::write_dex`], and the static-analysis tools in `dexlego-analysis`
//! consume [`DexFile`] values parsed back by [`reader::read_dex`].
//!
//! # Example
//!
//! ```
//! use dexlego_dex::{DexFile, writer, reader};
//!
//! # fn main() -> Result<(), dexlego_dex::DexError> {
//! let mut dex = DexFile::new();
//! dex.intern_string("hello");
//! let bytes = writer::write_dex(&dex)?;
//! let back = reader::read_dex(&bytes)?;
//! assert!(back.strings().iter().any(|s| s == "hello"));
//! # Ok(())
//! # }
//! ```

pub mod access;
pub mod checksum;
pub mod code;
pub mod error;
pub mod file;
pub mod leb128;
pub mod mutf8;
pub mod reader;
pub mod value;
pub mod verify;
pub mod writer;

pub use access::AccessFlags;
pub use code::{CodeItem, EncodedCatchHandler, TryItem};
pub use error::DexError;
pub use file::{
    ClassData, ClassDef, DexFile, EncodedField, EncodedMethod, FieldIdItem, HierarchyLink,
    MethodIdItem, ProtoIdItem,
};
pub use value::EncodedValue;

/// Index into the string pool of a [`DexFile`].
pub type StringIdx = u32;
/// Index into the type-id pool of a [`DexFile`].
pub type TypeIdx = u32;
/// Index into the proto-id pool of a [`DexFile`].
pub type ProtoIdx = u32;
/// Index into the field-id pool of a [`DexFile`].
pub type FieldIdx = u32;
/// Index into the method-id pool of a [`DexFile`].
pub type MethodIdx = u32;

/// Sentinel "no index" value used by the DEX format (e.g. a class with no
/// superclass).
pub const NO_INDEX: u32 = 0xffff_ffff;

/// The DEX magic for version 035 (Android 6.0 era, as used in the paper).
pub const DEX_MAGIC: [u8; 8] = *b"dex\n035\0";

/// Constant `endian_tag` value for little-endian DEX files.
pub const ENDIAN_CONSTANT: u32 = 0x1234_5678;

/// Size of the fixed DEX header in bytes.
pub const HEADER_SIZE: u32 = 0x70;
