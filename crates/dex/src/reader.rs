//! Binary parsing of DEX bytes into a [`DexFile`] model.

use crate::access::AccessFlags;
use crate::code::{CatchClause, CodeItem, EncodedCatchHandler, TryItem};
use crate::error::{DexError, Result};
use crate::file::{
    ClassData, ClassDef, DexFile, EncodedField, EncodedMethod, FieldIdItem, MethodIdItem,
    ProtoIdItem,
};
use crate::value::EncodedValue;
use crate::{checksum, leb128, mutf8, DEX_MAGIC, ENDIAN_CONSTANT, HEADER_SIZE, NO_INDEX};

struct In<'a> {
    buf: &'a [u8],
}

impl<'a> In<'a> {
    fn u16_at(&self, off: usize) -> Result<u16> {
        let b = self.buf.get(off..off + 2).ok_or(DexError::Truncated {
            offset: off,
            what: "u16",
        })?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32_at(&self, off: usize) -> Result<u32> {
        let b = self.buf.get(off..off + 4).ok_or(DexError::Truncated {
            offset: off,
            what: "u32",
        })?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

fn read_string_data(input: &In<'_>, off: usize) -> Result<String> {
    let mut pos = off;
    let _utf16_len = leb128::read_uleb128(input.buf, &mut pos)?;
    let start = pos;
    while *input.buf.get(pos).ok_or(DexError::Truncated {
        offset: pos,
        what: "string_data",
    })? != 0
    {
        pos += 1;
    }
    mutf8::decode(&input.buf[start..pos])
}

fn read_type_list(input: &In<'_>, off: u32) -> Result<Vec<u32>> {
    if off == 0 {
        return Ok(Vec::new());
    }
    let off = off as usize;
    let size = input.u32_at(off)? as usize;
    let mut list = Vec::with_capacity(size);
    for i in 0..size {
        list.push(u32::from(input.u16_at(off + 4 + i * 2)?));
    }
    Ok(list)
}

fn read_code_item(input: &In<'_>, off: usize) -> Result<CodeItem> {
    let registers_size = input.u16_at(off)?;
    let ins_size = input.u16_at(off + 2)?;
    let outs_size = input.u16_at(off + 4)?;
    let tries_size = input.u16_at(off + 6)? as usize;
    let insns_size = input.u32_at(off + 12)? as usize;
    let insns_off = off + 16;
    let mut insns = Vec::with_capacity(insns_size);
    for i in 0..insns_size {
        insns.push(input.u16_at(insns_off + i * 2)?);
    }
    let mut code = CodeItem {
        registers_size,
        ins_size,
        outs_size,
        insns,
        tries: Vec::new(),
        handlers: Vec::new(),
    };
    if tries_size > 0 {
        let mut pos = insns_off + insns_size * 2;
        if !insns_size.is_multiple_of(2) {
            pos += 2; // padding
        }
        let tries_off = pos;
        let handlers_off = tries_off + tries_size * 8;
        // Parse the handler list; map byte-offset -> handler index.
        let mut hpos = handlers_off;
        let list_size = leb128::read_uleb128(input.buf, &mut hpos)?;
        let mut offset_to_index = std::collections::HashMap::new();
        for i in 0..list_size {
            let rel = (hpos - handlers_off) as u32;
            offset_to_index.insert(rel, i as usize);
            let signed = leb128::read_sleb128(input.buf, &mut hpos)?;
            let n = signed.unsigned_abs() as usize;
            let mut handler = EncodedCatchHandler::default();
            for _ in 0..n {
                let type_idx = leb128::read_uleb128(input.buf, &mut hpos)?;
                let addr = leb128::read_uleb128(input.buf, &mut hpos)?;
                handler.catches.push(CatchClause { type_idx, addr });
            }
            if signed <= 0 {
                handler.catch_all_addr = Some(leb128::read_uleb128(input.buf, &mut hpos)?);
            }
            code.handlers.push(handler);
        }
        for i in 0..tries_size {
            let toff = tries_off + i * 8;
            let start_addr = input.u32_at(toff)?;
            let insn_count = input.u16_at(toff + 4)?;
            let handler_off = u32::from(input.u16_at(toff + 6)?);
            let handler_index = *offset_to_index.get(&handler_off).ok_or_else(|| {
                DexError::Invalid(format!("try_item references handler offset {handler_off}"))
            })?;
            code.tries.push(TryItem {
                start_addr,
                insn_count,
                handler_index,
            });
        }
    }
    Ok(code)
}

fn read_class_data(input: &In<'_>, off: usize) -> Result<ClassData> {
    let mut pos = off;
    let static_n = leb128::read_uleb128(input.buf, &mut pos)?;
    let instance_n = leb128::read_uleb128(input.buf, &mut pos)?;
    let direct_n = leb128::read_uleb128(input.buf, &mut pos)?;
    let virtual_n = leb128::read_uleb128(input.buf, &mut pos)?;
    let mut data = ClassData::default();
    for (count, list) in [
        (static_n, &mut data.static_fields),
        (instance_n, &mut data.instance_fields),
    ] {
        let mut idx = 0u32;
        for i in 0..count {
            let diff = leb128::read_uleb128(input.buf, &mut pos)?;
            idx = if i == 0 { diff } else { idx + diff };
            let access = AccessFlags(leb128::read_uleb128(input.buf, &mut pos)?);
            list.push(EncodedField {
                field_idx: idx,
                access,
            });
        }
    }
    for (count, list) in [
        (direct_n, &mut data.direct_methods),
        (virtual_n, &mut data.virtual_methods),
    ] {
        let mut idx = 0u32;
        for i in 0..count {
            let diff = leb128::read_uleb128(input.buf, &mut pos)?;
            idx = if i == 0 { diff } else { idx + diff };
            let access = AccessFlags(leb128::read_uleb128(input.buf, &mut pos)?);
            let code_off = leb128::read_uleb128(input.buf, &mut pos)?;
            let code = if code_off == 0 {
                None
            } else {
                Some(read_code_item(input, code_off as usize)?)
            };
            list.push(EncodedMethod {
                method_idx: idx,
                access,
                code,
            });
        }
    }
    Ok(data)
}

/// Parses DEX bytes, verifying the header checksum and signature.
///
/// # Errors
///
/// Returns [`DexError::ChecksumMismatch`] or [`DexError::SignatureMismatch`]
/// on corrupted input, and structural errors for malformed content. Use
/// [`read_dex_unchecked`] to skip integrity verification.
pub fn read_dex(bytes: &[u8]) -> Result<DexFile> {
    if bytes.len() >= 32 {
        let stored = u32::from_le_bytes(bytes[8..12].try_into().expect("length checked"));
        let computed = checksum::adler32(&bytes[12..]);
        if stored != computed {
            return Err(DexError::ChecksumMismatch { stored, computed });
        }
        if bytes[12..32] != checksum::sha1(&bytes[32..]) {
            return Err(DexError::SignatureMismatch);
        }
    }
    read_dex_unchecked(bytes)
}

/// Parses DEX bytes without verifying checksum or signature.
///
/// # Errors
///
/// Returns structural [`DexError`]s for malformed content.
pub fn read_dex_unchecked(bytes: &[u8]) -> Result<DexFile> {
    let input = In { buf: bytes };
    if bytes.len() < HEADER_SIZE as usize {
        return Err(DexError::Truncated {
            offset: bytes.len(),
            what: "header",
        });
    }
    let magic: [u8; 8] = bytes[..8].try_into().expect("length checked");
    if magic != DEX_MAGIC {
        return Err(DexError::BadMagic(magic));
    }
    let endian = input.u32_at(40)?;
    if endian != ENDIAN_CONSTANT {
        return Err(DexError::BadEndianTag(endian));
    }

    let string_ids_size = input.u32_at(56)? as usize;
    let string_ids_off = input.u32_at(60)? as usize;
    let type_ids_size = input.u32_at(64)? as usize;
    let type_ids_off = input.u32_at(68)? as usize;
    let proto_ids_size = input.u32_at(72)? as usize;
    let proto_ids_off = input.u32_at(76)? as usize;
    let field_ids_size = input.u32_at(80)? as usize;
    let field_ids_off = input.u32_at(84)? as usize;
    let method_ids_size = input.u32_at(88)? as usize;
    let method_ids_off = input.u32_at(92)? as usize;
    let class_defs_size = input.u32_at(96)? as usize;
    let class_defs_off = input.u32_at(100)? as usize;

    let mut strings = Vec::with_capacity(string_ids_size);
    for i in 0..string_ids_size {
        let data_off = input.u32_at(string_ids_off + i * 4)? as usize;
        strings.push(read_string_data(&input, data_off)?);
    }

    let mut type_ids = Vec::with_capacity(type_ids_size);
    for i in 0..type_ids_size {
        let sidx = input.u32_at(type_ids_off + i * 4)?;
        if sidx as usize >= strings.len() {
            return Err(DexError::IndexOutOfRange {
                pool: "string",
                index: sidx,
                len: strings.len(),
            });
        }
        type_ids.push(sidx);
    }

    let mut protos = Vec::with_capacity(proto_ids_size);
    for i in 0..proto_ids_size {
        let off = proto_ids_off + i * 12;
        protos.push(ProtoIdItem {
            shorty: input.u32_at(off)?,
            return_type: input.u32_at(off + 4)?,
            parameters: read_type_list(&input, input.u32_at(off + 8)?)?,
        });
    }

    let mut field_ids = Vec::with_capacity(field_ids_size);
    for i in 0..field_ids_size {
        let off = field_ids_off + i * 8;
        field_ids.push(FieldIdItem {
            class: u32::from(input.u16_at(off)?),
            type_: u32::from(input.u16_at(off + 2)?),
            name: input.u32_at(off + 4)?,
        });
    }

    let mut method_ids = Vec::with_capacity(method_ids_size);
    for i in 0..method_ids_size {
        let off = method_ids_off + i * 8;
        method_ids.push(MethodIdItem {
            class: u32::from(input.u16_at(off)?),
            proto: u32::from(input.u16_at(off + 2)?),
            name: input.u32_at(off + 4)?,
        });
    }

    let mut class_defs = Vec::with_capacity(class_defs_size);
    for i in 0..class_defs_size {
        let off = class_defs_off + i * 32;
        let class_idx = input.u32_at(off)?;
        let access = AccessFlags(input.u32_at(off + 4)?);
        let superclass_raw = input.u32_at(off + 8)?;
        let interfaces = read_type_list(&input, input.u32_at(off + 12)?)?;
        let source_file_raw = input.u32_at(off + 16)?;
        let class_data_off = input.u32_at(off + 24)? as usize;
        let static_values_off = input.u32_at(off + 28)? as usize;

        let class_data = if class_data_off == 0 {
            None
        } else {
            Some(read_class_data(&input, class_data_off)?)
        };
        let static_values = if static_values_off == 0 {
            Vec::new()
        } else {
            let mut pos = static_values_off;
            let n = leb128::read_uleb128(bytes, &mut pos)?;
            let mut values = Vec::with_capacity(n as usize);
            for _ in 0..n {
                values.push(EncodedValue::read(bytes, &mut pos)?);
            }
            values
        };

        class_defs.push(ClassDef {
            class_idx,
            access,
            superclass: if superclass_raw == NO_INDEX {
                None
            } else {
                Some(superclass_raw)
            },
            interfaces,
            source_file: if source_file_raw == NO_INDEX {
                None
            } else {
                Some(source_file_raw)
            },
            class_data,
            static_values,
        });
    }

    Ok(DexFile::from_pools(
        strings, type_ids, protos, field_ids, method_ids, class_defs,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_dex;

    fn sample_dex() -> DexFile {
        let mut dex = DexFile::new();
        let t = dex.intern_type("Lcom/test/Main;");
        dex.intern_type("Ljava/lang/Object;");
        let m = dex.intern_method("Lcom/test/Main;", "advancedLeak", "V", &[]);
        let f = dex.intern_field("Lcom/test/Main;", "Ljava/lang/String;", "PHONE");
        let mut def = ClassDef::new(t);
        def.superclass = Some(dex.intern_type("Ljava/lang/Object;"));
        def.static_values
            .push(EncodedValue::String(dex.intern_string("800-123-456")));
        let data = def.class_data.as_mut().unwrap();
        data.static_fields.push(EncodedField {
            field_idx: f,
            access: AccessFlags::STATIC | AccessFlags::FINAL | AccessFlags::PRIVATE,
        });
        data.virtual_methods.push(EncodedMethod {
            method_idx: m,
            access: AccessFlags::PUBLIC,
            code: Some(CodeItem::new(3, 1, 1, vec![0x000e])),
        });
        dex.add_class(def);
        dex
    }

    #[test]
    fn roundtrip_preserves_model() {
        let dex = sample_dex();
        let bytes = write_dex(&dex).unwrap();
        let back = read_dex(&bytes).unwrap();
        assert_eq!(back, dex);
    }

    #[test]
    fn roundtrip_is_fixpoint() {
        let dex = sample_dex();
        let bytes1 = write_dex(&dex).unwrap();
        let back = read_dex(&bytes1).unwrap();
        let bytes2 = write_dex(&back).unwrap();
        assert_eq!(bytes1, bytes2);
    }

    #[test]
    fn corrupted_checksum_rejected() {
        let dex = sample_dex();
        let mut bytes = write_dex(&dex).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert!(matches!(
            read_dex(&bytes),
            Err(DexError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn corrupted_signature_rejected() {
        let dex = sample_dex();
        let mut bytes = write_dex(&dex).unwrap();
        bytes[20] ^= 0xff; // inside signature field
                           // Recompute the checksum so only the signature is wrong.
        let sum = checksum::adler32(&bytes[12..]);
        bytes[8..12].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(read_dex(&bytes), Err(DexError::SignatureMismatch));
    }

    #[test]
    fn unchecked_ignores_corruption() {
        let dex = sample_dex();
        let mut bytes = write_dex(&dex).unwrap();
        bytes[20] ^= 0xff;
        assert!(read_dex_unchecked(&bytes).is_ok());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = write_dex(&DexFile::new()).unwrap();
        bytes[0] = b'x';
        assert!(matches!(
            read_dex_unchecked(&bytes),
            Err(DexError::BadMagic(_))
        ));
    }

    #[test]
    fn try_catch_roundtrip() {
        let mut dex = DexFile::new();
        let t = dex.intern_type("La;");
        let exc = dex.intern_type("Ljava/lang/Exception;");
        let m = dex.intern_method("La;", "risky", "V", &[]);
        let mut def = ClassDef::new(t);
        let mut code = CodeItem::new(2, 0, 0, vec![0x0000, 0x0000, 0x0000, 0x000e]);
        code.handlers.push(EncodedCatchHandler {
            catches: vec![CatchClause {
                type_idx: exc,
                addr: 3,
            }],
            catch_all_addr: Some(3),
        });
        code.tries.push(TryItem {
            start_addr: 0,
            insn_count: 3,
            handler_index: 0,
        });
        def.class_data
            .as_mut()
            .unwrap()
            .direct_methods
            .push(EncodedMethod {
                method_idx: m,
                access: AccessFlags::STATIC,
                code: Some(code.clone()),
            });
        dex.add_class(def);
        let bytes = write_dex(&dex).unwrap();
        let back = read_dex(&bytes).unwrap();
        let got = back.class_defs()[0]
            .class_data
            .as_ref()
            .unwrap()
            .direct_methods[0]
            .code
            .as_ref()
            .unwrap();
        assert_eq!(*got, code);
    }
}
