//! Modified UTF-8 (MUTF-8) codec.
//!
//! DEX string data uses the JVM's "modified UTF-8": U+0000 is encoded as the
//! two-byte sequence `C0 80`, supplementary characters are encoded as CESU-8
//! surrogate pairs (two three-byte sequences), and there are no four-byte
//! sequences.

use crate::error::{DexError, Result};

/// Encodes a Rust string as MUTF-8 bytes (without the trailing NUL).
///
/// # Example
///
/// ```
/// let bytes = dexlego_dex::mutf8::encode("a\u{0}b");
/// assert_eq!(bytes, [b'a', 0xc0, 0x80, b'b']);
/// ```
pub fn encode(s: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(s.len());
    for ch in s.chars() {
        let cp = ch as u32;
        match cp {
            0 => out.extend_from_slice(&[0xc0, 0x80]),
            0x01..=0x7f => out.push(cp as u8),
            0x80..=0x7ff => {
                out.push(0xc0 | (cp >> 6) as u8);
                out.push(0x80 | (cp & 0x3f) as u8);
            }
            0x800..=0xffff => {
                out.push(0xe0 | (cp >> 12) as u8);
                out.push(0x80 | ((cp >> 6) & 0x3f) as u8);
                out.push(0x80 | (cp & 0x3f) as u8);
            }
            _ => {
                // Encode as a CESU-8 surrogate pair.
                let v = cp - 0x1_0000;
                let hi = 0xd800 + (v >> 10);
                let lo = 0xdc00 + (v & 0x3ff);
                for unit in [hi, lo] {
                    out.push(0xe0 | (unit >> 12) as u8);
                    out.push(0x80 | ((unit >> 6) & 0x3f) as u8);
                    out.push(0x80 | (unit & 0x3f) as u8);
                }
            }
        }
    }
    out
}

/// Number of UTF-16 code units in `s`, which is what the DEX
/// `string_data_item` length prefix counts.
pub fn utf16_len(s: &str) -> usize {
    s.chars().map(char::len_utf16).sum()
}

/// Decodes MUTF-8 `bytes` (without trailing NUL) into a Rust string.
///
/// # Errors
///
/// Returns [`DexError::BadMutf8`] on malformed sequences, including unpaired
/// surrogates and truncated multi-byte sequences.
pub fn decode(bytes: &[u8]) -> Result<String> {
    let mut out = String::with_capacity(bytes.len());
    let mut i = 0;
    let mut pending_hi: Option<(u32, usize)> = None;
    while i < bytes.len() {
        let start = i;
        let b0 = bytes[i];
        i += 1;
        let unit: u32 = if b0 & 0x80 == 0 {
            if b0 == 0 {
                return Err(DexError::BadMutf8 { offset: start });
            }
            u32::from(b0)
        } else if b0 & 0xe0 == 0xc0 {
            let b1 = *bytes.get(i).ok_or(DexError::BadMutf8 { offset: start })?;
            i += 1;
            if b1 & 0xc0 != 0x80 {
                return Err(DexError::BadMutf8 { offset: start });
            }
            (u32::from(b0 & 0x1f) << 6) | u32::from(b1 & 0x3f)
        } else if b0 & 0xf0 == 0xe0 {
            if i + 1 > bytes.len() && i >= bytes.len() {
                return Err(DexError::BadMutf8 { offset: start });
            }
            let b1 = *bytes.get(i).ok_or(DexError::BadMutf8 { offset: start })?;
            let b2 = *bytes
                .get(i + 1)
                .ok_or(DexError::BadMutf8 { offset: start })?;
            i += 2;
            if b1 & 0xc0 != 0x80 || b2 & 0xc0 != 0x80 {
                return Err(DexError::BadMutf8 { offset: start });
            }
            (u32::from(b0 & 0x0f) << 12) | (u32::from(b1 & 0x3f) << 6) | u32::from(b2 & 0x3f)
        } else {
            return Err(DexError::BadMutf8 { offset: start });
        };

        if let Some((hi, hi_off)) = pending_hi.take() {
            if (0xdc00..=0xdfff).contains(&unit) {
                let cp = 0x1_0000 + ((hi - 0xd800) << 10) + (unit - 0xdc00);
                out.push(char::from_u32(cp).ok_or(DexError::BadMutf8 { offset: hi_off })?);
                continue;
            }
            return Err(DexError::BadMutf8 { offset: hi_off });
        }
        match unit {
            0xd800..=0xdbff => pending_hi = Some((unit, start)),
            0xdc00..=0xdfff => return Err(DexError::BadMutf8 { offset: start }),
            _ => out.push(char::from_u32(unit).ok_or(DexError::BadMutf8 { offset: start })?),
        }
    }
    if let Some((_, off)) = pending_hi {
        return Err(DexError::BadMutf8 { offset: off });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_roundtrip() {
        let s = "Lcom/test/Main;->advancedLeak()V";
        assert_eq!(decode(&encode(s)).unwrap(), s);
    }

    #[test]
    fn embedded_nul_uses_two_bytes() {
        let enc = encode("\u{0}");
        assert_eq!(enc, [0xc0, 0x80]);
        assert_eq!(decode(&enc).unwrap(), "\u{0}");
    }

    #[test]
    fn bmp_roundtrip() {
        let s = "包装-Дальвик-ユニット";
        assert_eq!(decode(&encode(s)).unwrap(), s);
    }

    #[test]
    fn supplementary_uses_surrogate_pair() {
        let s = "\u{1f600}";
        let enc = encode(s);
        assert_eq!(enc.len(), 6);
        assert_eq!(decode(&enc).unwrap(), s);
        assert_eq!(utf16_len(s), 2);
    }

    #[test]
    fn raw_nul_byte_rejected() {
        assert!(decode(&[0x00]).is_err());
    }

    #[test]
    fn unpaired_surrogate_rejected() {
        // A lone high surrogate D800 as CESU-8.
        let enc = [0xed, 0xa0, 0x80];
        assert!(decode(&enc).is_err());
    }

    #[test]
    fn truncated_sequence_rejected() {
        assert!(decode(&[0xc3]).is_err());
        assert!(decode(&[0xe4, 0xb8]).is_err());
    }

    #[test]
    fn utf16_len_counts_units() {
        assert_eq!(utf16_len("abc"), 3);
        assert_eq!(utf16_len("中"), 1);
        assert_eq!(utf16_len("\u{1f600}a"), 3);
    }
}
