//! Binary serialisation of a [`DexFile`] into spec-conformant bytes.
//!
//! Layout order: header, id pools, class defs, then the data section
//! (type lists, code items, class data, string data, encoded arrays) and the
//! map list, followed by header patching and checksum/signature computation.

use std::collections::HashMap;

use crate::code::CodeItem;
use crate::error::{DexError, Result};
use crate::file::{ClassData, DexFile};
use crate::{checksum, leb128, mutf8, DEX_MAGIC, ENDIAN_CONSTANT, HEADER_SIZE, NO_INDEX};

/// Map-list item type codes from the DEX specification.
pub mod map_type {
    /// `header_item`.
    pub const HEADER: u16 = 0x0000;
    /// `string_id_item` list.
    pub const STRING_ID: u16 = 0x0001;
    /// `type_id_item` list.
    pub const TYPE_ID: u16 = 0x0002;
    /// `proto_id_item` list.
    pub const PROTO_ID: u16 = 0x0003;
    /// `field_id_item` list.
    pub const FIELD_ID: u16 = 0x0004;
    /// `method_id_item` list.
    pub const METHOD_ID: u16 = 0x0005;
    /// `class_def_item` list.
    pub const CLASS_DEF: u16 = 0x0006;
    /// `map_list` itself.
    pub const MAP_LIST: u16 = 0x1000;
    /// `type_list`.
    pub const TYPE_LIST: u16 = 0x1001;
    /// `class_data_item`.
    pub const CLASS_DATA: u16 = 0x2000;
    /// `code_item`.
    pub const CODE: u16 = 0x2001;
    /// `string_data_item`.
    pub const STRING_DATA: u16 = 0x2002;
    /// `encoded_array_item`.
    pub const ENCODED_ARRAY: u16 = 0x2005;
}

struct Out {
    buf: Vec<u8>,
}

impl Out {
    fn new() -> Out {
        Out { buf: Vec::new() }
    }
    fn pos(&self) -> usize {
        self.buf.len()
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn uleb(&mut self, v: u32) {
        leb128::write_uleb128(&mut self.buf, v);
    }
    fn align4(&mut self) {
        while !self.buf.len().is_multiple_of(4) {
            self.buf.push(0);
        }
    }
    fn patch_u32(&mut self, at: usize, v: u32) {
        self.buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
    }
}

fn write_code_item(out: &mut Out, code: &CodeItem) -> Result<()> {
    out.align4();
    out.u16(code.registers_size);
    out.u16(code.ins_size);
    out.u16(code.outs_size);
    out.u16(code.tries.len() as u16);
    out.u32(0); // debug_info_off: not emitted
    out.u32(code.insns.len() as u32);
    for &unit in &code.insns {
        out.u16(unit);
    }
    if !code.tries.is_empty() {
        if !code.insns.len().is_multiple_of(2) {
            out.u16(0); // padding
        }
        // Serialise the handler list first (conceptually) to learn each
        // handler's offset within the encoded_catch_handler_list; we build it
        // into a side buffer so try_items can reference the offsets.
        let mut handler_buf: Vec<u8> = Vec::new();
        let mut offsets: Vec<u32> = Vec::new();
        leb128::write_uleb128(&mut handler_buf, code.handlers.len() as u32);
        for handler in &code.handlers {
            offsets.push(handler_buf.len() as u32);
            let size = handler.catches.len() as i32;
            let signed = if handler.catch_all_addr.is_some() {
                -size
            } else {
                size
            };
            leb128::write_sleb128(&mut handler_buf, signed);
            for clause in &handler.catches {
                leb128::write_uleb128(&mut handler_buf, clause.type_idx);
                leb128::write_uleb128(&mut handler_buf, clause.addr);
            }
            if let Some(addr) = handler.catch_all_addr {
                leb128::write_uleb128(&mut handler_buf, addr);
            }
        }
        for try_item in &code.tries {
            let off = *offsets
                .get(try_item.handler_index)
                .ok_or_else(|| DexError::Invalid("try_item references missing handler".into()))?;
            out.u32(try_item.start_addr);
            out.u16(try_item.insn_count);
            out.u16(off as u16);
        }
        out.buf.extend_from_slice(&handler_buf);
    }
    Ok(())
}

fn write_class_data(
    out: &mut Out,
    data: &ClassData,
    code_offs: &HashMap<(usize, usize), u32>,
    class_i: usize,
) {
    out.uleb(data.static_fields.len() as u32);
    out.uleb(data.instance_fields.len() as u32);
    out.uleb(data.direct_methods.len() as u32);
    out.uleb(data.virtual_methods.len() as u32);
    for fields in [&data.static_fields, &data.instance_fields] {
        let mut prev = 0u32;
        for (i, f) in fields.iter().enumerate() {
            let diff = if i == 0 {
                f.field_idx
            } else {
                f.field_idx - prev
            };
            out.uleb(diff);
            out.uleb(f.access.bits());
            prev = f.field_idx;
        }
    }
    let mut method_seq = 0usize;
    for methods in [&data.direct_methods, &data.virtual_methods] {
        let mut prev = 0u32;
        for (i, m) in methods.iter().enumerate() {
            let diff = if i == 0 {
                m.method_idx
            } else {
                m.method_idx - prev
            };
            out.uleb(diff);
            out.uleb(m.access.bits());
            let code_off = code_offs.get(&(class_i, method_seq)).copied().unwrap_or(0);
            out.uleb(code_off);
            prev = m.method_idx;
            method_seq += 1;
        }
    }
}

/// Serialises `dex` to bytes.
///
/// The output has a correct header, map list, Adler-32 checksum and SHA-1
/// signature, and can be re-parsed by [`crate::reader::read_dex`].
///
/// # Errors
///
/// Returns [`DexError::Invalid`] if the model is internally inconsistent
/// (e.g. a try range referencing a missing handler), and
/// [`DexError::TooLarge`] if the encoded file would exceed `u32` offsets.
pub fn write_dex(dex: &DexFile) -> Result<Vec<u8>> {
    // Note: field_idx lists inside class_data must be ascending for the
    // diff encoding to be valid; the model keeps them ascending by
    // construction (builder sorts), and the reader rejects negatives.
    for class in dex.class_defs() {
        if let Some(data) = &class.class_data {
            for fields in [&data.static_fields, &data.instance_fields] {
                if fields.windows(2).any(|w| w[1].field_idx < w[0].field_idx) {
                    return Err(DexError::Invalid(
                        "class_data field list not ascending by field_idx".into(),
                    ));
                }
            }
            for methods in [&data.direct_methods, &data.virtual_methods] {
                if methods
                    .windows(2)
                    .any(|w| w[1].method_idx < w[0].method_idx)
                {
                    return Err(DexError::Invalid(
                        "class_data method list not ascending by method_idx".into(),
                    ));
                }
            }
        }
    }

    let mut out = Out::new();
    let mut map: Vec<(u16, u32, u32)> = Vec::new(); // (type, count, offset)

    // --- header placeholder ---
    map.push((map_type::HEADER, 1, 0));
    out.buf.resize(HEADER_SIZE as usize, 0);

    // --- string_ids ---
    let string_ids_off = out.pos() as u32;
    if !dex.strings().is_empty() {
        map.push((
            map_type::STRING_ID,
            dex.strings().len() as u32,
            string_ids_off,
        ));
    }
    let string_id_patch = out.pos();
    for _ in dex.strings() {
        out.u32(0);
    }

    // --- type_ids ---
    let type_ids_off = out.pos() as u32;
    if !dex.type_ids().is_empty() {
        map.push((map_type::TYPE_ID, dex.type_ids().len() as u32, type_ids_off));
    }
    for &sidx in dex.type_ids() {
        out.u32(sidx);
    }

    // --- proto_ids ---
    let proto_ids_off = out.pos() as u32;
    if !dex.protos().is_empty() {
        map.push((map_type::PROTO_ID, dex.protos().len() as u32, proto_ids_off));
    }
    let proto_patch = out.pos();
    for proto in dex.protos() {
        out.u32(proto.shorty);
        out.u32(proto.return_type);
        out.u32(0); // parameters_off patched later
    }

    // --- field_ids ---
    let field_ids_off = out.pos() as u32;
    if !dex.field_ids().is_empty() {
        map.push((
            map_type::FIELD_ID,
            dex.field_ids().len() as u32,
            field_ids_off,
        ));
    }
    for f in dex.field_ids() {
        out.u16(f.class as u16);
        out.u16(f.type_ as u16);
        out.u32(f.name);
    }

    // --- method_ids ---
    let method_ids_off = out.pos() as u32;
    if !dex.method_ids().is_empty() {
        map.push((
            map_type::METHOD_ID,
            dex.method_ids().len() as u32,
            method_ids_off,
        ));
    }
    for m in dex.method_ids() {
        out.u16(m.class as u16);
        out.u16(m.proto as u16);
        out.u32(m.name);
    }

    // --- class_defs ---
    let class_defs_off = out.pos() as u32;
    if !dex.class_defs().is_empty() {
        map.push((
            map_type::CLASS_DEF,
            dex.class_defs().len() as u32,
            class_defs_off,
        ));
    }
    let class_def_patch = out.pos();
    for class in dex.class_defs() {
        out.u32(class.class_idx);
        out.u32(class.access.bits());
        out.u32(class.superclass.unwrap_or(NO_INDEX));
        out.u32(0); // interfaces_off
        out.u32(class.source_file.unwrap_or(NO_INDEX));
        out.u32(0); // annotations_off: not emitted
        out.u32(0); // class_data_off
        out.u32(0); // static_values_off
    }

    let data_off = out.pos() as u32;

    // --- type_lists (proto parameters + class interfaces), deduplicated ---
    let mut type_list_offs: HashMap<Vec<u32>, u32> = HashMap::new();
    let mut type_list_count = 0u32;
    let type_lists_off = {
        out.align4();
        out.pos() as u32
    };
    {
        let mut emit = |out: &mut Out, list: &[u32]| -> u32 {
            if list.is_empty() {
                return 0;
            }
            if let Some(&off) = type_list_offs.get(list) {
                return off;
            }
            out.align4();
            let off = out.pos() as u32;
            out.u32(list.len() as u32);
            for &t in list {
                out.u16(t as u16);
            }
            type_list_offs.insert(list.to_vec(), off);
            type_list_count += 1;
            off
        };
        for (i, proto) in dex.protos().iter().enumerate() {
            let off = emit(&mut out, &proto.parameters);
            out.patch_u32(proto_patch + i * 12 + 8, off);
        }
        for (i, class) in dex.class_defs().iter().enumerate() {
            let off = emit(&mut out, &class.interfaces);
            out.patch_u32(class_def_patch + i * 32 + 12, off);
        }
    }
    if type_list_count > 0 {
        map.push((map_type::TYPE_LIST, type_list_count, type_lists_off));
    }

    // --- code items ---
    let mut code_offs: HashMap<(usize, usize), u32> = HashMap::new();
    let mut code_count = 0u32;
    out.align4();
    let code_items_off = out.pos() as u32;
    for (ci, class) in dex.class_defs().iter().enumerate() {
        if let Some(data) = &class.class_data {
            for (mi, method) in data.methods().enumerate() {
                if let Some(code) = &method.code {
                    out.align4();
                    code_offs.insert((ci, mi), out.pos() as u32);
                    write_code_item(&mut out, code)?;
                    code_count += 1;
                }
            }
        }
    }
    if code_count > 0 {
        map.push((map_type::CODE, code_count, code_items_off));
    }

    // --- class_data items ---
    let class_data_off_start = out.pos() as u32;
    let mut class_data_count = 0u32;
    for (ci, class) in dex.class_defs().iter().enumerate() {
        if let Some(data) = &class.class_data {
            let off = out.pos() as u32;
            write_class_data(&mut out, data, &code_offs, ci);
            out.patch_u32(class_def_patch + ci * 32 + 24, off);
            class_data_count += 1;
        }
    }
    if class_data_count > 0 {
        map.push((map_type::CLASS_DATA, class_data_count, class_data_off_start));
    }

    // --- string data ---
    let string_data_off_start = out.pos() as u32;
    if !dex.strings().is_empty() {
        map.push((
            map_type::STRING_DATA,
            dex.strings().len() as u32,
            string_data_off_start,
        ));
    }
    for (i, s) in dex.strings().iter().enumerate() {
        let off = out.pos() as u32;
        out.uleb(mutf8::utf16_len(s) as u32);
        out.buf.extend_from_slice(&mutf8::encode(s));
        out.u8(0);
        out.patch_u32(string_id_patch + i * 4, off);
    }

    // --- encoded arrays (static values) ---
    let mut enc_array_count = 0u32;
    let enc_arrays_off = out.pos() as u32;
    for (ci, class) in dex.class_defs().iter().enumerate() {
        if !class.static_values.is_empty() {
            let off = out.pos() as u32;
            out.uleb(class.static_values.len() as u32);
            for value in &class.static_values {
                value.write(&mut out.buf);
            }
            out.patch_u32(class_def_patch + ci * 32 + 28, off);
            enc_array_count += 1;
        }
    }
    if enc_array_count > 0 {
        map.push((map_type::ENCODED_ARRAY, enc_array_count, enc_arrays_off));
    }

    // --- map list ---
    out.align4();
    let map_off = out.pos() as u32;
    map.push((map_type::MAP_LIST, 1, map_off));
    map.sort_by_key(|&(_, _, off)| off);
    out.u32(map.len() as u32);
    for (ty, count, off) in &map {
        out.u16(*ty);
        out.u16(0);
        out.u32(*count);
        out.u32(*off);
    }

    let file_size = out.pos();
    if file_size > u32::MAX as usize {
        return Err(DexError::TooLarge(file_size));
    }

    // --- header ---
    let mut header = Out::new();
    header.buf.extend_from_slice(&DEX_MAGIC);
    header.u32(0); // checksum placeholder
    header.buf.extend_from_slice(&[0u8; 20]); // signature placeholder
    header.u32(file_size as u32);
    header.u32(HEADER_SIZE);
    header.u32(ENDIAN_CONSTANT);
    header.u32(0); // link_size
    header.u32(0); // link_off
    header.u32(map_off);
    header.u32(dex.strings().len() as u32);
    header.u32(if dex.strings().is_empty() {
        0
    } else {
        string_ids_off
    });
    header.u32(dex.type_ids().len() as u32);
    header.u32(if dex.type_ids().is_empty() {
        0
    } else {
        type_ids_off
    });
    header.u32(dex.protos().len() as u32);
    header.u32(if dex.protos().is_empty() {
        0
    } else {
        proto_ids_off
    });
    header.u32(dex.field_ids().len() as u32);
    header.u32(if dex.field_ids().is_empty() {
        0
    } else {
        field_ids_off
    });
    header.u32(dex.method_ids().len() as u32);
    header.u32(if dex.method_ids().is_empty() {
        0
    } else {
        method_ids_off
    });
    header.u32(dex.class_defs().len() as u32);
    header.u32(if dex.class_defs().is_empty() {
        0
    } else {
        class_defs_off
    });
    header.u32(file_size as u32 - data_off);
    header.u32(data_off);
    debug_assert_eq!(header.buf.len(), HEADER_SIZE as usize);
    out.buf[..HEADER_SIZE as usize].copy_from_slice(&header.buf);

    // Signature covers everything after the signature field (offset 32);
    // checksum covers everything after the checksum field (offset 12).
    let signature = checksum::sha1(&out.buf[32..]);
    out.buf[12..32].copy_from_slice(&signature);
    let sum = checksum::adler32(&out.buf[12..]);
    out.buf[8..12].copy_from_slice(&sum.to_le_bytes());

    Ok(out.buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessFlags;
    use crate::file::{ClassDef, EncodedMethod};
    use crate::EncodedValue;

    #[test]
    fn empty_dex_has_valid_header() {
        let dex = DexFile::new();
        let bytes = write_dex(&dex).unwrap();
        assert_eq!(&bytes[..8], &DEX_MAGIC);
        let file_size = u32::from_le_bytes(bytes[32..36].try_into().unwrap());
        assert_eq!(file_size as usize, bytes.len());
        let sum = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        assert_eq!(sum, checksum::adler32(&bytes[12..]));
        assert_eq!(&bytes[12..32], &checksum::sha1(&bytes[32..]));
    }

    #[test]
    fn header_counts_match_model() {
        let mut dex = DexFile::new();
        dex.intern_method("Lcom/a/B;", "m", "V", &["I"]);
        let bytes = write_dex(&dex).unwrap();
        let string_count = u32::from_le_bytes(bytes[56..60].try_into().unwrap());
        assert_eq!(string_count as usize, dex.strings().len());
        let method_count = u32::from_le_bytes(bytes[88..92].try_into().unwrap());
        assert_eq!(method_count, 1);
    }

    #[test]
    fn rejects_unsorted_class_data_fields() {
        let mut dex = DexFile::new();
        let t = dex.intern_type("La;");
        let f0 = dex.intern_field("La;", "I", "x");
        let f1 = dex.intern_field("La;", "I", "y");
        let mut def = ClassDef::new(t);
        let data = def.class_data.as_mut().unwrap();
        data.static_fields.push(crate::file::EncodedField {
            field_idx: f1,
            access: AccessFlags::STATIC,
        });
        data.static_fields.push(crate::file::EncodedField {
            field_idx: f0,
            access: AccessFlags::STATIC,
        });
        dex.add_class(def);
        assert!(matches!(write_dex(&dex), Err(DexError::Invalid(_))));
    }

    #[test]
    fn writes_code_and_static_values() {
        let mut dex = DexFile::new();
        let t = dex.intern_type("La;");
        let m = dex.intern_method("La;", "go", "V", &[]);
        let mut def = ClassDef::new(t);
        def.static_values.push(EncodedValue::Int(42));
        def.class_data
            .as_mut()
            .unwrap()
            .direct_methods
            .push(EncodedMethod {
                method_idx: m,
                access: AccessFlags::PUBLIC | AccessFlags::STATIC,
                code: Some(CodeItem::new(1, 0, 0, vec![0x000e])),
            });
        dex.add_class(def);
        let bytes = write_dex(&dex).unwrap();
        assert!(bytes.len() > HEADER_SIZE as usize);
    }
}
