//! Error type for DEX parsing, serialisation, and verification.

use std::fmt;

/// Error produced by DEX reading, writing, or verification.
///
/// # Example
///
/// ```
/// use dexlego_dex::{reader, DexError};
/// let err = reader::read_dex(&[0u8; 4]).unwrap_err();
/// assert!(matches!(err, DexError::Truncated { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DexError {
    /// The input ended before a complete structure could be read.
    Truncated {
        /// Offset at which more bytes were required.
        offset: usize,
        /// What was being read.
        what: &'static str,
    },
    /// The file magic did not match a supported DEX version.
    BadMagic([u8; 8]),
    /// The endian tag was not [`crate::ENDIAN_CONSTANT`].
    BadEndianTag(u32),
    /// The Adler-32 checksum stored in the header does not match the payload.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
    /// The SHA-1 signature stored in the header does not match the payload.
    SignatureMismatch,
    /// An index referenced a pool entry that does not exist.
    IndexOutOfRange {
        /// Which pool the index was for.
        pool: &'static str,
        /// The offending index.
        index: u32,
        /// Number of entries in the pool.
        len: usize,
    },
    /// A ULEB128/SLEB128 value was malformed (too long or truncated).
    BadLeb128,
    /// A string was not valid MUTF-8.
    BadMutf8 {
        /// Byte offset of the offending sequence within the string data.
        offset: usize,
    },
    /// A structural invariant of the format was violated.
    Invalid(String),
    /// The file is larger than the format can represent.
    TooLarge(usize),
}

impl fmt::Display for DexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DexError::Truncated { offset, what } => {
                write!(f, "truncated input at offset {offset} while reading {what}")
            }
            DexError::BadMagic(m) => write!(f, "unrecognised dex magic {m:02x?}"),
            DexError::BadEndianTag(t) => write!(f, "unsupported endian tag {t:#010x}"),
            DexError::ChecksumMismatch { stored, computed } => write!(
                f,
                "adler-32 checksum mismatch: header {stored:#010x}, computed {computed:#010x}"
            ),
            DexError::SignatureMismatch => write!(f, "sha-1 signature mismatch"),
            DexError::IndexOutOfRange { pool, index, len } => {
                write!(
                    f,
                    "{pool} index {index} out of range (pool has {len} entries)"
                )
            }
            DexError::BadLeb128 => write!(f, "malformed leb128 value"),
            DexError::BadMutf8 { offset } => {
                write!(f, "invalid mutf-8 sequence at byte {offset}")
            }
            DexError::Invalid(msg) => write!(f, "invalid dex structure: {msg}"),
            DexError::TooLarge(n) => write!(f, "file of {n} bytes exceeds format limits"),
        }
    }
}

impl std::error::Error for DexError {}

/// Convenience alias for results with [`DexError`].
pub type Result<T> = std::result::Result<T, DexError>;
