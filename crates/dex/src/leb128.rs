//! LEB128 variable-length integer codecs used throughout the DEX format.
//!
//! The DEX format uses three flavours: unsigned (`uleb128`), signed
//! (`sleb128`), and `uleb128p1` (unsigned, biased by one so that `-1` — the
//! "no value" marker — encodes as a single zero byte).

use crate::error::{DexError, Result};

/// Maximum number of bytes a DEX LEB128 value may occupy (32-bit payloads).
pub const MAX_LEN: usize = 5;

/// Encodes `value` as ULEB128, appending to `out`.
///
/// # Example
///
/// ```
/// let mut buf = Vec::new();
/// dexlego_dex::leb128::write_uleb128(&mut buf, 0x80);
/// assert_eq!(buf, [0x80, 0x01]);
/// ```
pub fn write_uleb128(out: &mut Vec<u8>, mut value: u32) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Encodes `value` as SLEB128, appending to `out`.
pub fn write_sleb128(out: &mut Vec<u8>, mut value: i32) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        let sign_clear = byte & 0x40 == 0;
        let done = (value == 0 && sign_clear) || (value == -1 && !sign_clear);
        if done {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Encodes `value` as ULEB128p1 (value plus one), appending to `out`.
///
/// `-1` encodes as a single `0x00` byte.
pub fn write_uleb128p1(out: &mut Vec<u8>, value: i64) {
    debug_assert!((-1..=u32::MAX as i64).contains(&value));
    write_uleb128(out, (value + 1) as u32);
}

/// Decodes a ULEB128 value from `buf` starting at `*pos`, advancing `*pos`.
///
/// # Errors
///
/// Returns [`DexError::BadLeb128`] if the value is truncated or longer than
/// five bytes, the DEX maximum for 32-bit payloads.
pub fn read_uleb128(buf: &[u8], pos: &mut usize) -> Result<u32> {
    let mut result: u32 = 0;
    for i in 0..MAX_LEN {
        let byte = *buf.get(*pos).ok_or(DexError::BadLeb128)?;
        *pos += 1;
        result |= u32::from(byte & 0x7f) << (7 * i);
        if byte & 0x80 == 0 {
            return Ok(result);
        }
    }
    Err(DexError::BadLeb128)
}

/// Decodes an SLEB128 value from `buf` starting at `*pos`, advancing `*pos`.
///
/// # Errors
///
/// Returns [`DexError::BadLeb128`] on truncated or over-long input.
pub fn read_sleb128(buf: &[u8], pos: &mut usize) -> Result<i32> {
    let mut result: i32 = 0;
    let mut shift = 0u32;
    for _ in 0..MAX_LEN {
        let byte = *buf.get(*pos).ok_or(DexError::BadLeb128)?;
        *pos += 1;
        result |= i32::from(byte & 0x7f) << shift;
        shift += 7;
        if byte & 0x80 == 0 {
            if shift < 32 && byte & 0x40 != 0 {
                result |= -1i32 << shift;
            }
            return Ok(result);
        }
    }
    Err(DexError::BadLeb128)
}

/// Decodes a ULEB128p1 value (stored value minus one).
///
/// # Errors
///
/// Returns [`DexError::BadLeb128`] on truncated or over-long input.
pub fn read_uleb128p1(buf: &[u8], pos: &mut usize) -> Result<i64> {
    Ok(i64::from(read_uleb128(buf, pos)?) - 1)
}

/// Number of bytes `value` occupies when ULEB128-encoded.
pub fn uleb128_len(value: u32) -> usize {
    match value {
        0..=0x7f => 1,
        0x80..=0x3fff => 2,
        0x4000..=0x1f_ffff => 3,
        0x20_0000..=0xfff_ffff => 4,
        _ => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_u(v: u32) -> u32 {
        let mut buf = Vec::new();
        write_uleb128(&mut buf, v);
        assert_eq!(buf.len(), uleb128_len(v));
        let mut pos = 0;
        let got = read_uleb128(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        got
    }

    fn roundtrip_s(v: i32) -> i32 {
        let mut buf = Vec::new();
        write_sleb128(&mut buf, v);
        let mut pos = 0;
        let got = read_sleb128(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        got
    }

    #[test]
    fn uleb128_known_vectors() {
        // Vectors from the dex format specification.
        let mut buf = Vec::new();
        write_uleb128(&mut buf, 0);
        assert_eq!(buf, [0x00]);
        buf.clear();
        write_uleb128(&mut buf, 1);
        assert_eq!(buf, [0x01]);
        buf.clear();
        write_uleb128(&mut buf, 127);
        assert_eq!(buf, [0x7f]);
        buf.clear();
        write_uleb128(&mut buf, 16256);
        assert_eq!(buf, [0x80, 0x7f]);
    }

    #[test]
    fn sleb128_known_vectors() {
        let mut buf = Vec::new();
        write_sleb128(&mut buf, 0);
        assert_eq!(buf, [0x00]);
        buf.clear();
        write_sleb128(&mut buf, 1);
        assert_eq!(buf, [0x01]);
        buf.clear();
        write_sleb128(&mut buf, -1);
        assert_eq!(buf, [0x7f]);
        buf.clear();
        write_sleb128(&mut buf, -128);
        assert_eq!(buf, [0x80, 0x7f]);
    }

    #[test]
    fn uleb128_roundtrip_extremes() {
        for v in [0, 1, 0x7f, 0x80, 0x3fff, 0x4000, u32::MAX] {
            assert_eq!(roundtrip_u(v), v);
        }
    }

    #[test]
    fn sleb128_roundtrip_extremes() {
        for v in [0, 1, -1, 63, 64, -64, -65, i32::MAX, i32::MIN] {
            assert_eq!(roundtrip_s(v), v);
        }
    }

    #[test]
    fn uleb128p1_minus_one_is_zero_byte() {
        let mut buf = Vec::new();
        write_uleb128p1(&mut buf, -1);
        assert_eq!(buf, [0x00]);
        let mut pos = 0;
        assert_eq!(read_uleb128p1(&buf, &mut pos).unwrap(), -1);
    }

    #[test]
    fn truncated_input_rejected() {
        let mut pos = 0;
        assert_eq!(read_uleb128(&[0x80], &mut pos), Err(DexError::BadLeb128));
        let mut pos = 0;
        assert_eq!(
            read_sleb128(&[0xff, 0xff], &mut pos),
            Err(DexError::BadLeb128)
        );
    }

    #[test]
    fn overlong_input_rejected() {
        let mut pos = 0;
        let six = [0x80u8, 0x80, 0x80, 0x80, 0x80, 0x01];
        assert_eq!(read_uleb128(&six, &mut pos), Err(DexError::BadLeb128));
    }
}
