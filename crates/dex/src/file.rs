//! In-memory model of a DEX file: string/type/proto/field/method pools and
//! class definitions.
//!
//! The model is index-based, mirroring the binary format: instructions and
//! id items refer to pool entries by index. Interning methods
//! ([`DexFile::intern_string`] and friends) append to the pools and
//! deduplicate, so a model built through them never holds two identical pool
//! entries. Pool *sorting* (a validity requirement of the binary format) is
//! performed by the canonicalisation pass in the `dexlego-dalvik` crate,
//! which can also rewrite the indices embedded in instruction streams.

use std::collections::HashMap;

use crate::access::AccessFlags;
use crate::code::CodeItem;
use crate::error::{DexError, Result};
use crate::value::EncodedValue;
use crate::{FieldIdx, MethodIdx, ProtoIdx, StringIdx, TypeIdx};

/// A `proto_id_item`: method prototype (shorty, return type, parameters).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProtoIdItem {
    /// Index of the shorty descriptor string (e.g. `"VIL"`).
    pub shorty: StringIdx,
    /// Return type.
    pub return_type: TypeIdx,
    /// Parameter types, in order.
    pub parameters: Vec<TypeIdx>,
}

/// A `field_id_item`: (declaring class, type, name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldIdItem {
    /// Declaring class.
    pub class: TypeIdx,
    /// Field type.
    pub type_: TypeIdx,
    /// Field name.
    pub name: StringIdx,
}

/// A `method_id_item`: (declaring class, prototype, name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MethodIdItem {
    /// Declaring class.
    pub class: TypeIdx,
    /// Prototype.
    pub proto: ProtoIdx,
    /// Method name.
    pub name: StringIdx,
}

/// A field as listed in `class_data_item`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedField {
    /// Index into the field pool.
    pub field_idx: FieldIdx,
    /// Access flags.
    pub access: AccessFlags,
}

/// A method as listed in `class_data_item`, with its optional body.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedMethod {
    /// Index into the method pool.
    pub method_idx: MethodIdx,
    /// Access flags.
    pub access: AccessFlags,
    /// Bytecode body; `None` for `native` and `abstract` methods.
    pub code: Option<CodeItem>,
}

/// The members of a class (`class_data_item`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClassData {
    /// Static fields, by ascending field index.
    pub static_fields: Vec<EncodedField>,
    /// Instance fields, by ascending field index.
    pub instance_fields: Vec<EncodedField>,
    /// Direct methods (static, private, constructors).
    pub direct_methods: Vec<EncodedMethod>,
    /// Virtual methods.
    pub virtual_methods: Vec<EncodedMethod>,
}

impl ClassData {
    /// Iterates over all methods, direct then virtual.
    pub fn methods(&self) -> impl Iterator<Item = &EncodedMethod> {
        self.direct_methods
            .iter()
            .chain(self.virtual_methods.iter())
    }

    /// Iterates mutably over all methods, direct then virtual.
    pub fn methods_mut(&mut self) -> impl Iterator<Item = &mut EncodedMethod> {
        self.direct_methods
            .iter_mut()
            .chain(self.virtual_methods.iter_mut())
    }

    /// Iterates over all fields, static then instance.
    pub fn fields(&self) -> impl Iterator<Item = &EncodedField> {
        self.static_fields.iter().chain(self.instance_fields.iter())
    }
}

/// A `class_def_item` plus its associated data.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDef {
    /// The class being defined.
    pub class_idx: TypeIdx,
    /// Access flags.
    pub access: AccessFlags,
    /// Superclass, or `None` for `java.lang.Object`.
    pub superclass: Option<TypeIdx>,
    /// Implemented interfaces.
    pub interfaces: Vec<TypeIdx>,
    /// Source file name, if recorded.
    pub source_file: Option<StringIdx>,
    /// Member definitions; `None` for marker classes with no members.
    pub class_data: Option<ClassData>,
    /// Initial values for the leading static fields.
    pub static_values: Vec<EncodedValue>,
}

impl ClassDef {
    /// Creates an empty public class definition.
    pub fn new(class_idx: TypeIdx) -> ClassDef {
        ClassDef {
            class_idx,
            access: AccessFlags::PUBLIC,
            superclass: None,
            interfaces: Vec::new(),
            source_file: None,
            class_data: Some(ClassData::default()),
            static_values: Vec::new(),
        }
    }
}

/// A class definition's inheritance link in descriptor form, as yielded by
/// [`DexFile::hierarchy_links`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyLink<'a> {
    /// Descriptor of the defined class.
    pub class: &'a str,
    /// Descriptor of its superclass; `None` for `java.lang.Object`.
    pub superclass: Option<&'a str>,
    /// Descriptors of the implemented interfaces.
    pub interfaces: Vec<&'a str>,
    /// Whether the definition is an interface.
    pub is_interface: bool,
}

/// An in-memory DEX file.
///
/// # Example
///
/// ```
/// use dexlego_dex::DexFile;
/// let mut dex = DexFile::new();
/// let obj = dex.intern_type("Ljava/lang/Object;");
/// assert_eq!(dex.type_descriptor(obj).unwrap(), "Ljava/lang/Object;");
/// ```
#[derive(Debug, Clone, Default)]
pub struct DexFile {
    strings: Vec<String>,
    type_ids: Vec<StringIdx>,
    protos: Vec<ProtoIdItem>,
    field_ids: Vec<FieldIdItem>,
    method_ids: Vec<MethodIdItem>,
    class_defs: Vec<ClassDef>,
    // Interning caches; rebuilt when a model is loaded wholesale.
    string_cache: HashMap<String, StringIdx>,
    type_cache: HashMap<StringIdx, TypeIdx>,
    proto_cache: HashMap<ProtoIdItem, ProtoIdx>,
    field_cache: HashMap<FieldIdItem, FieldIdx>,
    method_cache: HashMap<MethodIdItem, MethodIdx>,
}

impl PartialEq for DexFile {
    fn eq(&self, other: &DexFile) -> bool {
        self.strings == other.strings
            && self.type_ids == other.type_ids
            && self.protos == other.protos
            && self.field_ids == other.field_ids
            && self.method_ids == other.method_ids
            && self.class_defs == other.class_defs
    }
}

impl DexFile {
    /// Creates an empty DEX model.
    pub fn new() -> DexFile {
        DexFile::default()
    }

    /// Builds a model from raw pools (used by the reader), rebuilding the
    /// interning caches.
    pub fn from_pools(
        strings: Vec<String>,
        type_ids: Vec<StringIdx>,
        protos: Vec<ProtoIdItem>,
        field_ids: Vec<FieldIdItem>,
        method_ids: Vec<MethodIdItem>,
        class_defs: Vec<ClassDef>,
    ) -> DexFile {
        let mut dex = DexFile {
            strings,
            type_ids,
            protos,
            field_ids,
            method_ids,
            class_defs,
            ..DexFile::default()
        };
        dex.rebuild_caches();
        dex
    }

    fn rebuild_caches(&mut self) {
        self.string_cache = self
            .strings
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as u32))
            .collect();
        self.type_cache = self
            .type_ids
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as u32))
            .collect();
        self.proto_cache = self
            .protos
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as u32))
            .collect();
        self.field_cache = self
            .field_ids
            .iter()
            .enumerate()
            .map(|(i, &f)| (f, i as u32))
            .collect();
        self.method_cache = self
            .method_ids
            .iter()
            .enumerate()
            .map(|(i, &m)| (m, i as u32))
            .collect();
    }

    // ---- interning -------------------------------------------------------

    /// Interns a string, returning its pool index.
    pub fn intern_string(&mut self, s: &str) -> StringIdx {
        if let Some(&idx) = self.string_cache.get(s) {
            return idx;
        }
        let idx = self.strings.len() as u32;
        self.strings.push(s.to_owned());
        self.string_cache.insert(s.to_owned(), idx);
        idx
    }

    /// Interns a type descriptor (e.g. `"Lcom/test/Main;"`).
    pub fn intern_type(&mut self, descriptor: &str) -> TypeIdx {
        let sidx = self.intern_string(descriptor);
        if let Some(&idx) = self.type_cache.get(&sidx) {
            return idx;
        }
        let idx = self.type_ids.len() as u32;
        self.type_ids.push(sidx);
        self.type_cache.insert(sidx, idx);
        idx
    }

    /// Interns a prototype from descriptor strings.
    ///
    /// The shorty is derived from the return and parameter descriptors.
    pub fn intern_proto(&mut self, return_type: &str, parameters: &[&str]) -> ProtoIdx {
        let shorty: String = std::iter::once(shorty_char(return_type))
            .chain(parameters.iter().map(|p| shorty_char(p)))
            .collect();
        let shorty = self.intern_string(&shorty);
        let return_type = self.intern_type(return_type);
        let parameters = parameters.iter().map(|p| self.intern_type(p)).collect();
        let item = ProtoIdItem {
            shorty,
            return_type,
            parameters,
        };
        if let Some(&idx) = self.proto_cache.get(&item) {
            return idx;
        }
        let idx = self.protos.len() as u32;
        self.proto_cache.insert(item.clone(), idx);
        self.protos.push(item);
        idx
    }

    /// Interns a field id.
    pub fn intern_field(&mut self, class: &str, type_: &str, name: &str) -> FieldIdx {
        let item = FieldIdItem {
            class: self.intern_type(class),
            type_: self.intern_type(type_),
            name: self.intern_string(name),
        };
        if let Some(&idx) = self.field_cache.get(&item) {
            return idx;
        }
        let idx = self.field_ids.len() as u32;
        self.field_cache.insert(item, idx);
        self.field_ids.push(item);
        idx
    }

    /// Interns a method id.
    pub fn intern_method(
        &mut self,
        class: &str,
        name: &str,
        return_type: &str,
        parameters: &[&str],
    ) -> MethodIdx {
        let item = MethodIdItem {
            class: self.intern_type(class),
            proto: self.intern_proto(return_type, parameters),
            name: self.intern_string(name),
        };
        if let Some(&idx) = self.method_cache.get(&item) {
            return idx;
        }
        let idx = self.method_ids.len() as u32;
        self.method_cache.insert(item, idx);
        self.method_ids.push(item);
        idx
    }

    /// Adds a class definition, returning its index in the class list.
    pub fn add_class(&mut self, def: ClassDef) -> usize {
        self.class_defs.push(def);
        self.class_defs.len() - 1
    }

    // ---- accessors -------------------------------------------------------

    /// The string pool.
    pub fn strings(&self) -> &[String] {
        &self.strings
    }

    /// The type-id pool (indices into the string pool).
    pub fn type_ids(&self) -> &[StringIdx] {
        &self.type_ids
    }

    /// The prototype pool.
    pub fn protos(&self) -> &[ProtoIdItem] {
        &self.protos
    }

    /// The field-id pool.
    pub fn field_ids(&self) -> &[FieldIdItem] {
        &self.field_ids
    }

    /// The method-id pool.
    pub fn method_ids(&self) -> &[MethodIdItem] {
        &self.method_ids
    }

    /// The class definitions.
    pub fn class_defs(&self) -> &[ClassDef] {
        &self.class_defs
    }

    /// Mutable access to the class definitions.
    pub fn class_defs_mut(&mut self) -> &mut Vec<ClassDef> {
        &mut self.class_defs
    }

    /// Looks up a string by index.
    ///
    /// # Errors
    ///
    /// Returns [`DexError::IndexOutOfRange`] for an invalid index.
    pub fn string(&self, idx: StringIdx) -> Result<&str> {
        self.strings
            .get(idx as usize)
            .map(String::as_str)
            .ok_or(DexError::IndexOutOfRange {
                pool: "string",
                index: idx,
                len: self.strings.len(),
            })
    }

    /// The descriptor string of a type.
    ///
    /// # Errors
    ///
    /// Returns [`DexError::IndexOutOfRange`] for an invalid index.
    pub fn type_descriptor(&self, idx: TypeIdx) -> Result<&str> {
        let sidx = *self
            .type_ids
            .get(idx as usize)
            .ok_or(DexError::IndexOutOfRange {
                pool: "type",
                index: idx,
                len: self.type_ids.len(),
            })?;
        self.string(sidx)
    }

    /// The prototype at `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`DexError::IndexOutOfRange`] for an invalid index.
    pub fn proto(&self, idx: ProtoIdx) -> Result<&ProtoIdItem> {
        self.protos
            .get(idx as usize)
            .ok_or(DexError::IndexOutOfRange {
                pool: "proto",
                index: idx,
                len: self.protos.len(),
            })
    }

    /// The field id at `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`DexError::IndexOutOfRange`] for an invalid index.
    pub fn field_id(&self, idx: FieldIdx) -> Result<&FieldIdItem> {
        self.field_ids
            .get(idx as usize)
            .ok_or(DexError::IndexOutOfRange {
                pool: "field",
                index: idx,
                len: self.field_ids.len(),
            })
    }

    /// The method id at `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`DexError::IndexOutOfRange`] for an invalid index.
    pub fn method_id(&self, idx: MethodIdx) -> Result<&MethodIdItem> {
        self.method_ids
            .get(idx as usize)
            .ok_or(DexError::IndexOutOfRange {
                pool: "method",
                index: idx,
                len: self.method_ids.len(),
            })
    }

    /// Finds the class definition for a type descriptor.
    pub fn find_class(&self, descriptor: &str) -> Option<&ClassDef> {
        self.class_defs
            .iter()
            .find(|c| self.type_descriptor(c.class_idx) == Ok(descriptor))
    }

    /// One class definition's inheritance link, in descriptor form: the
    /// raw material for a class-hierarchy model (see
    /// `dexlego_verifier::hierarchy`). Entries with unresolvable type
    /// indices are skipped rather than failing the whole walk.
    pub fn hierarchy_links(&self) -> impl Iterator<Item = HierarchyLink<'_>> {
        self.class_defs.iter().filter_map(|c| {
            let class = self.type_descriptor(c.class_idx).ok()?;
            let superclass = match c.superclass {
                Some(s) => Some(self.type_descriptor(s).ok()?),
                None => None,
            };
            let interfaces = c
                .interfaces
                .iter()
                .filter_map(|&i| self.type_descriptor(i).ok())
                .collect();
            Some(HierarchyLink {
                class,
                superclass,
                interfaces,
                is_interface: c.access.contains(AccessFlags::INTERFACE),
            })
        })
    }

    /// Human-readable signature for a method id, e.g.
    /// `Lcom/test/Main;->advancedLeak()V`.
    pub fn method_signature(&self, idx: MethodIdx) -> Result<String> {
        let m = self.method_id(idx)?;
        let proto = self.proto(m.proto)?;
        let mut sig = String::new();
        sig.push_str(self.type_descriptor(m.class)?);
        sig.push_str("->");
        sig.push_str(self.string(m.name)?);
        sig.push('(');
        for &p in &proto.parameters {
            sig.push_str(self.type_descriptor(p)?);
        }
        sig.push(')');
        sig.push_str(self.type_descriptor(proto.return_type)?);
        Ok(sig)
    }

    /// Human-readable signature for a field id, e.g.
    /// `Lcom/test/Main;->PHONE:Ljava/lang/String;`.
    pub fn field_signature(&self, idx: FieldIdx) -> Result<String> {
        let f = self.field_id(idx)?;
        Ok(format!(
            "{}->{}:{}",
            self.type_descriptor(f.class)?,
            self.string(f.name)?,
            self.type_descriptor(f.type_)?
        ))
    }

    /// Total number of instruction code units across all method bodies.
    pub fn total_insn_units(&self) -> usize {
        self.class_defs
            .iter()
            .filter_map(|c| c.class_data.as_ref())
            .flat_map(|d| d.methods())
            .filter_map(|m| m.code.as_ref())
            .map(|c| c.insns.len())
            .sum()
    }
}

/// Shorty character for a type descriptor: `L` for any reference type, the
/// primitive letter otherwise.
pub fn shorty_char(descriptor: &str) -> char {
    match descriptor.as_bytes().first() {
        Some(b'[') | Some(b'L') => 'L',
        Some(&c) => c as char,
        None => 'V',
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let mut dex = DexFile::new();
        let a = dex.intern_string("hello");
        let b = dex.intern_string("hello");
        assert_eq!(a, b);
        assert_eq!(dex.strings().len(), 1);

        let t1 = dex.intern_type("I");
        let t2 = dex.intern_type("I");
        assert_eq!(t1, t2);

        let p1 = dex.intern_proto("V", &["I", "Ljava/lang/String;"]);
        let p2 = dex.intern_proto("V", &["I", "Ljava/lang/String;"]);
        assert_eq!(p1, p2);
        let p3 = dex.intern_proto("V", &["I"]);
        assert_ne!(p1, p3);
    }

    #[test]
    fn shorty_derivation() {
        let mut dex = DexFile::new();
        let p = dex.intern_proto("V", &["I", "Lfoo;", "[B", "D"]);
        let proto = dex.proto(p).unwrap();
        assert_eq!(dex.string(proto.shorty).unwrap(), "VILLD");
    }

    #[test]
    fn method_signature_formats() {
        let mut dex = DexFile::new();
        let m = dex.intern_method("Lcom/test/Main;", "advancedLeak", "V", &[]);
        assert_eq!(
            dex.method_signature(m).unwrap(),
            "Lcom/test/Main;->advancedLeak()V"
        );
    }

    #[test]
    fn field_signature_formats() {
        let mut dex = DexFile::new();
        let f = dex.intern_field("Lcom/test/Main;", "Ljava/lang/String;", "PHONE");
        assert_eq!(
            dex.field_signature(f).unwrap(),
            "Lcom/test/Main;->PHONE:Ljava/lang/String;"
        );
    }

    #[test]
    fn out_of_range_indices_error() {
        let dex = DexFile::new();
        assert!(matches!(
            dex.string(0),
            Err(DexError::IndexOutOfRange { pool: "string", .. })
        ));
        assert!(dex.type_descriptor(3).is_err());
        assert!(dex.proto(0).is_err());
        assert!(dex.field_id(0).is_err());
        assert!(dex.method_id(0).is_err());
    }

    #[test]
    fn find_class_by_descriptor() {
        let mut dex = DexFile::new();
        let t = dex.intern_type("Lcom/a/B;");
        dex.add_class(ClassDef::new(t));
        assert!(dex.find_class("Lcom/a/B;").is_some());
        assert!(dex.find_class("Lcom/a/C;").is_none());
    }

    #[test]
    fn from_pools_rebuilds_caches() {
        let mut dex = DexFile::new();
        dex.intern_method("La;", "m", "V", &[]);
        let rebuilt = DexFile::from_pools(
            dex.strings.clone(),
            dex.type_ids.clone(),
            dex.protos.clone(),
            dex.field_ids.clone(),
            dex.method_ids.clone(),
            dex.class_defs.clone(),
        );
        assert_eq!(rebuilt, dex);
        // Interning an existing string must hit the rebuilt cache.
        let mut rebuilt = rebuilt;
        let before = rebuilt.strings().len();
        rebuilt.intern_string("m");
        assert_eq!(rebuilt.strings().len(), before);
    }
}
