//! Adler-32 and SHA-1 implementations for the DEX header checksum and
//! signature fields.
//!
//! Implemented in-crate (both are short, fully specified algorithms) to keep
//! the dependency set to the approved list.

/// Computes the Adler-32 checksum of `data`, as stored in the DEX header's
/// `checksum` field (covering everything after the checksum itself).
///
/// # Example
///
/// ```
/// assert_eq!(dexlego_dex::checksum::adler32(b"Wikipedia"), 0x11E60398);
/// ```
pub fn adler32(data: &[u8]) -> u32 {
    const MOD: u32 = 65521;
    // Process in chunks small enough that the u32 accumulators cannot
    // overflow before reduction (5552 is the standard zlib bound).
    let mut a: u32 = 1;
    let mut b: u32 = 0;
    for chunk in data.chunks(5552) {
        for &byte in chunk {
            a += u32::from(byte);
            b += a;
        }
        a %= MOD;
        b %= MOD;
    }
    (b << 16) | a
}

/// Computes the SHA-1 digest of `data`, as stored in the DEX header's
/// `signature` field (covering everything after the signature itself).
///
/// # Example
///
/// ```
/// let d = dexlego_dex::checksum::sha1(b"abc");
/// assert_eq!(d[..4], [0xa9, 0x99, 0x3e, 0x36]);
/// ```
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h: [u32; 5] = [
        0x6745_2301,
        0xefcd_ab89,
        0x98ba_dcfe,
        0x1032_5476,
        0xc3d2_e1f0,
    ];

    let ml = (data.len() as u64) * 8;
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&ml.to_be_bytes());

    let mut w = [0u32; 80];
    for block in msg.chunks_exact(64) {
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = h;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5a82_7999),
                20..=39 => (b ^ c ^ d, 0x6ed9_eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
                _ => (b ^ c ^ d, 0xca62_c1d6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }

    let mut out = [0u8; 20];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn adler32_known_vectors() {
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"a"), 0x0062_0062);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
    }

    #[test]
    fn adler32_long_input_reduces_correctly() {
        // 100k of 0xff exercises the chunked modular reduction.
        let data = vec![0xffu8; 100_000];
        // Reference value computed with the canonical zlib algorithm.
        let mut a: u64 = 1;
        let mut b: u64 = 0;
        for &byte in &data {
            a = (a + u64::from(byte)) % 65521;
            b = (b + a) % 65521;
        }
        assert_eq!(adler32(&data), ((b as u32) << 16) | a as u32);
    }

    #[test]
    fn sha1_known_vectors() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn sha1_multiblock_padding_edge() {
        // 55, 56, 63, 64 byte messages hit every padding branch.
        for n in [55usize, 56, 63, 64, 119, 120] {
            let data = vec![b'x'; n];
            let d = sha1(&data);
            assert_eq!(d.len(), 20);
            // Sanity: digest differs from the empty digest.
            assert_ne!(hex(&d), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        }
    }
}
