//! Access flags for classes, fields, and methods.

use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// Java/Dalvik access flags bitset.
///
/// This is a thin newtype over the raw `u32` used in `class_def_item`,
/// `encoded_field`, and `encoded_method` structures.
///
/// # Example
///
/// ```
/// use dexlego_dex::AccessFlags;
/// let f = AccessFlags::PUBLIC | AccessFlags::STATIC;
/// assert!(f.contains(AccessFlags::PUBLIC));
/// assert!(!f.contains(AccessFlags::NATIVE));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct AccessFlags(pub u32);

impl AccessFlags {
    /// `public` visibility.
    pub const PUBLIC: AccessFlags = AccessFlags(0x1);
    /// `private` visibility.
    pub const PRIVATE: AccessFlags = AccessFlags(0x2);
    /// `protected` visibility.
    pub const PROTECTED: AccessFlags = AccessFlags(0x4);
    /// `static` member.
    pub const STATIC: AccessFlags = AccessFlags(0x8);
    /// `final` class/member.
    pub const FINAL: AccessFlags = AccessFlags(0x10);
    /// `synchronized` method.
    pub const SYNCHRONIZED: AccessFlags = AccessFlags(0x20);
    /// `volatile` field.
    pub const VOLATILE: AccessFlags = AccessFlags(0x40);
    /// Compiler-bridged method.
    pub const BRIDGE: AccessFlags = AccessFlags(0x40);
    /// `transient` field.
    pub const TRANSIENT: AccessFlags = AccessFlags(0x80);
    /// Varargs method.
    pub const VARARGS: AccessFlags = AccessFlags(0x80);
    /// `native` method (no bytecode; dispatched to the native registry).
    pub const NATIVE: AccessFlags = AccessFlags(0x100);
    /// `interface` class.
    pub const INTERFACE: AccessFlags = AccessFlags(0x200);
    /// `abstract` class/method.
    pub const ABSTRACT: AccessFlags = AccessFlags(0x400);
    /// `strictfp` method.
    pub const STRICT: AccessFlags = AccessFlags(0x800);
    /// Synthetic (compiler-generated) item. DexLego's instrument class and
    /// method variants are marked synthetic.
    pub const SYNTHETIC: AccessFlags = AccessFlags(0x1000);
    /// Annotation class.
    pub const ANNOTATION: AccessFlags = AccessFlags(0x2000);
    /// Enum class/field.
    pub const ENUM: AccessFlags = AccessFlags(0x4000);
    /// Constructor (`<init>` / `<clinit>`).
    pub const CONSTRUCTOR: AccessFlags = AccessFlags(0x1_0000);
    /// `synchronized` declared on a native method.
    pub const DECLARED_SYNCHRONIZED: AccessFlags = AccessFlags(0x2_0000);

    /// The empty flag set.
    pub const fn empty() -> AccessFlags {
        AccessFlags(0)
    }

    /// Whether every flag in `other` is set in `self`.
    pub const fn contains(self, other: AccessFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Raw flag bits.
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Whether this is a static member.
    pub const fn is_static(self) -> bool {
        self.contains(AccessFlags::STATIC)
    }

    /// Whether this is a native method.
    pub const fn is_native(self) -> bool {
        self.contains(AccessFlags::NATIVE)
    }

    /// Whether this is an abstract method or class.
    pub const fn is_abstract(self) -> bool {
        self.contains(AccessFlags::ABSTRACT)
    }
}

impl BitOr for AccessFlags {
    type Output = AccessFlags;
    fn bitor(self, rhs: AccessFlags) -> AccessFlags {
        AccessFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for AccessFlags {
    fn bitor_assign(&mut self, rhs: AccessFlags) {
        self.0 |= rhs.0;
    }
}

impl From<u32> for AccessFlags {
    fn from(bits: u32) -> AccessFlags {
        AccessFlags(bits)
    }
}

impl fmt::Display for AccessFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: &[(u32, &str)] = &[
            (0x1, "public"),
            (0x2, "private"),
            (0x4, "protected"),
            (0x8, "static"),
            (0x10, "final"),
            (0x20, "synchronized"),
            (0x100, "native"),
            (0x200, "interface"),
            (0x400, "abstract"),
            (0x1000, "synthetic"),
            (0x1_0000, "constructor"),
        ];
        let mut first = true;
        for &(bit, name) in NAMES {
            if self.0 & bit != 0 {
                if !first {
                    write!(f, " ")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "(none)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn or_and_contains() {
        let f = AccessFlags::PUBLIC | AccessFlags::STATIC | AccessFlags::FINAL;
        assert!(f.contains(AccessFlags::STATIC));
        assert!(f.contains(AccessFlags::PUBLIC | AccessFlags::FINAL));
        assert!(!f.contains(AccessFlags::NATIVE));
        assert!(f.is_static());
    }

    #[test]
    fn display_lists_flags() {
        let f = AccessFlags::PUBLIC | AccessFlags::NATIVE;
        assert_eq!(f.to_string(), "public native");
        assert_eq!(AccessFlags::empty().to_string(), "(none)");
    }
}
