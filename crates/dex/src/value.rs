//! `encoded_value` — the tagged constant representation used for static
//! field initialisers (`encoded_array_item`) in a DEX file.

use crate::error::{DexError, Result};
use crate::{FieldIdx, MethodIdx, StringIdx, TypeIdx};

/// A constant value as stored in an `encoded_value` structure.
///
/// Only the variants needed for static-value arrays are modelled
/// (annotation payloads are out of scope for this reproduction).
///
/// # Example
///
/// ```
/// use dexlego_dex::EncodedValue;
/// let mut buf = Vec::new();
/// EncodedValue::Int(-1).write(&mut buf);
/// let mut pos = 0;
/// assert_eq!(EncodedValue::read(&buf, &mut pos).unwrap(), EncodedValue::Int(-1));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum EncodedValue {
    /// Signed 8-bit constant.
    Byte(i8),
    /// Signed 16-bit constant.
    Short(i16),
    /// UTF-16 code unit constant.
    Char(u16),
    /// Signed 32-bit constant.
    Int(i32),
    /// Signed 64-bit constant.
    Long(i64),
    /// 32-bit float constant.
    Float(f32),
    /// 64-bit float constant.
    Double(f64),
    /// Index into the string pool.
    String(StringIdx),
    /// Index into the type pool.
    Type(TypeIdx),
    /// Index into the field pool.
    Field(FieldIdx),
    /// Index into the method pool.
    Method(MethodIdx),
    /// Index into the field pool, of an enum constant.
    Enum(FieldIdx),
    /// Nested array of values.
    Array(Vec<EncodedValue>),
    /// `null` reference.
    Null,
    /// Boolean constant (encoded in the `value_arg` bits).
    Boolean(bool),
}

const VALUE_BYTE: u8 = 0x00;
const VALUE_SHORT: u8 = 0x02;
const VALUE_CHAR: u8 = 0x03;
const VALUE_INT: u8 = 0x04;
const VALUE_LONG: u8 = 0x06;
const VALUE_FLOAT: u8 = 0x10;
const VALUE_DOUBLE: u8 = 0x11;
const VALUE_STRING: u8 = 0x17;
const VALUE_TYPE: u8 = 0x18;
const VALUE_FIELD: u8 = 0x19;
const VALUE_METHOD: u8 = 0x1a;
const VALUE_ENUM: u8 = 0x1b;
const VALUE_ARRAY: u8 = 0x1c;
const VALUE_NULL: u8 = 0x1e;
const VALUE_BOOLEAN: u8 = 0x1f;

/// Writes a signed integer using the minimal number of little-endian bytes,
/// returning the byte count minus one (the `value_arg`).
fn write_signed(out: &mut Vec<u8>, v: i64) -> u8 {
    let mut n = 1;
    while n < 8 {
        // Does the value survive truncation to n bytes with sign extension?
        let shifted = (v << (64 - 8 * n)) >> (64 - 8 * n);
        if shifted == v {
            break;
        }
        n += 1;
    }
    out.extend_from_slice(&v.to_le_bytes()[..n]);
    (n - 1) as u8
}

/// Writes an unsigned integer (zero-extended) using the minimal number of
/// little-endian bytes; returns `value_arg`.
fn write_unsigned(out: &mut Vec<u8>, v: u64) -> u8 {
    let mut n = 1;
    while n < 8 && (v >> (8 * n)) != 0 {
        n += 1;
    }
    out.extend_from_slice(&v.to_le_bytes()[..n]);
    (n - 1) as u8
}

/// Writes a float/double using the minimal number of bytes, dropping
/// zero-valued low-order bytes (right-zero-extended per the spec); returns
/// `value_arg`.
fn write_float_bits(out: &mut Vec<u8>, bits: u64, width: usize) -> u8 {
    let bytes = bits.to_le_bytes();
    let mut start = 0;
    while start < width - 1 && bytes[start] == 0 {
        start += 1;
    }
    out.extend_from_slice(&bytes[start..width]);
    (width - start - 1) as u8
}

fn read_bytes<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8]> {
    let end = *pos + n;
    let slice = buf.get(*pos..end).ok_or(DexError::Truncated {
        offset: *pos,
        what: "encoded_value payload",
    })?;
    *pos = end;
    Ok(slice)
}

fn read_signed(buf: &[u8], pos: &mut usize, n: usize) -> Result<i64> {
    let bytes = read_bytes(buf, pos, n)?;
    let mut v: u64 = 0;
    for (i, &b) in bytes.iter().enumerate() {
        v |= u64::from(b) << (8 * i);
    }
    let shift = 64 - 8 * n;
    Ok(((v << shift) as i64) >> shift)
}

fn read_unsigned(buf: &[u8], pos: &mut usize, n: usize) -> Result<u64> {
    let bytes = read_bytes(buf, pos, n)?;
    let mut v: u64 = 0;
    for (i, &b) in bytes.iter().enumerate() {
        v |= u64::from(b) << (8 * i);
    }
    Ok(v)
}

fn read_float_bits(buf: &[u8], pos: &mut usize, n: usize, width: usize) -> Result<u64> {
    let bytes = read_bytes(buf, pos, n)?;
    let mut v: u64 = 0;
    for (i, &b) in bytes.iter().enumerate() {
        v |= u64::from(b) << (8 * (width - n + i));
    }
    Ok(v)
}

impl EncodedValue {
    /// Serialises this value in `encoded_value` format, appending to `out`.
    pub fn write(&self, out: &mut Vec<u8>) {
        let header_pos = out.len();
        out.push(0); // placeholder for (value_arg << 5) | value_type
        let (ty, arg) = match self {
            EncodedValue::Byte(v) => {
                out.push(*v as u8);
                (VALUE_BYTE, 0)
            }
            EncodedValue::Short(v) => (VALUE_SHORT, write_signed(out, i64::from(*v))),
            EncodedValue::Char(v) => (VALUE_CHAR, write_unsigned(out, u64::from(*v))),
            EncodedValue::Int(v) => (VALUE_INT, write_signed(out, i64::from(*v))),
            EncodedValue::Long(v) => (VALUE_LONG, write_signed(out, *v)),
            EncodedValue::Float(v) => (
                VALUE_FLOAT,
                write_float_bits(out, u64::from(v.to_bits()), 4),
            ),
            EncodedValue::Double(v) => (VALUE_DOUBLE, write_float_bits(out, v.to_bits(), 8)),
            EncodedValue::String(v) => (VALUE_STRING, write_unsigned(out, u64::from(*v))),
            EncodedValue::Type(v) => (VALUE_TYPE, write_unsigned(out, u64::from(*v))),
            EncodedValue::Field(v) => (VALUE_FIELD, write_unsigned(out, u64::from(*v))),
            EncodedValue::Method(v) => (VALUE_METHOD, write_unsigned(out, u64::from(*v))),
            EncodedValue::Enum(v) => (VALUE_ENUM, write_unsigned(out, u64::from(*v))),
            EncodedValue::Array(items) => {
                crate::leb128::write_uleb128(out, items.len() as u32);
                for item in items {
                    item.write(out);
                }
                (VALUE_ARRAY, 0)
            }
            EncodedValue::Null => (VALUE_NULL, 0),
            EncodedValue::Boolean(b) => (VALUE_BOOLEAN, u8::from(*b)),
        };
        out[header_pos] = (arg << 5) | ty;
    }

    /// Parses one `encoded_value` from `buf` at `*pos`, advancing `*pos`.
    ///
    /// # Errors
    ///
    /// Returns [`DexError::Truncated`] or [`DexError::Invalid`] on malformed
    /// input.
    pub fn read(buf: &[u8], pos: &mut usize) -> Result<EncodedValue> {
        let header = *buf.get(*pos).ok_or(DexError::Truncated {
            offset: *pos,
            what: "encoded_value header",
        })?;
        *pos += 1;
        let ty = header & 0x1f;
        let arg = usize::from(header >> 5);
        Ok(match ty {
            VALUE_BYTE => EncodedValue::Byte(read_signed(buf, pos, 1)? as i8),
            VALUE_SHORT => EncodedValue::Short(read_signed(buf, pos, arg + 1)? as i16),
            VALUE_CHAR => EncodedValue::Char(read_unsigned(buf, pos, arg + 1)? as u16),
            VALUE_INT => EncodedValue::Int(read_signed(buf, pos, arg + 1)? as i32),
            VALUE_LONG => EncodedValue::Long(read_signed(buf, pos, arg + 1)?),
            VALUE_FLOAT => {
                let bits = read_float_bits(buf, pos, arg + 1, 4)?;
                EncodedValue::Float(f32::from_bits(bits as u32))
            }
            VALUE_DOUBLE => {
                EncodedValue::Double(f64::from_bits(read_float_bits(buf, pos, arg + 1, 8)?))
            }
            VALUE_STRING => EncodedValue::String(read_unsigned(buf, pos, arg + 1)? as u32),
            VALUE_TYPE => EncodedValue::Type(read_unsigned(buf, pos, arg + 1)? as u32),
            VALUE_FIELD => EncodedValue::Field(read_unsigned(buf, pos, arg + 1)? as u32),
            VALUE_METHOD => EncodedValue::Method(read_unsigned(buf, pos, arg + 1)? as u32),
            VALUE_ENUM => EncodedValue::Enum(read_unsigned(buf, pos, arg + 1)? as u32),
            VALUE_ARRAY => {
                let n = crate::leb128::read_uleb128(buf, pos)?;
                let mut items = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    items.push(EncodedValue::read(buf, pos)?);
                }
                EncodedValue::Array(items)
            }
            VALUE_NULL => EncodedValue::Null,
            VALUE_BOOLEAN => EncodedValue::Boolean(arg != 0),
            other => return Err(DexError::Invalid(format!("unknown value_type {other:#x}"))),
        })
    }

    /// The "zero" value for a field of the given type descriptor, used when a
    /// static-values array is shorter than the static field list.
    pub fn default_for_type(descriptor: &str) -> EncodedValue {
        match descriptor.as_bytes().first() {
            Some(b'Z') => EncodedValue::Boolean(false),
            Some(b'B') => EncodedValue::Byte(0),
            Some(b'S') => EncodedValue::Short(0),
            Some(b'C') => EncodedValue::Char(0),
            Some(b'I') => EncodedValue::Int(0),
            Some(b'J') => EncodedValue::Long(0),
            Some(b'F') => EncodedValue::Float(0.0),
            Some(b'D') => EncodedValue::Double(0.0),
            _ => EncodedValue::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: EncodedValue) {
        let mut buf = Vec::new();
        v.write(&mut buf);
        let mut pos = 0;
        let got = EncodedValue::read(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len(), "all bytes consumed for {v:?}");
        assert_eq!(got, v);
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(EncodedValue::Byte(-5));
        roundtrip(EncodedValue::Short(-300));
        roundtrip(EncodedValue::Char(0xffff));
        roundtrip(EncodedValue::Int(i32::MIN));
        roundtrip(EncodedValue::Int(0));
        roundtrip(EncodedValue::Long(i64::MAX));
        roundtrip(EncodedValue::Long(-1));
        roundtrip(EncodedValue::Boolean(true));
        roundtrip(EncodedValue::Boolean(false));
        roundtrip(EncodedValue::Null);
    }

    #[test]
    fn float_roundtrips() {
        roundtrip(EncodedValue::Float(1.5));
        roundtrip(EncodedValue::Float(0.0));
        roundtrip(EncodedValue::Float(f32::MIN_POSITIVE));
        roundtrip(EncodedValue::Double(std::f64::consts::PI));
        roundtrip(EncodedValue::Double(2.0));
    }

    #[test]
    fn index_roundtrips() {
        roundtrip(EncodedValue::String(0));
        roundtrip(EncodedValue::String(70000));
        roundtrip(EncodedValue::Type(255));
        roundtrip(EncodedValue::Field(256));
        roundtrip(EncodedValue::Method(0xff_ffff));
        roundtrip(EncodedValue::Enum(3));
    }

    #[test]
    fn nested_array_roundtrips() {
        roundtrip(EncodedValue::Array(vec![
            EncodedValue::Int(1),
            EncodedValue::Array(vec![EncodedValue::Boolean(true)]),
            EncodedValue::String(7),
        ]));
    }

    #[test]
    fn int_encoding_is_minimal() {
        let mut buf = Vec::new();
        EncodedValue::Int(1).write(&mut buf);
        assert_eq!(buf.len(), 2); // header + 1 byte
        buf.clear();
        EncodedValue::Int(-1).write(&mut buf);
        assert_eq!(buf.len(), 2);
        buf.clear();
        EncodedValue::Int(0x1234).write(&mut buf);
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn defaults_match_descriptor() {
        assert_eq!(EncodedValue::default_for_type("I"), EncodedValue::Int(0));
        assert_eq!(
            EncodedValue::default_for_type("Z"),
            EncodedValue::Boolean(false)
        );
        assert_eq!(
            EncodedValue::default_for_type("Ljava/lang/String;"),
            EncodedValue::Null
        );
        assert_eq!(EncodedValue::default_for_type("[I"), EncodedValue::Null);
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut pos = 0;
        assert!(EncodedValue::read(&[0x15], &mut pos).is_err());
    }
}
