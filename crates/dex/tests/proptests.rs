//! Property-based tests for the DEX container codecs.

use dexlego_dex::file::{ClassDef, EncodedField, EncodedMethod};
use dexlego_dex::value::EncodedValue;
use dexlego_dex::{leb128, mutf8, reader, writer, AccessFlags, CodeItem, DexFile};
use proptest::prelude::*;

proptest! {
    #[test]
    fn uleb128_roundtrips(v in any::<u32>()) {
        let mut buf = Vec::new();
        leb128::write_uleb128(&mut buf, v);
        prop_assert!(buf.len() <= leb128::MAX_LEN);
        prop_assert_eq!(buf.len(), leb128::uleb128_len(v));
        let mut pos = 0;
        prop_assert_eq!(leb128::read_uleb128(&buf, &mut pos).unwrap(), v);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn sleb128_roundtrips(v in any::<i32>()) {
        let mut buf = Vec::new();
        leb128::write_sleb128(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(leb128::read_sleb128(&buf, &mut pos).unwrap(), v);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn uleb128p1_roundtrips(v in -1i64..=u32::MAX as i64) {
        let mut buf = Vec::new();
        leb128::write_uleb128p1(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(leb128::read_uleb128p1(&buf, &mut pos).unwrap(), v);
    }

    #[test]
    fn mutf8_roundtrips(s in "\\PC*") {
        let enc = mutf8::encode(&s);
        prop_assert_eq!(mutf8::decode(&enc).unwrap(), s.clone());
        // The encoding never contains a raw NUL (string data is
        // NUL-terminated on disk).
        prop_assert!(!enc.contains(&0));
    }

    #[test]
    fn mutf8_arbitrary_unicode_roundtrips(s in proptest::collection::vec(any::<char>(), 0..64)) {
        let s: String = s.into_iter().collect();
        let enc = mutf8::encode(&s);
        prop_assert_eq!(mutf8::decode(&enc).unwrap(), s);
    }

    #[test]
    fn encoded_value_int_roundtrips(v in any::<i32>()) {
        let mut buf = Vec::new();
        EncodedValue::Int(v).write(&mut buf);
        let mut pos = 0;
        prop_assert_eq!(EncodedValue::read(&buf, &mut pos).unwrap(), EncodedValue::Int(v));
    }

    #[test]
    fn encoded_value_long_roundtrips(v in any::<i64>()) {
        let mut buf = Vec::new();
        EncodedValue::Long(v).write(&mut buf);
        let mut pos = 0;
        prop_assert_eq!(EncodedValue::read(&buf, &mut pos).unwrap(), EncodedValue::Long(v));
    }

    #[test]
    fn encoded_value_double_roundtrips(v in any::<f64>()) {
        let mut buf = Vec::new();
        EncodedValue::Double(v).write(&mut buf);
        let mut pos = 0;
        match EncodedValue::read(&buf, &mut pos).unwrap() {
            EncodedValue::Double(back) => {
                prop_assert_eq!(back.to_bits(), v.to_bits());
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }
}

/// Strategy for simple class/member names.
fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-zA-Z0-9_]{0,10}"
}

fn type_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("I".to_owned()),
        Just("J".to_owned()),
        Just("Z".to_owned()),
        Just("Ljava/lang/String;".to_owned()),
        name_strategy().prop_map(|n| format!("Lgen/{n};")),
        name_strategy().prop_map(|n| format!("[Lgen/{n};")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random models survive write→read→write as a fixpoint.
    #[test]
    fn dex_write_read_fixpoint(
        strings in proptest::collection::vec("\\PC{0,12}", 0..8),
        classes in proptest::collection::vec((name_strategy(), type_strategy(), name_strategy()), 0..5),
        units in proptest::collection::vec(any::<u16>(), 0..6),
    ) {
        let mut dex = DexFile::new();
        for s in &strings {
            dex.intern_string(s);
        }
        for (i, (cname, ftype, mname)) in classes.iter().enumerate() {
            let desc = format!("Lgen/{cname}{i};");
            let t = dex.intern_type(&desc);
            let f = dex.intern_field(&desc, ftype, "field");
            let m = dex.intern_method(&desc, mname, "V", &[]);
            let mut def = ClassDef::new(t);
            let data = def.class_data.as_mut().unwrap();
            data.static_fields.push(EncodedField {
                field_idx: f,
                access: AccessFlags::STATIC,
            });
            // Raw units need not decode — the container carries them
            // opaquely, like a packer's encrypted body.
            data.direct_methods.push(EncodedMethod {
                method_idx: m,
                access: AccessFlags::STATIC,
                code: Some(CodeItem::new(4, 0, 0, units.clone())),
            });
            dex.add_class(def);
        }

        let bytes1 = writer::write_dex(&dex).unwrap();
        let back = reader::read_dex(&bytes1).unwrap();
        prop_assert_eq!(&back, &dex);
        let bytes2 = writer::write_dex(&back).unwrap();
        prop_assert_eq!(bytes1, bytes2);
    }

    /// Flipping any byte of the payload is detected by the checksum.
    #[test]
    fn corruption_always_detected(flip in 12usize..200, bit in 0u8..8) {
        let mut dex = DexFile::new();
        dex.intern_method("Lgen/A;", "m", "V", &[]);
        let mut bytes = writer::write_dex(&dex).unwrap();
        let at = flip % bytes.len();
        if at >= 12 {
            bytes[at] ^= 1 << bit;
            prop_assert!(reader::read_dex(&bytes).is_err());
        }
    }
}
