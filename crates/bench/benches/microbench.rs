//! Criterion micro-benchmarks backing Figure 6 and Table VIII: interpreter
//! throughput with and without JIT collection, reassembly cost, and DEX
//! serialisation cost.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dexlego_core::pipeline::reveal;
use dexlego_core::JitCollector;
use dexlego_dalvik::builder::ProgramBuilder;
use dexlego_dalvik::Opcode;
use dexlego_dex::{reader, writer, DexFile};
use dexlego_droidbench::appgen::{generate, AppSpec};
use dexlego_runtime::observer::NullObserver;
use dexlego_runtime::{Runtime, Slot};

/// Builds the arithmetic-loop workload used by the interpreter benches.
fn loop_app() -> DexFile {
    let mut pb = ProgramBuilder::new();
    pb.class("Lbench/Loop;", |c| {
        c.static_method("spin", &["I"], "I", 3, |m| {
            let n = m.param_reg(0);
            let (top, done) = (m.asm.new_label(), m.asm.new_label());
            m.asm.const4(0, 0);
            m.asm.const4(1, 0);
            m.asm.bind(top);
            m.asm.if_cmp(Opcode::IfGe, 1, n, done);
            m.asm.binop(Opcode::AddInt, 0, 0, 1);
            m.asm.binop_lit8(Opcode::XorIntLit8, 0, 0, 0x33);
            m.asm.binop_lit8(Opcode::AddIntLit8, 1, 1, 1);
            m.asm.goto(top);
            m.asm.bind(done);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    pb.build().expect("assembles")
}

fn bench_interpreter(c: &mut Criterion) {
    let dex = loop_app();
    let mut group = c.benchmark_group("interpreter");
    group.bench_function("plain_10k_insns", |b| {
        let mut rt = Runtime::new();
        rt.load_dex(&dex, "app").unwrap();
        let mut obs = NullObserver;
        b.iter(|| {
            rt.call_static(
                &mut obs,
                "Lbench/Loop;",
                "spin",
                "(I)I",
                &[Slot::from_int(2_500)],
            )
            .unwrap()
        });
    });
    group.bench_function("collected_10k_insns", |b| {
        let mut rt = Runtime::new();
        rt.load_dex(&dex, "app").unwrap();
        let mut collector = JitCollector::new();
        b.iter(|| {
            rt.call_static(
                &mut collector,
                "Lbench/Loop;",
                "spin",
                "(I)I",
                &[Slot::from_int(2_500)],
            )
            .unwrap()
        });
    });
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let app = generate(&AppSpec::plain_profile("bench/pipeline", 2_500));
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);
    group.bench_function("reveal_2500_insn_app", |b| {
        b.iter_batched(
            Runtime::new,
            |mut rt| {
                let dex = app.dex.clone();
                let entry = app.entry.clone();
                reveal(&mut rt, move |rt, obs| {
                    if rt.load_dex_observed(&dex, "app", obs).is_err() {
                        return;
                    }
                    let Ok(activity) = rt.new_instance(obs, &entry) else {
                        return;
                    };
                    let Some(class) = rt.find_class(&entry) else {
                        return;
                    };
                    if let Some(m) = rt.resolve_method(
                        class,
                        &dexlego_runtime::class::SigKey::new("onCreate", "(Landroid/os/Bundle;)V"),
                    ) {
                        let _ = rt.call_method(obs, m, &[Slot::of(activity), Slot::of(0)]);
                    }
                })
                .unwrap()
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_verifier(c: &mut Criterion) {
    let app = generate(&AppSpec::plain_profile("bench/verify", 10_000));
    let options = dexlego_verifier::VerifyOptions::default();
    let mut group = c.benchmark_group("verifier");
    group.bench_function("verify_10k_insn_dex", |b| {
        b.iter(|| dexlego_verifier::verify_dex(&app.dex, &options));
    });
    group.bench_function("verify_loop_method", |b| {
        let dex = loop_app();
        b.iter(|| dexlego_verifier::verify_dex(&dex, &options));
    });
    group.finish();
}

fn bench_dex_io(c: &mut Criterion) {
    let app = generate(&AppSpec::plain_profile("bench/io", 10_000));
    let canonical = dexlego_dalvik::canon::canonicalize(&app.dex).unwrap();
    let bytes = writer::write_dex(&canonical).unwrap();
    let mut group = c.benchmark_group("dex_io");
    group.bench_function("write_10k_insn_dex", |b| {
        b.iter(|| writer::write_dex(&canonical).unwrap());
    });
    group.bench_function("read_10k_insn_dex", |b| {
        b.iter(|| reader::read_dex(&bytes).unwrap());
    });
    group.bench_function("canonicalize_10k_insn_dex", |b| {
        b.iter(|| dexlego_dalvik::canon::canonicalize(&app.dex).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_interpreter,
    bench_pipeline,
    bench_verifier,
    bench_dex_io
);
criterion_main!(benches);
