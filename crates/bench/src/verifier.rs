//! Verifier throughput benchmark: the reference sequential fixpoint
//! versus the fast path (RPO worklist, slab frames, digest-keyed verify
//! cache), reported as verified instructions per second.
//!
//! Three measurements per corpus:
//!
//! * **baseline** — `VerifyOptions::sequential_reference().without_cache()`,
//!   the pre-optimization engine;
//! * **fast cold** — the fast engine against an empty verify cache;
//! * **fast warm** — the fast engine re-verifying the same corpus, so
//!   every method is served from the cache.
//!
//! The headline number is the *corpus workload*: every DEX verified
//! `rounds` times, modelling the pipeline's verification gate plus the
//! taint tools each re-verifying the same revealed DEX. The fast path runs
//! the workload against one shared cache; the baseline re-verifies every
//! round from scratch, exactly as the pipeline did before the verify-once
//! change.
//!
//! Every fast-path run is differentially checked against the baseline:
//! diagnostics must match exactly, method by method, or the bench panics.

use std::time::Instant;

use dexlego_dex::DexFile;
use dexlego_harness::json;
use dexlego_verifier::{clear_verify_cache, verify_dex_typed, TypedDex, VerifyOptions};

/// Everything measured over one corpus.
#[derive(Debug, Clone)]
pub struct VerifierBenchResult {
    /// Apps in the corpus.
    pub apps: usize,
    /// Method bodies verified per corpus pass.
    pub methods: usize,
    /// Instructions verified per corpus pass.
    pub insns: u64,
    /// Rounds per corpus-workload measurement.
    pub rounds: u32,
    /// Best-of-N seconds for one baseline corpus pass.
    pub baseline_s: f64,
    /// Best-of-N seconds for one fast pass with the cache disabled
    /// (isolates the engine win from cache-key overhead).
    pub fast_nocache_s: f64,
    /// Best-of-N seconds for one fast pass against an empty cache.
    pub fast_cold_s: f64,
    /// Best-of-N seconds for one fast pass against a warm cache.
    pub fast_warm_s: f64,
    /// Seconds for `rounds` baseline passes (no cache, every round pays).
    pub corpus_baseline_s: f64,
    /// Seconds for `rounds` fast passes sharing one cache.
    pub corpus_fast_s: f64,
    /// Verify-cache hits across the fast corpus workload.
    pub cache_hits: u64,
    /// Verify-cache misses across the fast corpus workload.
    pub cache_misses: u64,
}

impl VerifierBenchResult {
    /// Fast-cold speedup over the baseline engine (algorithmic win only).
    pub fn cold_speedup(&self) -> f64 {
        self.baseline_s / self.fast_cold_s.max(1e-9)
    }

    /// Fast-engine speedup with the cache disabled entirely.
    pub fn engine_speedup(&self) -> f64 {
        self.baseline_s / self.fast_nocache_s.max(1e-9)
    }

    /// Fast-warm speedup over the baseline engine (pure cache hits).
    pub fn warm_speedup(&self) -> f64 {
        self.baseline_s / self.fast_warm_s.max(1e-9)
    }

    /// Corpus-workload speedup: `rounds` baseline passes versus `rounds`
    /// fast passes sharing the verify cache. The headline number.
    pub fn corpus_speedup(&self) -> f64 {
        self.corpus_baseline_s / self.corpus_fast_s.max(1e-9)
    }

    /// Baseline verified instructions per second (single pass).
    pub fn baseline_insns_per_s(&self) -> f64 {
        self.insns as f64 / self.baseline_s.max(1e-9)
    }

    /// Fast-path corpus-workload instructions per second.
    pub fn corpus_fast_insns_per_s(&self) -> f64 {
        (self.insns * u64::from(self.rounds)) as f64 / self.corpus_fast_s.max(1e-9)
    }
}

/// Builds the corpus: generated apps with realistic class/method shapes.
fn corpus(apps: usize, base_insns: usize) -> Vec<DexFile> {
    dexlego_droidbench::appgen::corpus_apps(apps, base_insns)
        .into_iter()
        .map(|(_, app)| app.dex)
        .collect()
}

/// One corpus pass under `options`; returns the typed results and seconds.
fn pass(dexes: &[DexFile], options: &VerifyOptions) -> (Vec<TypedDex>, f64) {
    let start = Instant::now();
    let typed: Vec<TypedDex> = dexes.iter().map(|d| verify_dex_typed(d, options)).collect();
    (typed, start.elapsed().as_secs_f64())
}

/// Panics unless both engines produced identical diagnostics per DEX.
fn assert_identical(baseline: &[TypedDex], fast: &[TypedDex]) {
    assert_eq!(baseline.len(), fast.len());
    for (i, (b, f)) in baseline.iter().zip(fast).enumerate() {
        assert_eq!(
            b.diagnostics, f.diagnostics,
            "app {i}: fast-path diagnostics diverge from the reference engine"
        );
    }
}

/// Runs the full measurement over `apps` generated apps of `base_insns`
/// baseline size: single-pass baseline/cold/warm (best of `repeats`), then
/// the `rounds`-pass corpus workload under both engines.
pub fn run(apps: usize, base_insns: usize, rounds: u32, repeats: u32) -> VerifierBenchResult {
    let dexes = corpus(apps, base_insns);
    let baseline_opts = VerifyOptions::default()
        .sequential_reference()
        .without_cache();
    let fast_opts = VerifyOptions::default();
    let fast_nocache_opts = VerifyOptions::default().without_cache();

    // Differential check before any timing: the two engines must agree.
    let (base_typed, _) = pass(&dexes, &baseline_opts);
    clear_verify_cache();
    let (fast_typed, _) = pass(&dexes, &fast_opts);
    assert_identical(&base_typed, &fast_typed);
    let methods: usize = base_typed.iter().map(|t| t.methods.len()).sum();
    let insns: u64 = base_typed.iter().map(|t| t.insn_count() as u64).sum();

    let mut baseline_s = f64::MAX;
    let mut fast_nocache_s = f64::MAX;
    let mut fast_cold_s = f64::MAX;
    let mut fast_warm_s = f64::MAX;
    for _ in 0..repeats.max(1) {
        let (_, s) = pass(&dexes, &baseline_opts);
        baseline_s = baseline_s.min(s);
        let (_, s) = pass(&dexes, &fast_nocache_opts);
        fast_nocache_s = fast_nocache_s.min(s);
        clear_verify_cache();
        let (_, s) = pass(&dexes, &fast_opts);
        fast_cold_s = fast_cold_s.min(s);
        // The cache is now warm from the cold pass.
        let (_, s) = pass(&dexes, &fast_opts);
        fast_warm_s = fast_warm_s.min(s);
    }

    // Corpus workload: every DEX verified `rounds` times, the shape of the
    // pipeline gate plus downstream taint tools before verify-once. Both
    // sides are best-of-`repeats`; each fast repeat starts cold so a
    // measurement is always one cold round plus `rounds - 1` warm ones.
    let mut corpus_baseline_s = f64::MAX;
    let mut corpus_fast_s = f64::MAX;
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        for _ in 0..rounds {
            pass(&dexes, &baseline_opts);
        }
        corpus_baseline_s = corpus_baseline_s.min(start.elapsed().as_secs_f64());

        clear_verify_cache();
        let mut hits = 0u64;
        let mut misses = 0u64;
        let start = Instant::now();
        for _ in 0..rounds {
            let (typed, _) = pass(&dexes, &fast_opts);
            for t in &typed {
                hits += t.cache_hits;
                misses += t.cache_misses;
            }
        }
        let s = start.elapsed().as_secs_f64();
        if s < corpus_fast_s {
            corpus_fast_s = s;
            cache_hits = hits;
            cache_misses = misses;
        }
    }

    VerifierBenchResult {
        apps: dexes.len(),
        methods,
        insns,
        rounds,
        baseline_s,
        fast_nocache_s,
        fast_cold_s,
        fast_warm_s,
        corpus_baseline_s,
        corpus_fast_s,
        cache_hits,
        cache_misses,
    }
}

/// Baseline-only measurement: the reference sequential engine, single
/// pass and corpus workload, with no fast path involved. Used to pin the
/// pre-optimization numbers independently of the comparison run.
pub fn run_baseline(apps: usize, base_insns: usize, rounds: u32, repeats: u32) -> (f64, f64, u64) {
    let dexes = corpus(apps, base_insns);
    let baseline_opts = VerifyOptions::default()
        .sequential_reference()
        .without_cache();
    let (typed, _) = pass(&dexes, &baseline_opts);
    let insns: u64 = typed.iter().map(|t| t.insn_count() as u64).sum();
    let mut single_s = f64::MAX;
    for _ in 0..repeats.max(1) {
        let (_, s) = pass(&dexes, &baseline_opts);
        single_s = single_s.min(s);
    }
    let start = Instant::now();
    for _ in 0..rounds {
        pass(&dexes, &baseline_opts);
    }
    (single_s, start.elapsed().as_secs_f64(), insns)
}

/// Formats the results as one JSON object (BENCH_verifier.json).
pub fn format(r: &VerifierBenchResult) -> String {
    json::object(&[
        ("experiment", json::string("verifier")),
        ("apps", r.apps.to_string()),
        ("methods", r.methods.to_string()),
        ("insns", r.insns.to_string()),
        ("rounds", r.rounds.to_string()),
        ("baseline_us", format!("{:.0}", r.baseline_s * 1e6)),
        ("fast_nocache_us", format!("{:.0}", r.fast_nocache_s * 1e6)),
        ("fast_cold_us", format!("{:.0}", r.fast_cold_s * 1e6)),
        ("fast_warm_us", format!("{:.0}", r.fast_warm_s * 1e6)),
        (
            "corpus_baseline_us",
            format!("{:.0}", r.corpus_baseline_s * 1e6),
        ),
        ("corpus_fast_us", format!("{:.0}", r.corpus_fast_s * 1e6)),
        (
            "baseline_insns_per_s",
            format!("{:.0}", r.baseline_insns_per_s()),
        ),
        (
            "corpus_fast_insns_per_s",
            format!("{:.0}", r.corpus_fast_insns_per_s()),
        ),
        ("engine_speedup", format!("{:.2}", r.engine_speedup())),
        ("cold_speedup", format!("{:.2}", r.cold_speedup())),
        ("warm_speedup", format!("{:.2}", r.warm_speedup())),
        ("corpus_speedup", format!("{:.2}", r.corpus_speedup())),
        ("cache_hits", r.cache_hits.to_string()),
        ("cache_misses", r.cache_misses.to_string()),
    ])
}
