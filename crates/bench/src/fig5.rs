//! Figure 5: F-measures of the three static tools across the four
//! treatments (original / DexHunter / AppSpear / DexLego).

use crate::table2::Table2Results;

/// One bar group of Figure 5.
#[derive(Debug, Clone)]
pub struct FMeasures {
    /// Tool name.
    pub tool: &'static str,
    /// F-measure on original samples.
    pub original: f64,
    /// F-measure after DexHunter (== AppSpear here, as in the paper).
    pub dexhunter: f64,
    /// F-measure after AppSpear.
    pub appspear: f64,
    /// F-measure after DexLego.
    pub dexlego: f64,
}

/// Derives Figure 5 from the Table II/III results.
pub fn run(results: &Table2Results) -> Vec<FMeasures> {
    results
        .original
        .iter()
        .zip(&results.baseline_unpacked)
        .zip(&results.dexlego)
        .map(|((orig, base), dexlego)| FMeasures {
            tool: orig.tool,
            original: orig.confusion.f_measure(),
            dexhunter: base.confusion.f_measure(),
            appspear: base.confusion.f_measure(),
            dexlego: dexlego.confusion.f_measure(),
        })
        .collect()
}

/// Formats Figure 5 as a table of percentages.
pub fn format(measures: &[FMeasures]) -> String {
    let mut out = String::new();
    out.push_str("Figure 5 — F-measures (%)\n");
    out.push_str("tool        | original | DexHunter | AppSpear | DexLego\n");
    for m in measures {
        out.push_str(&format!(
            "{:<11} | {:>7.1}% | {:>8.1}% | {:>7.1}% | {:>6.1}%\n",
            m.tool,
            m.original * 100.0,
            m.dexhunter * 100.0,
            m.appspear * 100.0,
            m.dexlego * 100.0,
        ));
    }
    out
}
