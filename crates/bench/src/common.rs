//! Shared experiment plumbing: running DexLego over benchmark samples.

use dexlego_core::pipeline::{reveal, RevealOutcome};
use dexlego_dex::DexFile;
use dexlego_droidbench::{drive_sample, Sample};
use dexlego_runtime::Runtime;

/// Fuzzing seeds used for every sample execution (three sessions, as a
/// small Sapienz-style campaign).
pub const SEEDS: [u64; 3] = [0x5eed_0001, 0x5eed_0002, 0x5eed_0003];

/// Events fired per fuzzing session.
pub const EVENTS: usize = 4;

/// A sample together with its DexLego-revealed DEX.
pub struct RevealedSample {
    /// The revealed (reassembled) DEX.
    pub dex: DexFile,
    /// Dump-file size in bytes.
    pub dump_size: usize,
}

/// Runs the standard DexLego pipeline over one sample: install under
/// collection, drive three fuzzing sessions, reassemble.
///
/// # Panics
///
/// Panics if reassembly fails (a harness bug, not an experiment outcome).
pub fn reveal_sample(sample: &Sample) -> RevealedSample {
    let mut rt = Runtime::new();
    let outcome: RevealOutcome = reveal(&mut rt, |rt, obs| {
        if sample.install(rt, obs).is_err() {
            return;
        }
        for seed in SEEDS {
            drive_sample(rt, obs, sample, seed, EVENTS);
        }
    })
    .unwrap_or_else(|e| panic!("{}: reveal failed: {e}", sample.name));
    // Mechanical RQ1 check on every corpus reveal: the reassembled DEX
    // contains everything that was collected.
    assert!(
        outcome.validation.is_empty(),
        "{}: reveal validation failed: {:?}",
        sample.name,
        outcome.validation
    );
    RevealedSample {
        dex: outcome.dex,
        dump_size: outcome.dump_size,
    }
}

/// [`reveal_sample`] over a whole corpus, sharded across the machine's
/// cores by the batch harness. Order follows `samples`.
pub fn reveal_samples(samples: &[Sample]) -> Vec<RevealedSample> {
    dexlego_harness::parallel_map_expect(
        samples.iter().collect(),
        dexlego_harness::default_workers(),
        reveal_sample,
    )
}

/// Renders a markdown-ish table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}
