//! Fleet load harness: the same pipelined load shape as [`service`],
//! but driven through `dexlego-router` fronting N `dexlegod` backends.
//!
//! Four measured configurations answer the questions the router design
//! raises:
//!
//! 1. **cold** — first pass through the hedged fleet: every request is
//!    a miss, runs the pipeline on its primary, and replicates.
//! 2. **warm hedged / warm unhedged** — identical warm replays through
//!    two routers over the *same* backends, differing only in whether
//!    hedging is armed. The delta is what hedging buys (or costs) on
//!    the tail.
//! 3. **single** — the same total load through a router fronting one
//!    backend configured exactly like each shard. Both sides pay the
//!    router hop, so the comparison isolates sharding + hedging.
//! 4. **kill** — a warm replay during which one backend is shut down
//!    mid-pass. The fleet's contract is that this degrades to failover
//!    and cache misses, never client-visible errors.
//!
//! Each warm configuration runs several rounds and keeps the round with
//! the best p999 — single rounds finish in milliseconds, where one
//! scheduler hiccup *is* the tail.
//!
//! [`service`]: crate::service

use std::time::Duration;

use dexlego_harness::json::{self, Value};
use dexlego_router::{Router, RouterConfig};
use dexlego_service::{Client, Daemon, ServiceConfig};
use dexlego_store::TempDir;

use crate::service::{build_requests, pass_json, run_pass, LoadConfig, PassResult};

/// Fleet shape: the per-pass load plus the fleet dimensions.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Backends in the fleet.
    pub backends: usize,
    /// Hedge budget (ms) for the hedged router.
    pub hedge_ms: u64,
    /// Straggler injection: each backend stalls its event loop for
    /// `stall_ms` once per `stall_period_ms` window (0 disables). The
    /// same per-node profile applies to every configuration — fleet
    /// shards get phase-staggered schedules (offset `period / n`), the
    /// single baseline stalls on the same period — so the comparison
    /// measures how each topology *absorbs* stalls.
    pub stall_period_ms: u64,
    /// Injected stall duration, milliseconds.
    pub stall_ms: u64,
    /// Per-pass load shape; `workers` is per backend.
    pub load: LoadConfig,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            backends: 3,
            hedge_ms: 20,
            stall_period_ms: 280,
            stall_ms: 90,
            load: LoadConfig::default(),
        }
    }
}

/// Router counters after the fleet run (from the hedged router's
/// aggregated `stats` reply).
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetCounters {
    /// Extracts routed.
    pub routed: u64,
    /// Hedges fired.
    pub hedges: u64,
    /// Hedges that answered first.
    pub hedge_wins: u64,
    /// Failovers after a backend loss or soft reply.
    pub failovers: u64,
    /// Replication backfills scheduled on fresh fills.
    pub replica_fills: u64,
    /// Read-repair backfills after a non-primary served a hit.
    pub read_repairs: u64,
    /// Requests for which every candidate was lost.
    pub fleet_errors: u64,
}

/// Results of one full fleet run.
#[derive(Debug, Clone)]
pub struct FleetBench {
    /// The shape that produced these numbers.
    pub config: FleetConfig,
    /// Cold fill through the hedged fleet.
    pub cold: PassResult,
    /// Warm replay through the hedged router (best-p999 round).
    pub warm_hedged: PassResult,
    /// Warm replay through the unhedged router, same backends.
    pub warm_unhedged: PassResult,
    /// Warm replay through a router fronting one identically-configured
    /// backend.
    pub single_warm: PassResult,
    /// Warm replay during which one backend was shut down.
    pub kill: PassResult,
    /// Hedged-router counters at the end of the fleet phase.
    pub counters: FleetCounters,
}

fn start_fleet(
    n: usize,
    workers: usize,
    stall: (u64, u64),
) -> (Vec<TempDir>, Vec<Daemon>, Vec<String>) {
    let dirs: Vec<TempDir> = (0..n)
        .map(|i| TempDir::new(&format!("bench-fleet-{i}")).expect("temp store"))
        .collect();
    let daemons: Vec<Daemon> = dirs
        .iter()
        .enumerate()
        .map(|(i, dir)| {
            let mut service = ServiceConfig::new(dir.path());
            service.workers = workers;
            service.stall_period_ms = stall.0;
            service.stall_ms = stall.1;
            // De-phase the shards' stall windows: real fleets rarely
            // pause in lockstep, and a hedge is only an escape hatch if
            // some replica is healthy while another is stuck.
            service.stall_phase_ms = stall.0 * i as u64 / n as u64;
            Daemon::start(service).expect("backend starts")
        })
        .collect();
    let addrs = daemons.iter().map(|d| d.addr().to_string()).collect();
    (dirs, daemons, addrs)
}

fn front(addrs: Vec<String>, hedge_ms: u64, workers: usize) -> Router {
    let mut config = RouterConfig::new(addrs);
    config.hedge_ms = hedge_ms;
    // The router must not be the concurrency bottleneck: size its pool
    // to the offered load so the measurement sees the backends.
    config.workers = workers;
    Router::start(config).expect("router starts")
}

/// Effectively disables hedging without risking `Instant` overflow.
const NO_HEDGE_MS: u64 = 3_600_000;

/// Warm rounds per configuration; the best p999 survives.
const WARM_ROUNDS: usize = 3;

fn best_warm(
    addr: &str,
    requests: &[Vec<dexlego_service::ExtractRequest>],
    window: usize,
) -> PassResult {
    (0..WARM_ROUNDS)
        .map(|_| run_pass(addr, requests, window))
        .min_by_key(|pass| pass.latency.p999_us)
        .expect("at least one round")
}

fn shutdown_front(addr: &str, router: Router) {
    let mut control = Client::connect(addr).expect("router control");
    control.shutdown().expect("router shutdown");
    drop(control);
    router.wait();
}

fn read_counters(stats: &Value) -> FleetCounters {
    let at = |name: &str| {
        stats
            .get("router")
            .and_then(|r| r.get(name))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    FleetCounters {
        routed: at("routed"),
        hedges: at("hedges"),
        hedge_wins: at("hedge_wins"),
        failovers: at("failovers"),
        replica_fills: at("replica_fills"),
        read_repairs: at("read_repairs"),
        fleet_errors: at("fleet_errors"),
    }
}

/// Runs the full fleet shape.
///
/// # Panics
///
/// Daemon/router start or transport failures — this is an experiment
/// driver, not a library.
pub fn run_fleet(config: FleetConfig) -> FleetBench {
    assert!(config.backends >= 1, "a fleet needs at least one backend");
    let load = &config.load;
    assert!(load.conns > 0 && load.requests_per_conn > 0 && load.window > 0);
    let requests = build_requests(load);

    // --- the fleet: N backends, one hedged and one unhedged router ---
    let in_flight = load.conns * load.window;
    let stall = (config.stall_period_ms, config.stall_ms);
    let (_dirs, daemons, addrs) = start_fleet(config.backends, load.workers, stall);
    let hedged = front(addrs.clone(), config.hedge_ms, in_flight);
    let unhedged = front(addrs, NO_HEDGE_MS, in_flight);
    let hedged_addr = hedged.addr().to_string();
    let unhedged_addr = unhedged.addr().to_string();

    let cold = run_pass(&hedged_addr, &requests, load.window);
    // Let the replication backfills land before measuring warm reads —
    // the kill pass below leans on every result having two copies.
    std::thread::sleep(Duration::from_millis(300));

    let warm_hedged = best_warm(&hedged_addr, &requests, load.window);
    let warm_unhedged = best_warm(&unhedged_addr, &requests, load.window);

    // --- kill one backend mid-pass ---
    let mut daemons = daemons;
    let victim = daemons.remove(0);
    let kill = std::thread::scope(|scope| {
        let pass = scope.spawn(|| run_pass(&hedged_addr, &requests, load.window));
        // Aim for roughly a third of the way into the pass; if the pass
        // is already done the kill still precedes the assertions.
        let warm_ms = (warm_hedged.wall_s * 1000.0 / 3.0).clamp(1.0, 500.0);
        std::thread::sleep(Duration::from_millis(warm_ms as u64));
        victim.trigger_shutdown();
        victim.wait();
        pass.join().expect("kill pass thread")
    });

    let mut control = Client::connect(&hedged_addr).expect("router control");
    let counters = read_counters(&control.stats().expect("router stats"));
    drop(control);
    shutdown_front(&hedged_addr, hedged);
    shutdown_front(&unhedged_addr, unhedged);
    for daemon in daemons {
        daemon.trigger_shutdown();
        daemon.wait();
    }

    // --- single-backend baseline, also behind a router ---
    // One shard with the same per-node configuration: the comparison
    // answers what sharding + hedging buy at this offered load with
    // the per-backend deployment held fixed.
    let (_single_dir, single_daemons, single_addrs) = start_fleet(1, load.workers, stall);
    let single = front(single_addrs, NO_HEDGE_MS, in_flight);
    let single_addr = single.addr().to_string();
    let fill = run_pass(&single_addr, &requests, load.window);
    assert_eq!(fill.protocol_errors, 0, "single-backend fill errored");
    let single_warm = best_warm(&single_addr, &requests, load.window);
    shutdown_front(&single_addr, single);
    for daemon in single_daemons {
        daemon.trigger_shutdown();
        daemon.wait();
    }

    FleetBench {
        config,
        cold,
        warm_hedged,
        warm_unhedged,
        single_warm,
        kill,
        counters,
    }
}

/// Formats the result as one JSON object (the BENCH_router.json shape).
pub fn format(bench: &FleetBench) -> String {
    let counters = &bench.counters;
    json::object(&[
        ("experiment", json::string("router_fleet")),
        ("backends", bench.config.backends.to_string()),
        ("hedge_ms", bench.config.hedge_ms.to_string()),
        ("stall_period_ms", bench.config.stall_period_ms.to_string()),
        ("stall_ms", bench.config.stall_ms.to_string()),
        ("conns", bench.config.load.conns.to_string()),
        (
            "requests_per_conn",
            bench.config.load.requests_per_conn.to_string(),
        ),
        ("window", bench.config.load.window.to_string()),
        ("insns", bench.config.load.insns.to_string()),
        ("workers_per_backend", bench.config.load.workers.to_string()),
        ("cold", pass_json(&bench.cold)),
        ("warm_hedged", pass_json(&bench.warm_hedged)),
        ("warm_unhedged", pass_json(&bench.warm_unhedged)),
        ("single_warm", pass_json(&bench.single_warm)),
        ("kill_one_backend", pass_json(&bench.kill)),
        ("routed", counters.routed.to_string()),
        ("hedges", counters.hedges.to_string()),
        ("hedge_wins", counters.hedge_wins.to_string()),
        ("failovers", counters.failovers.to_string()),
        ("replica_fills", counters.replica_fills.to_string()),
        ("read_repairs", counters.read_repairs.to_string()),
        ("fleet_errors", counters.fleet_errors.to_string()),
    ])
}
