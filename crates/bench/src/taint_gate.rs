//! Taint-precision regression gate.
//!
//! Runs every tool profile over the original (unpacked) corpus samples and
//! records each misclassification — a false positive or a false negative —
//! as one `tool<TAB>kind<TAB>sample` line. The set is compared against the
//! checked-in baseline (`crates/bench/baselines/taint_precision.txt`):
//! any line not in the baseline is a regression and fails the gate, while
//! baseline lines no longer observed are improvements, reported so the
//! baseline can be tightened with `--write-baseline`. `verify.sh` runs the
//! gate on every pass, so a change that makes the taint engine flag a
//! benign sample (or stop flagging a leaky one) cannot land silently.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::PathBuf;

use dexlego_analysis::tools::all_tools;
use dexlego_droidbench::build_suite;

/// Location of the checked-in baseline, resolved relative to this crate so
/// the gate works from any working directory.
pub fn baseline_path() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/baselines/taint_precision.txt"
    ))
}

/// Every misclassification the current engine produces on the original
/// corpus, one `tool<TAB>fp|fn<TAB>sample` line per miss.
pub fn observed() -> BTreeSet<String> {
    let suite = build_suite();
    let mut misses = BTreeSet::new();
    for tool in all_tools() {
        for sample in &suite {
            let flagged = tool.run(&sample.dex).leaky();
            let kind = match (sample.leaky(), flagged) {
                (false, true) => "fp",
                (true, false) => "fn",
                _ => continue,
            };
            misses.insert(format!("{}\t{}\t{}", tool.name, kind, sample.name));
        }
    }
    misses
}

/// Parses the baseline file into the same line set.
///
/// # Errors
///
/// Propagates the read failure (a missing baseline should fail the gate
/// loudly, not pass it vacuously).
pub fn load_baseline() -> io::Result<BTreeSet<String>> {
    let text = fs::read_to_string(baseline_path())?;
    Ok(text
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_owned)
        .collect())
}

/// Rewrites the baseline to match `observed`.
///
/// # Errors
///
/// Propagates the write failure.
pub fn write_baseline(observed: &BTreeSet<String>) -> io::Result<()> {
    let mut text = String::from(
        "# Taint-precision baseline: every tool misclassification on the\n\
         # original corpus, as tool<TAB>fp|fn<TAB>sample. Regenerate with\n\
         # `cargo run -p dexlego-bench --bin taint_gate -- --write-baseline`.\n",
    );
    for line in observed {
        text.push_str(line);
        text.push('\n');
    }
    fs::write(baseline_path(), text)
}

/// Outcome of comparing the observed misses against the baseline.
#[derive(Debug)]
pub struct GateReport {
    /// Misses not in the baseline: regressions, gate fails.
    pub regressions: Vec<String>,
    /// Baseline misses no longer observed: improvements, baseline is stale.
    pub improvements: Vec<String>,
}

impl GateReport {
    /// Whether the gate passes (no new misclassification).
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares observed misses against the baseline.
pub fn check(observed: &BTreeSet<String>, baseline: &BTreeSet<String>) -> GateReport {
    GateReport {
        regressions: observed.difference(baseline).cloned().collect(),
        improvements: baseline.difference(observed).cloned().collect(),
    }
}

/// Renders the report for the console.
pub fn format(report: &GateReport) -> String {
    let mut out = String::new();
    if report.regressions.is_empty() {
        out.push_str("taint-precision gate: no new misclassifications\n");
    } else {
        out.push_str("taint-precision gate: REGRESSIONS (not in baseline):\n");
        for line in &report.regressions {
            out.push_str("  + ");
            out.push_str(line);
            out.push('\n');
        }
    }
    if !report.improvements.is_empty() {
        out.push_str("improvements (in baseline, no longer observed — rerun with --write-baseline to tighten):\n");
        for line in &report.improvements {
            out.push_str("  - ");
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(lines: &[&str]) -> BTreeSet<String> {
        lines.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn identical_sets_pass() {
        let s = set(&["FlowDroid\tfn\ta", "HornDroid\tfp\tb"]);
        let report = check(&s, &s);
        assert!(report.passed());
        assert!(report.improvements.is_empty());
    }

    #[test]
    fn new_miss_is_a_regression() {
        let baseline = set(&["FlowDroid\tfn\ta"]);
        let observed = set(&["FlowDroid\tfn\ta", "FlowDroid\tfp\tb"]);
        let report = check(&observed, &baseline);
        assert!(!report.passed());
        assert_eq!(report.regressions, vec!["FlowDroid\tfp\tb"]);
    }

    #[test]
    fn removed_miss_is_an_improvement_not_a_failure() {
        let baseline = set(&["FlowDroid\tfn\ta", "DroidSafe\tfp\tb"]);
        let observed = set(&["FlowDroid\tfn\ta"]);
        let report = check(&observed, &baseline);
        assert!(report.passed());
        assert_eq!(report.improvements, vec!["DroidSafe\tfp\tb"]);
    }

    #[test]
    fn baseline_parser_skips_comments_and_blanks() {
        let parsed: BTreeSet<String> = "# header\n\nFlowDroid\tfn\ta\n"
            .lines()
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_owned)
            .collect();
        assert_eq!(parsed, set(&["FlowDroid\tfn\ta"]));
    }
}
