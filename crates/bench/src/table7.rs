//! Table VII: code coverage of Sapienz-style fuzzing alone versus fuzzing
//! plus DexLego's force-execution module, averaged over the five F-Droid
//! apps at every granularity JaCoCo reports.

use dexlego_core::coverage::{measure, CoverageRecorder, CoverageReport, EventFuzzer};
use dexlego_core::force::iterative_force;
use dexlego_runtime::Runtime;

use crate::table6::{build_app, APPS};

/// The two rows of Table VII.
#[derive(Debug, Clone, Copy)]
pub struct Table7 {
    /// Coverage from fuzzing alone.
    pub sapienz: CoverageReport,
    /// Coverage from fuzzing plus force execution.
    pub with_force: CoverageReport,
}

fn average(reports: &[CoverageReport]) -> CoverageReport {
    let n = reports.len().max(1) as f64;
    CoverageReport {
        class: reports.iter().map(|r| r.class).sum::<f64>() / n,
        method: reports.iter().map(|r| r.method).sum::<f64>() / n,
        line: reports.iter().map(|r| r.line).sum::<f64>() / n,
        branch: reports.iter().map(|r| r.branch).sum::<f64>() / n,
        instruction: reports.iter().map(|r| r.instruction).sum::<f64>() / n,
    }
}

/// Runs Table VII.
pub fn run() -> Table7 {
    // Coverage per app is deterministic and runtime-private, so the five
    // apps shard across the harness pool; averaging happens afterwards.
    let per_app = dexlego_harness::parallel_map_expect(
        APPS.to_vec(),
        dexlego_harness::default_workers(),
        |(package, _, target)| run_app(package, target),
    );
    let (fuzz_reports, force_reports): (Vec<_>, Vec<_>) = per_app.into_iter().unzip();
    Table7 {
        sapienz: average(&fuzz_reports),
        with_force: average(&force_reports),
    }
}

/// Coverage (fuzzing alone, fuzzing + force execution) for one app.
fn run_app(package: &str, target: usize) -> (CoverageReport, CoverageReport) {
    let app = build_app(package, target);

    // Fuzzing alone.
    let fuzz_report = {
        let mut rt = Runtime::new();
        rt.load_dex(&app.dex, "app").expect("loads");
        let mut recorder = CoverageRecorder::new();
        let mut fuzzer = EventFuzzer::new(0xace0_ba5e, 8);
        for _ in 0..4 {
            fuzzer.run(&mut rt, &mut recorder, &app.entry);
        }
        measure(&rt, &recorder)
    };

    // Fuzzing + iterative force execution (Figure 4), with the same
    // fuzzing session as the "previous execution".
    let force_report = {
        let mut rt = Runtime::new();
        rt.load_dex(&app.dex, "app").expect("loads");
        let mut recorder = CoverageRecorder::new();
        let entry = app.entry.clone();
        let mut drive = |rt: &mut Runtime, obs: &mut dyn dexlego_runtime::RuntimeObserver| {
            let mut fuzzer = EventFuzzer::new(0xace0_ba5e, 8);
            for _ in 0..2 {
                fuzzer.run(rt, obs, &entry);
            }
        };
        let (_cov, _stats) = iterative_force(&mut rt, &mut drive, &mut recorder, 6);
        measure(&rt, &recorder)
    };
    (fuzz_report, force_report)
}

/// Formats Table VII.
pub fn format(t: &Table7) -> String {
    let mut out = String::new();
    out.push_str("Table VII — coverage (%) averaged over the F-Droid apps\n");
    out.push_str("                  | class | method | line | branch | instruction\n");
    out.push_str(&format!(
        "Sapienz           | {:>5.0} | {:>6.0} | {:>4.0} | {:>6.0} | {:>11.0}\n",
        t.sapienz.class, t.sapienz.method, t.sapienz.line, t.sapienz.branch, t.sapienz.instruction
    ));
    out.push_str(&format!(
        "Sapienz + DexLego | {:>5.0} | {:>6.0} | {:>4.0} | {:>6.0} | {:>11.0}\n",
        t.with_force.class,
        t.with_force.method,
        t.with_force.line,
        t.with_force.branch,
        t.with_force.instruction
    ));
    out
}
