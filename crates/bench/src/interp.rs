//! Interpreter fetch microbenchmark: decode-per-step versus the
//! predecoded code cache versus the quickened/fused fast path, reported
//! as instructions per second.
//!
//! Two workloads exercise the two fetch-sensitive paths: a tight
//! arithmetic loop (pure instruction fetch) and a switch-heavy loop
//! whose every iteration dispatches through a packed-switch payload
//! (payload-table fetch). Both run under [`NullObserver`], so the
//! passive-observer fast path applies and the numbers isolate the fetch
//! strategy itself.

use std::time::Instant;

use dexlego_dalvik::builder::ProgramBuilder;
use dexlego_dalvik::Opcode;
use dexlego_dex::DexFile;
use dexlego_harness::json;
use dexlego_runtime::observer::NullObserver;
use dexlego_runtime::runtime::{Env, FetchMode};
use dexlego_runtime::{Runtime, Slot};

/// One workload measured under both fetch modes.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Workload name (`hot_loop` or `switch_loop`).
    pub name: String,
    /// Instructions interpreted per timed call.
    pub insns_per_call: u64,
    /// Best-of-N instructions/sec with per-step decoding.
    pub decode_per_step: f64,
    /// Best-of-N instructions/sec through the predecoded cache.
    pub predecoded: f64,
    /// Best-of-N instructions/sec with quickening, superinstructions, and
    /// table dispatch on top of the predecoded cache.
    pub quickened: f64,
}

impl WorkloadResult {
    /// Predecoded speedup over per-step decoding.
    pub fn speedup(&self) -> f64 {
        self.predecoded / self.decode_per_step.max(1e-9)
    }

    /// Quickened speedup over per-step decoding.
    pub fn quick_speedup(&self) -> f64 {
        self.quickened / self.decode_per_step.max(1e-9)
    }
}

/// Builds the benchmark app: `hotLoop(n)` is a tight arithmetic loop,
/// `switchLoop(n)` dispatches through a packed switch every iteration.
fn benchmark_app() -> (DexFile, String) {
    let entry = "Linterp/Bench;".to_owned();
    let mut pb = ProgramBuilder::new();
    pb.class(&entry, |c| {
        // int hotLoop(int n): fetch-bound arithmetic loop.
        c.static_method("hotLoop", &["I"], "I", 3, |m| {
            let n = m.param_reg(0);
            let (top, done) = (m.asm.new_label(), m.asm.new_label());
            m.asm.const4(0, 0); // acc
            m.asm.const4(1, 0); // i
            m.asm.bind(top);
            m.asm.if_cmp(Opcode::IfGe, 1, n, done);
            m.asm.binop(Opcode::AddInt, 0, 0, 1);
            m.asm.binop_lit8(Opcode::XorIntLit8, 0, 0, 0x2f);
            m.asm.binop_lit8(Opcode::MulIntLit8, 0, 0, 3);
            m.asm.binop_lit8(Opcode::AddIntLit8, 1, 1, 1);
            m.asm.goto(top);
            m.asm.bind(done);
            m.asm.ret(Opcode::Return, 0);
        });
        // int switchLoop(int n): packed-switch dispatch per iteration.
        c.static_method("switchLoop", &["I"], "I", 4, |m| {
            let n = m.param_reg(0);
            let (top, done, inc) = (m.asm.new_label(), m.asm.new_label(), m.asm.new_label());
            let cases: Vec<u32> = (0..4).map(|_| m.asm.new_label()).collect();
            m.asm.const4(0, 0); // acc
            m.asm.const4(1, 0); // i
            m.asm.bind(top);
            m.asm.if_cmp(Opcode::IfGe, 1, n, done);
            m.asm.binop_lit8(Opcode::AndIntLit8, 2, 1, 3);
            m.asm.packed_switch(2, 0, cases.clone());
            m.asm.goto(inc); // unreachable default
            m.asm.bind(cases[0]);
            m.asm.binop_lit8(Opcode::AddIntLit8, 0, 0, 1);
            m.asm.goto(inc);
            m.asm.bind(cases[1]);
            m.asm.binop_lit8(Opcode::XorIntLit8, 0, 0, 0x2f);
            m.asm.goto(inc);
            m.asm.bind(cases[2]);
            m.asm.binop_lit8(Opcode::MulIntLit8, 0, 0, 3);
            m.asm.goto(inc);
            m.asm.bind(cases[3]);
            m.asm.binop_lit8(Opcode::AddIntLit8, 0, 0, -1);
            m.asm.bind(inc);
            m.asm.binop_lit8(Opcode::AddIntLit8, 1, 1, 1);
            m.asm.goto(top);
            m.asm.bind(done);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    (pb.build().expect("assembles"), entry)
}

/// Best-of-`repeats` instructions/sec for one method under one fetch
/// mode, plus the per-call instruction count.
fn measure(
    dex: &DexFile,
    entry: &str,
    method: &str,
    mode: FetchMode,
    n: i32,
    repeats: u32,
) -> (f64, u64) {
    let mut rt = Runtime::with_env(Env {
        fetch_mode: mode,
        ..Env::default()
    });
    rt.load_dex(dex, "app").expect("loads");
    let mut obs = NullObserver;
    let args = [Slot::from_int(n)];
    // Warm-up call: class init, the cache build (predecoded/quickened
    // modes), and call-site quickening, so timed calls hit rewritten cells.
    rt.call_static(&mut obs, entry, method, "(I)I", &args)
        .expect("runs");
    let mut best = 0.0f64;
    let mut per_call = 0u64;
    for _ in 0..repeats {
        let before = rt.stats.insns;
        let start = Instant::now();
        rt.call_static(&mut obs, entry, method, "(I)I", &args)
            .expect("runs");
        let elapsed = start.elapsed().as_secs_f64();
        per_call = rt.stats.insns - before;
        best = best.max(per_call as f64 / elapsed.max(1e-9));
    }
    (best, per_call)
}

/// Runs every workload whose name matches `filter` (all of them when
/// `None`) under all three fetch modes.
pub fn run_filtered(
    iterations: i32,
    repeats: u32,
    filter: Option<&crate::filter::Pattern>,
) -> Vec<WorkloadResult> {
    let (dex, entry) = benchmark_app();
    ["hot_loop", "switch_loop"]
        .iter()
        .filter(|&&name| filter.is_none_or(|f| f.is_match(name)))
        .map(|&name| {
            let method = if name == "hot_loop" {
                "hotLoop"
            } else {
                "switchLoop"
            };
            let (step, insns) = measure(
                &dex,
                &entry,
                method,
                FetchMode::DecodePerStep,
                iterations,
                repeats,
            );
            let (pre, _) = measure(
                &dex,
                &entry,
                method,
                FetchMode::Predecoded,
                iterations,
                repeats,
            );
            let (quick, _) = measure(
                &dex,
                &entry,
                method,
                FetchMode::Quickened,
                iterations,
                repeats,
            );
            WorkloadResult {
                name: name.to_owned(),
                insns_per_call: insns,
                decode_per_step: step,
                predecoded: pre,
                quickened: quick,
            }
        })
        .collect()
}

/// Runs both workloads under all three fetch modes.
pub fn run(iterations: i32, repeats: u32) -> Vec<WorkloadResult> {
    run_filtered(iterations, repeats, None)
}

/// Formats the results as one JSON object.
pub fn format(results: &[WorkloadResult]) -> String {
    let workloads: Vec<String> = results
        .iter()
        .map(|r| {
            json::object(&[
                ("name", json::string(&r.name)),
                ("insns_per_call", r.insns_per_call.to_string()),
                (
                    "decode_per_step_insns_per_s",
                    format!("{:.0}", r.decode_per_step),
                ),
                ("predecoded_insns_per_s", format!("{:.0}", r.predecoded)),
                ("quickened_insns_per_s", format!("{:.0}", r.quickened)),
                ("speedup", format!("{:.2}", r.speedup())),
                ("quick_speedup", format!("{:.2}", r.quick_speedup())),
            ])
        })
        .collect();
    json::object(&[
        ("experiment", json::string("interp")),
        ("workloads", json::array(&workloads)),
    ])
}
