//! Tables II and III: static-analysis accuracy on the DroidBench-style
//! corpus — original samples, DexLego-revealed samples, samples packed with
//! the 360 packer and processed by DexHunter/AppSpear, and packed samples
//! processed by DexLego.

use dexlego_analysis::metrics::Confusion;
use dexlego_analysis::tools::{all_tools, ToolProfile};
use dexlego_core::baseline::{dump, BaselineKind};
use dexlego_droidbench::{build_suite, Sample};
use dexlego_packer::{pack, PackerId};
use dexlego_runtime::Runtime;

use crate::common::{reveal_samples, EVENTS, SEEDS};

/// Per-tool confusion counts for one treatment of the corpus.
#[derive(Debug, Clone)]
pub struct ToolOutcome {
    /// Tool name.
    pub tool: &'static str,
    /// Confusion matrix over all samples.
    pub confusion: Confusion,
}

/// All four treatments of the corpus.
#[derive(Debug)]
pub struct Table2Results {
    /// Tools on the original samples.
    pub original: Vec<ToolOutcome>,
    /// Tools on DexLego-revealed samples.
    pub dexlego: Vec<ToolOutcome>,
    /// Tools on 360-packed samples unpacked by DexHunter/AppSpear (both
    /// produce the same dump here, as in the paper).
    pub baseline_unpacked: Vec<ToolOutcome>,
    /// Number of samples / leaky samples.
    pub totals: (usize, usize),
}

fn judge(tools: &[ToolProfile], samples: &[(bool, dexlego_dex::DexFile)]) -> Vec<ToolOutcome> {
    tools
        .iter()
        .map(|tool| {
            let mut confusion = Confusion::default();
            for (leaky, dex) in samples {
                confusion.record(*leaky, tool.run(dex).leaky());
            }
            ToolOutcome {
                tool: tool.name,
                confusion,
            }
        })
        .collect()
}

/// Packs a sample with the 360 packer, runs it, and dumps with a
/// method-level baseline. Samples a packer cannot transport (none in the
/// corpus) would fall back to the original.
fn baseline_unpack(sample: &Sample, kind: BaselineKind) -> dexlego_dex::DexFile {
    let packed = pack(&sample.dex, &sample.entry, PackerId::P360)
        .unwrap_or_else(|e| panic!("{}: packing failed: {e}", sample.name));
    let mut rt = Runtime::new();
    let mut obs = dexlego_runtime::observer::NullObserver;
    packed
        .install(&mut rt)
        .unwrap_or_else(|e| panic!("{}: install failed: {e}", sample.name));
    // Register the sample's tamper natives too (the packed app still
    // carries its self-modifying natives).
    install_tampers_only(sample, &mut rt);
    // Drive through the shell with the same fuzzing campaign.
    for seed in SEEDS {
        rt.input_state = seed | 1;
        let _ = packed.launch(&mut rt, &mut obs);
        for n in 0..EVENTS {
            if rt.callbacks.is_empty() {
                break;
            }
            let pick = (seed as usize + n) % rt.callbacks.len();
            let cb = rt.callbacks[pick].clone();
            rt.callback_depth += 1;
            let _ = rt.call_method(
                &mut obs,
                cb.method,
                &[
                    dexlego_runtime::Slot::of(cb.receiver),
                    dexlego_runtime::Slot::of(0),
                ],
            );
            rt.callback_depth -= 1;
        }
    }
    dump(&rt, kind).unwrap_or_else(|e| panic!("{}: dump failed: {e}", sample.name))
}

/// Runs the full Table II / Table III experiment.
pub fn run() -> Table2Results {
    let suite = build_suite();
    let tools = all_tools();
    let totals = (suite.len(), suite.iter().filter(|s| s.leaky()).count());

    let original: Vec<(bool, dexlego_dex::DexFile)> =
        suite.iter().map(|s| (s.leaky(), s.dex.clone())).collect();

    // Both corpus treatments are per-sample independent: shard them across
    // the harness pool (each reveal/unpack builds its own runtime).
    let revealed: Vec<(bool, dexlego_dex::DexFile)> = suite
        .iter()
        .map(Sample::leaky)
        .zip(reveal_samples(&suite).into_iter().map(|r| r.dex))
        .collect();

    let unpacked: Vec<(bool, dexlego_dex::DexFile)> = dexlego_harness::parallel_map_expect(
        suite.iter().collect(),
        dexlego_harness::default_workers(),
        |s: &Sample| (s.leaky(), baseline_unpack(s, BaselineKind::DexHunter)),
    );

    Table2Results {
        original: judge(&tools, &original),
        dexlego: judge(&tools, &revealed),
        baseline_unpacked: judge(&tools, &unpacked),
        totals,
    }
}

/// Formats the results in the shape of Tables II and III.
pub fn format(results: &Table2Results) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table II — {} samples, {} leaky\n",
        results.totals.0, results.totals.1
    ));
    out.push_str("tool        | original TP/FP | DexLego TP/FP\n");
    for (orig, dexlego) in results.original.iter().zip(&results.dexlego) {
        out.push_str(&format!(
            "{:<11} | {:>3} / {:<3}      | {:>3} / {:<3}\n",
            orig.tool,
            orig.confusion.tp,
            orig.confusion.fp,
            dexlego.confusion.tp,
            dexlego.confusion.fp,
        ));
    }
    out.push_str("\nTable III — packed with 360\n");
    out.push_str("tool        | DexHunter/AppSpear TP/FP | DexLego TP/FP\n");
    for (base, dexlego) in results.baseline_unpacked.iter().zip(&results.dexlego) {
        out.push_str(&format!(
            "{:<11} | {:>3} / {:<3}                | {:>3} / {:<3}\n",
            base.tool,
            base.confusion.tp,
            base.confusion.fp,
            dexlego.confusion.tp,
            dexlego.confusion.fp,
        ));
    }
    out
}

/// Registers a sample's tamper natives without loading its DEX (the code
/// arrives through the packer shell instead; natives are keyed by
/// signature, so early registration is harmless).
fn install_tampers_only(sample: &Sample, rt: &mut Runtime) {
    use dexlego_runtime::class::{MethodImpl, SigKey};
    for spec in &sample.tampers {
        let target = spec.target.clone();
        let patches = spec.patches.clone();
        rt.natives.register(
            &spec.native_class,
            &spec.native_name,
            "(I)V",
            move |rt, _, args| {
                let arg = args.last().copied().unwrap_or_default().as_int();
                let Some(class) = rt.find_class(&target.0) else {
                    return Ok(dexlego_runtime::RetVal::Void);
                };
                let Some(method) = rt.resolve_method(class, &SigKey::new(&target.1, &target.2))
                else {
                    return Ok(dexlego_runtime::RetVal::Void);
                };
                if let MethodImpl::Bytecode { insns, .. } = &mut rt.method_mut(method).body {
                    for patch in patches.iter().filter(|p| p.when_arg == arg) {
                        insns[patch.at..patch.at + patch.units.len()].copy_from_slice(&patch.units);
                    }
                }
                Ok(dexlego_runtime::RetVal::Void)
            },
        );
    }
}

/// Revealing a packed sample with DexLego gives the same verdicts as on the
/// original (Table III's DexLego column) — exposed for tests.
pub fn reveal_packed(sample: &Sample) -> dexlego_dex::DexFile {
    let packed = pack(&sample.dex, &sample.entry, PackerId::P360)
        .unwrap_or_else(|e| panic!("{}: packing failed: {e}", sample.name));
    let mut rt = Runtime::new();
    let outcome = dexlego_core::pipeline::reveal(&mut rt, |rt, obs| {
        if packed.install_observed(rt, obs).is_err() {
            return;
        }
        install_tampers_only(sample, rt);
        for seed in SEEDS {
            rt.input_state = seed | 1;
            let _ = packed.launch(rt, obs);
            for n in 0..EVENTS {
                if rt.callbacks.is_empty() {
                    break;
                }
                let pick = (seed as usize + n) % rt.callbacks.len();
                let cb = rt.callbacks[pick].clone();
                rt.callback_depth += 1;
                let _ = rt.call_method(
                    obs,
                    cb.method,
                    &[
                        dexlego_runtime::Slot::of(cb.receiver),
                        dexlego_runtime::Slot::of(0),
                    ],
                );
                rt.callback_depth -= 1;
            }
        }
    })
    .unwrap_or_else(|e| panic!("{}: reveal failed: {e}", sample.name));
    outcome.dex
}
