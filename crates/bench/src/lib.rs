#![forbid(unsafe_code)]

//! The experiment harness: one module per table/figure of the paper's
//! evaluation, each with a function that computes the result and a
//! formatter that prints it in the paper's shape.
//!
//! Binaries under `src/bin/` (`table1` … `table8`, `fig5`, `fig6`, `all`)
//! call these functions; `cargo run -p dexlego-bench --bin all` regenerates
//! every number for EXPERIMENTS.md. The extra `service` binary is a load
//! generator for a live `dexlegod` daemon — concurrent pipelined
//! connections, cold vs warm passes, and a per-request latency
//! distribution ([`service`] + [`stats`], emitting BENCH_service.json);
//! `service --router N` drives the same shape through a `dexlego-router`
//! fleet ([`router`], emitting BENCH_router.json).
//! `interp` compares decode-per-step against the predecoded code cache
//! in instructions/sec ([`interp`], emitting BENCH_interp.json),
//! `verifier` compares the reference sequential fixpoint against the fast
//! verification path and its digest-keyed cache ([`verifier`], emitting
//! BENCH_verifier.json), and `taint_gate` is the taint-precision
//! regression gate run by `verify.sh` ([`taint_gate`]).

pub mod common;
pub mod fig5;
pub mod fig6;
pub mod filter;
pub mod interp;
pub mod router;
pub mod service;
pub mod stats;
pub mod table1;
pub mod table2;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod table8;
pub mod taint_gate;
pub mod verifier;

pub use common::{reveal_sample, reveal_samples, RevealedSample};
