//! Figure 6: CF-Bench-style performance scores under the unmodified
//! runtime versus the runtime with DexLego's JIT collection attached.
//!
//! A *score* is work completed per unit time (higher is better), measured
//! for a Java-heavy workload (pure bytecode), a native-heavy workload
//! (most time inside native methods, which the collector does not trace),
//! and the CF-Bench-style overall blend.

use std::time::Instant;

use dexlego_core::JitCollector;
use dexlego_dalvik::builder::ProgramBuilder;
use dexlego_dalvik::{Insn, Opcode};
use dexlego_dex::DexFile;
use dexlego_runtime::observer::NullObserver;
use dexlego_runtime::{RetVal, Runtime, Slot};

/// Scores for one runtime configuration.
#[derive(Debug, Clone, Copy)]
pub struct Scores {
    /// Java (bytecode-interpretation) score.
    pub java: f64,
    /// Native score.
    pub native: f64,
    /// Overall score (CF-Bench weights the memory/overall mix; we use the
    /// geometric mean of the two components).
    pub overall: f64,
}

/// Figure 6 result: both configurations plus derived slowdowns.
#[derive(Debug, Clone, Copy)]
pub struct Fig6 {
    /// Unmodified ART scores.
    pub unmodified: Scores,
    /// DexLego-instrumented scores.
    pub dexlego: Scores,
}

impl Fig6 {
    /// (java, native, overall) slowdown factors.
    pub fn slowdown(&self) -> (f64, f64, f64) {
        (
            self.unmodified.java / self.dexlego.java,
            self.unmodified.native / self.dexlego.native,
            self.unmodified.overall / self.dexlego.overall,
        )
    }
}

/// Builds the benchmark app: `javaWork(n)` spins in bytecode, `nativeWork
/// (n)` spends its time inside a native method.
fn benchmark_app() -> (DexFile, String) {
    let entry = "Lcfbench/Main;".to_owned();
    let mut pb = ProgramBuilder::new();
    pb.class(&entry, |c| {
        // int javaWork(int n): tight arithmetic loop.
        c.static_method("javaWork", &["I"], "I", 3, |m| {
            let n = m.param_reg(0);
            let (top, done) = (m.asm.new_label(), m.asm.new_label());
            m.asm.const4(0, 0); // acc
            m.asm.const4(1, 0); // i
            m.asm.bind(top);
            m.asm.if_cmp(Opcode::IfGe, 1, n, done);
            m.asm.binop(Opcode::AddInt, 0, 0, 1);
            m.asm.binop_lit8(Opcode::XorIntLit8, 0, 0, 0x2f);
            m.asm.binop_lit8(Opcode::MulIntLit8, 0, 0, 3);
            m.asm.binop_lit8(Opcode::AddIntLit8, 1, 1, 1);
            m.asm.goto(top);
            m.asm.bind(done);
            m.asm.ret(Opcode::Return, 0);
        });
        // int nativeWork(int n): loop of calls into a heavy native.
        c.static_method("nativeWork", &["I"], "I", 3, |m| {
            let n = m.param_reg(0);
            let (top, done) = (m.asm.new_label(), m.asm.new_label());
            m.asm.const4(0, 0);
            m.asm.const4(1, 0);
            m.asm.bind(top);
            m.asm.if_cmp(Opcode::IfGe, 1, n, done);
            m.invoke(
                Opcode::InvokeStatic,
                "Lcfbench/NativeWork;",
                "spin",
                &["I"],
                "I",
                &[0],
            );
            let mut mr = Insn::of(Opcode::MoveResult);
            mr.a = 0;
            m.asm.push(mr);
            m.asm.binop_lit8(Opcode::AddIntLit8, 1, 1, 1);
            m.asm.goto(top);
            m.asm.bind(done);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    (pb.build().expect("assembles"), entry)
}

fn setup_runtime(dex: &DexFile) -> Runtime {
    let mut rt = Runtime::new();
    rt.load_dex(dex, "app").expect("loads");
    // The heavy native: a Rust-side spin that dwarfs its call overhead.
    rt.natives
        .register("Lcfbench/NativeWork;", "spin", "(I)I", |_, _, args| {
            let mut acc = args[0].as_int();
            for i in 0..2_000 {
                acc = acc.wrapping_mul(31).wrapping_add(i);
            }
            Ok(RetVal::Single(Slot::from_int(acc)))
        });
    rt
}

fn score<F>(mut run_once: F) -> f64
where
    F: FnMut(),
{
    // Work per millisecond over a fixed number of iterations.
    const ITERS: u32 = 12;
    let start = Instant::now();
    for _ in 0..ITERS {
        run_once();
    }
    let elapsed = start.elapsed().as_secs_f64();
    f64::from(ITERS) / (elapsed * 1000.0)
}

fn measure(collected: bool) -> Scores {
    let (dex, entry) = benchmark_app();
    let java = {
        let mut rt = setup_runtime(&dex);
        let mut collector = JitCollector::new();
        let mut null = NullObserver;
        score(|| {
            let obs: &mut dyn dexlego_runtime::RuntimeObserver =
                if collected { &mut collector } else { &mut null };
            rt.call_static(obs, &entry, "javaWork", "(I)I", &[Slot::from_int(20_000)])
                .expect("runs");
        })
    };
    let native = {
        let mut rt = setup_runtime(&dex);
        let mut collector = JitCollector::new();
        let mut null = NullObserver;
        score(|| {
            let obs: &mut dyn dexlego_runtime::RuntimeObserver =
                if collected { &mut collector } else { &mut null };
            rt.call_static(obs, &entry, "nativeWork", "(I)I", &[Slot::from_int(300)])
                .expect("runs");
        })
    };
    Scores {
        java,
        native,
        overall: (java * native).sqrt(),
    }
}

/// Runs Figure 6.
pub fn run() -> Fig6 {
    Fig6 {
        unmodified: measure(false),
        dexlego: measure(true),
    }
}

/// Formats Figure 6.
pub fn format(f: &Fig6) -> String {
    let (java, native, overall) = f.slowdown();
    format!(
        "Figure 6 — CF-Bench-style scores (higher is better)\n\
         config      | java    | native  | overall\n\
         unmodified  | {:>7.2} | {:>7.2} | {:>7.2}\n\
         DexLego     | {:>7.2} | {:>7.2} | {:>7.2}\n\
         slowdown    | {:>6.2}x | {:>6.2}x | {:>6.2}x\n",
        f.unmodified.java,
        f.unmodified.native,
        f.unmodified.overall,
        f.dexlego.java,
        f.dexlego.native,
        f.dexlego.overall,
        java,
        native,
        overall,
    )
}
