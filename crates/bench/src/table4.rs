//! Table IV: dynamic taint trackers (TaintDroid, TaintART) versus
//! DexLego + HornDroid on the five DroidBench samples the paper selects.

use dexlego_analysis::dynamic::{taintart, taintdroid, DynamicTool};
use dexlego_analysis::tools::horndroid;
use dexlego_core::pipeline::reveal;
use dexlego_dalvik::builder::{MethodBuilder, ProgramBuilder};
use dexlego_dalvik::{Insn, Opcode};
use dexlego_droidbench::drive_sample;
use dexlego_droidbench::samples::Sample;
use dexlego_droidbench::Category;
use dexlego_runtime::{Runtime, Slot};

fn mr_obj(m: &mut MethodBuilder<'_>, reg: u32) {
    let mut mr = Insn::of(Opcode::MoveResultObject);
    mr.a = reg;
    m.asm.push(mr);
}

fn mr_int(m: &mut MethodBuilder<'_>, reg: u32) {
    let mut mr = Insn::of(Opcode::MoveResult);
    mr.a = reg;
    m.asm.push(mr);
}

fn emit_source(m: &mut MethodBuilder<'_>, reg: u32) {
    m.invoke(
        Opcode::InvokeStatic,
        "Lcom/dexlego/Sensitive;",
        "getSensitiveData",
        &[],
        "Ljava/lang/String;",
        &[],
    );
    mr_obj(m, reg);
}

fn emit_sink(m: &mut MethodBuilder<'_>, reg: u32) {
    m.invoke(
        Opcode::InvokeStatic,
        "Lcom/dexlego/Net;",
        "send",
        &["Ljava/lang/String;"],
        "V",
        &[reg],
    );
}

fn listener_class(pb: &mut ProgramBuilder, name: &str) {
    pb.class(name, |c| {
        c.implements("Landroid/view/View$OnClickListener;");
        c.method("onClick", &["Landroid/view/View;"], "V", 2, |m| {
            emit_source(m, 0);
            emit_sink(m, 0);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
}

fn register_listener(m: &mut MethodBuilder<'_>, listener: &str) {
    m.new_instance(0, listener);
    m.new_instance(1, "Landroid/view/View;");
    m.invoke(
        Opcode::InvokeVirtual,
        "Landroid/view/View;",
        "setOnClickListener",
        &["Landroid/view/View$OnClickListener;"],
        "V",
        &[1, 0],
    );
}

/// Builds the five Table IV samples (as [`Sample`]s with a `Direct`
/// category placeholder — ground truth is the per-sample leak count below).
fn build_samples() -> Vec<(Sample, usize)> {
    let mut out = Vec::new();

    // Button1 — one leak via a callback.
    {
        let entry = "Lt4/button1/Main;".to_owned();
        let mut pb = ProgramBuilder::new();
        listener_class(&mut pb, "Lt4/button1/L;");
        pb.class(&entry, |c| {
            c.superclass("Landroid/app/Activity;");
            c.method("onCreate", &["Landroid/os/Bundle;"], "V", 2, |m| {
                register_listener(m, "Lt4/button1/L;");
                m.asm.ret(Opcode::ReturnVoid, 0);
            });
        });
        out.push((
            Sample {
                name: "Button1".into(),
                category: Category::Callback,
                dex: pb.build().expect("assembles"),
                entry,
                tampers: vec![],
            },
            1,
        ));
    }

    // Button3 — two leaks via two callbacks.
    {
        let entry = "Lt4/button3/Main;".to_owned();
        let mut pb = ProgramBuilder::new();
        listener_class(&mut pb, "Lt4/button3/L1;");
        listener_class(&mut pb, "Lt4/button3/L2;");
        pb.class(&entry, |c| {
            c.superclass("Landroid/app/Activity;");
            c.method("onCreate", &["Landroid/os/Bundle;"], "V", 2, |m| {
                register_listener(m, "Lt4/button3/L1;");
                register_listener(m, "Lt4/button3/L2;");
                m.asm.ret(Opcode::ReturnVoid, 0);
            });
        });
        out.push((
            Sample {
                name: "Button3".into(),
                category: Category::Callback,
                dex: pb.build().expect("assembles"),
                entry,
                tampers: vec![],
            },
            2,
        ));
    }

    // EmulatorDetection1 — leaks only off-emulator.
    {
        let entry = "Lt4/emu/Main;".to_owned();
        let mut pb = ProgramBuilder::new();
        pb.class(&entry, |c| {
            c.superclass("Landroid/app/Activity;");
            c.method("onCreate", &["Landroid/os/Bundle;"], "V", 3, |m| {
                m.invoke(
                    Opcode::InvokeStatic,
                    "Lcom/dexlego/Env;",
                    "isEmulator",
                    &[],
                    "Z",
                    &[],
                );
                mr_int(m, 0);
                let skip = m.asm.new_label();
                m.asm.if_z(Opcode::IfNez, 0, skip);
                emit_source(m, 1);
                emit_sink(m, 1);
                m.asm.bind(skip);
                m.asm.ret(Opcode::ReturnVoid, 0);
            });
        });
        out.push((
            Sample {
                name: "EmulatorDetection1".into(),
                category: Category::Direct,
                dex: pb.build().expect("assembles"),
                entry,
                tampers: vec![],
            },
            1,
        ));
    }

    // ImplicitFlow1 — two implicit leaks.
    {
        let entry = "Lt4/implicit/Main;".to_owned();
        let mut pb = ProgramBuilder::new();
        pb.class(&entry, |c| {
            c.superclass("Landroid/app/Activity;");
            c.method("onCreate", &["Landroid/os/Bundle;"], "V", 4, |m| {
                emit_source(m, 0);
                m.invoke(
                    Opcode::InvokeVirtual,
                    "Ljava/lang/String;",
                    "length",
                    &[],
                    "I",
                    &[0],
                );
                mr_int(m, 1);
                for _ in 0..2 {
                    let skip = m.asm.new_label();
                    m.const_str(2, "a");
                    m.asm.if_z(Opcode::IfEqz, 1, skip);
                    m.const_str(2, "b");
                    m.asm.bind(skip);
                    emit_sink(m, 2);
                }
                m.asm.ret(Opcode::ReturnVoid, 0);
            });
        });
        out.push((
            Sample {
                name: "ImplicitFlow1".into(),
                category: Category::Implicit,
                dex: pb.build().expect("assembles"),
                entry,
                tampers: vec![],
            },
            2,
        ));
    }

    // PrivateDataLeak3 — one direct leak, one through an external file.
    {
        let entry = "Lt4/pdl3/Main;".to_owned();
        let mut pb = ProgramBuilder::new();
        pb.class(&entry, |c| {
            c.superclass("Landroid/app/Activity;");
            c.method("onCreate", &["Landroid/os/Bundle;"], "V", 4, |m| {
                emit_source(m, 0);
                emit_sink(m, 0); // direct leak
                m.const_str(1, "/sdcard/stash");
                m.invoke(
                    Opcode::InvokeStatic,
                    "Lcom/dexlego/Files;",
                    "write",
                    &["Ljava/lang/String;", "Ljava/lang/String;"],
                    "V",
                    &[1, 0],
                );
                m.invoke(
                    Opcode::InvokeStatic,
                    "Lcom/dexlego/Files;",
                    "read",
                    &["Ljava/lang/String;"],
                    "Ljava/lang/String;",
                    &[1],
                );
                mr_obj(m, 2);
                emit_sink(m, 2); // leak through the file system
                m.asm.ret(Opcode::ReturnVoid, 0);
            });
        });
        out.push((
            Sample {
                name: "PrivateDataLeak3".into(),
                category: Category::Direct,
                dex: pb.build().expect("assembles"),
                entry,
                tampers: vec![],
            },
            2,
        ));
    }

    out
}

/// One row of Table IV.
#[derive(Debug, Clone)]
pub struct Row {
    /// Sample name.
    pub sample: String,
    /// Ground-truth leak count.
    pub leaks: usize,
    /// Leaks detected by TaintDroid.
    pub taintdroid: usize,
    /// Leaks detected by TaintART.
    pub taintart: usize,
    /// Leaks detected by DexLego + HornDroid.
    pub dexlego_hd: usize,
}

fn dynamic_detect(tool: DynamicTool, sample: &Sample) -> usize {
    tool.detect_leaks(
        |rt| {
            let mut obs = dexlego_runtime::observer::NullObserver;
            let _ = sample.install(rt, &mut obs);
        },
        |rt, obs| {
            drive_sample(rt, obs, sample, 7, 4);
        },
    )
}

/// Runs Table IV.
pub fn run() -> Vec<Row> {
    // One row per sample, each with three tool runs on private runtimes —
    // sharded across the harness pool.
    dexlego_harness::parallel_map_expect(
        build_samples(),
        dexlego_harness::default_workers(),
        |(sample, leaks)| {
            let td = dynamic_detect(taintdroid(), &sample);
            let ta = dynamic_detect(taintart(), &sample);
            // DexLego on a real device, then HornDroid on the result.
            let mut rt = Runtime::new();
            let outcome = reveal(&mut rt, |rt, obs| {
                if sample.install(rt, obs).is_err() {
                    return;
                }
                drive_sample(rt, obs, &sample, 7, 4);
                // Fire remaining callbacks deterministically.
                let cbs = rt.callbacks.clone();
                for cb in cbs {
                    rt.callback_depth += 1;
                    let _ = rt.call_method(obs, cb.method, &[Slot::of(cb.receiver), Slot::of(0)]);
                    rt.callback_depth -= 1;
                }
            })
            .expect("reveal succeeds");
            let hd = horndroid().run(&outcome.dex).leaks.len();
            Row {
                sample: sample.name,
                leaks,
                taintdroid: td,
                taintart: ta,
                dexlego_hd: hd,
            }
        },
    )
}

/// Formats Table IV.
pub fn format(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("Table IV — dynamic tools vs DexLego+HornDroid\n");
    out.push_str("sample              | leaks | TD | TA | DexLego+HD\n");
    for r in rows {
        out.push_str(&format!(
            "{:<19} | {:>5} | {:>2} | {:>2} | {:>10}\n",
            r.sample, r.leaks, r.taintdroid, r.taintart, r.dexlego_hd
        ));
    }
    out
}
