//! Table VI: the five F-Droid applications — instruction counts and the
//! size of DexLego's collection ("dump") files after a fuzzing campaign.

use dexlego_core::coverage::EventFuzzer;
use dexlego_core::pipeline::reveal;
use dexlego_droidbench::appgen::{generate, AppSpec, GeneratedApp};
use dexlego_runtime::Runtime;

/// The paper's five F-Droid apps with their instruction counts.
pub const APPS: [(&str, &str, usize); 5] = [
    ("be.ppareit.swiftp", "2.14.2", 8_812),
    ("fr.gaulupeau.apps.InThePoche", "2.0.0b1", 29_231),
    ("org.gnucash.android", "2.1.7", 56_565),
    ("org.liberty.android.fantastischmemopro", "10.9.993", 57_575),
    ("com.fastaccess.github", "2.1.0", 93_913),
];

/// One row of Table VI.
#[derive(Debug, Clone)]
pub struct Row {
    /// Package name.
    pub package: &'static str,
    /// Version.
    pub version: &'static str,
    /// Generated instruction count.
    pub insns: usize,
    /// Dump-file size in bytes after the fuzzing campaign.
    pub dump_size: usize,
}

/// Builds the coverage-profile app for a Table VI/VII package.
pub fn build_app(package: &str, target: usize) -> GeneratedApp {
    generate(&AppSpec::coverage_profile(
        &package.replace('.', "/"),
        target,
    ))
}

/// Runs Table VI.
pub fn run() -> Vec<Row> {
    // One independent reveal per app: sharded across the harness pool.
    dexlego_harness::parallel_map_expect(
        APPS.to_vec(),
        dexlego_harness::default_workers(),
        |(package, version, target)| {
            let app = build_app(package, target);
            let mut rt = Runtime::new();
            let entry = app.entry.clone();
            let dex = app.dex.clone();
            let outcome = reveal(&mut rt, move |rt, obs| {
                if rt.load_dex_observed(&dex, "app", obs).is_err() {
                    return;
                }
                let mut fuzzer = EventFuzzer::new(0xf00d, 6);
                for _ in 0..3 {
                    fuzzer.run(rt, obs, &entry);
                }
            })
            .expect("reveal succeeds");
            Row {
                package,
                version,
                insns: app.insn_count,
                dump_size: outcome.dump_size,
            }
        },
    )
}

/// Formats Table VI.
pub fn format(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("Table VI — F-Droid samples\n");
    out.push_str("package                                  | version   | # insns | dump size\n");
    for r in rows {
        let size = if r.dump_size >= 1 << 20 {
            format!("{:.2} MB", r.dump_size as f64 / (1 << 20) as f64)
        } else {
            format!("{:.2} KB", r.dump_size as f64 / 1024.0)
        };
        out.push_str(&format!(
            "{:<40} | {:<9} | {:>7} | {}\n",
            r.package, r.version, r.insns, size
        ));
    }
    out
}
