//! Table V: "real-world" packed applications — FlowDroid finds nothing in
//! the packed original, several flows in the DexLego-revealed APK.
//!
//! The nine applications are synthetic stand-ins sized and named after the
//! paper's set, each leaking the device id plus app-specific extras
//! (location, SSID) through distinct sink sites.

use dexlego_analysis::tools::flowdroid;
use dexlego_core::pipeline::reveal;
use dexlego_dalvik::builder::{MethodBuilder, ProgramBuilder};
use dexlego_dalvik::{Insn, Opcode};
use dexlego_dex::DexFile;
use dexlego_packer::{pack, PackerId};
use dexlego_runtime::Runtime;

/// (package name, version, market set, installs, expected flow count)
pub const APPS: [(&str, &str, char, &str, usize); 9] = [
    ("com.lenovo.anyshare", "3.6.68", 'A', "100 million", 4),
    ("com.moji.mjweather", "6.0102.02", 'A', "1 million", 5),
    ("com.rongcai.show", "3.4.9", 'A', "100 thousand", 3),
    ("com.wawoo.snipershootwar", "2.6", 'B', "10 million", 4),
    ("com.wawoo.gunshootwar", "2.6", 'B', "10 million", 5),
    ("com.alex.lookwifipassword", "2.9.6", 'B', "100 thousand", 2),
    ("com.gome.eshopnew", "4.3.5", 'C', "15.63 million", 3),
    ("com.szzc.ucar.pilot", "3.4.0", 'C', "3.59 million", 5),
    (
        "com.pingan.pabank.activity",
        "2.6.9",
        'C',
        "7.9 million",
        14,
    ),
];

fn mr_obj(m: &mut MethodBuilder<'_>, reg: u32) {
    let mut mr = Insn::of(Opcode::MoveResultObject);
    mr.a = reg;
    m.asm.push(mr);
}

/// Builds an app leaking through `flows` distinct sink sites, rotating the
/// source kind (device id, location, SSID).
fn build_app(package: &str, flows: usize) -> (DexFile, String) {
    let path = package.replace('.', "/");
    let entry = format!("L{path}/Main;");
    let mut pb = ProgramBuilder::new();
    pb.class(&entry, |c| {
        c.superclass("Landroid/app/Activity;");
        c.method("onCreate", &["Landroid/os/Bundle;"], "V", 4, |m| {
            let this = m.this_reg();
            for k in 0..flows {
                let (service, class, getter) = match k % 3 {
                    0 => (
                        "phone",
                        "Landroid/telephony/TelephonyManager;",
                        "getDeviceId",
                    ),
                    1 => (
                        "location",
                        "Landroid/location/LocationManager;",
                        "getLastKnownLocation",
                    ),
                    _ => ("wifi", "Landroid/net/wifi/WifiInfo;", "getSSID"),
                };
                m.const_str(0, service);
                m.invoke(
                    Opcode::InvokeVirtual,
                    "Landroid/content/Context;",
                    "getSystemService",
                    &["Ljava/lang/String;"],
                    "Ljava/lang/Object;",
                    &[this, 0],
                );
                mr_obj(m, 1);
                if getter == "getLastKnownLocation" {
                    m.const_str(2, "gps");
                    m.invoke(
                        Opcode::InvokeVirtual,
                        class,
                        getter,
                        &["Ljava/lang/String;"],
                        "Ljava/lang/String;",
                        &[1, 2],
                    );
                } else {
                    m.invoke(
                        Opcode::InvokeVirtual,
                        class,
                        getter,
                        &[],
                        "Ljava/lang/String;",
                        &[1],
                    );
                }
                mr_obj(m, 2);
                m.invoke(
                    Opcode::InvokeStatic,
                    "Lcom/dexlego/Net;",
                    "send",
                    &["Ljava/lang/String;"],
                    "V",
                    &[2],
                );
            }
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    (pb.build().expect("assembles"), entry)
}

/// One row of Table V.
#[derive(Debug, Clone)]
pub struct Row {
    /// Package name.
    pub package: &'static str,
    /// Version string (decorative, as in the paper).
    pub version: &'static str,
    /// Market set.
    pub set: char,
    /// Install count string.
    pub installs: &'static str,
    /// Flows FlowDroid finds in the packed original.
    pub original: usize,
    /// Flows FlowDroid finds in the revealed APK.
    pub revealed: usize,
}

/// Runs Table V.
pub fn run() -> Vec<Row> {
    let packers = PackerId::table1();
    // Each row packs, analyses, and reveals one app independently; the
    // harness pool shards the nine rows across cores.
    dexlego_harness::parallel_map_expect(
        APPS.iter().enumerate().collect(),
        dexlego_harness::default_workers(),
        |(i, &(package, version, set, installs, flows))| {
            let (dex, entry) = build_app(package, flows);
            let packed = pack(&dex, &entry, packers[i % packers.len()]).expect("packs");
            let fd = flowdroid();
            let original = fd.run(&packed.shell_dex).leaks.len();
            let mut rt = Runtime::new();
            let packed2 = packed.clone();
            let outcome = reveal(&mut rt, move |rt, obs| {
                if packed2.install_observed(rt, obs).is_err() {
                    return;
                }
                let _ = packed2.launch(rt, obs);
            })
            .expect("reveal succeeds");
            let revealed = fd.run(&outcome.dex).leaks.len();
            Row {
                package,
                version,
                set,
                installs,
                original,
                revealed,
            }
        },
    )
}

/// Formats Table V.
pub fn format(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("Table V — real-world packed applications (FlowDroid)\n");
    out.push_str(
        "package                     | ver       | set | installs      | orig | revealed\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<27} | {:<9} | {}   | {:<13} | {:>4} | {:>8}\n",
            r.package, r.version, r.set, r.installs, r.original, r.revealed
        ));
    }
    out
}
