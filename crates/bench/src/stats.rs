//! Latency-distribution summaries for the load benches: nearest-rank
//! percentiles over microsecond samples.

/// Summary statistics over a set of latency samples, microseconds.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min_us: u64,
    /// Largest sample.
    pub max_us: u64,
    /// Arithmetic mean.
    pub mean_us: u64,
    /// Median (nearest rank).
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// 99.9th percentile.
    pub p999_us: u64,
}

/// Nearest-rank percentile of an ascending-sorted slice: the smallest
/// sample such that at least `q` of the distribution is at or below it.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Summarises `samples` (consumed: sorted in place). Returns the default
/// (all-zero) stats for an empty set.
pub fn latency_stats(samples: &mut [u64]) -> LatencyStats {
    if samples.is_empty() {
        return LatencyStats::default();
    }
    samples.sort_unstable();
    let total: u128 = samples.iter().map(|&s| u128::from(s)).sum();
    LatencyStats {
        count: samples.len(),
        min_us: samples[0],
        max_us: samples[samples.len() - 1],
        mean_us: (total / samples.len() as u128) as u64,
        p50_us: percentile(samples, 0.50),
        p90_us: percentile(samples, 0.90),
        p99_us: percentile(samples, 0.99),
        p999_us: percentile(samples, 0.999),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_is_all_zero() {
        let stats = latency_stats(&mut []);
        assert_eq!(stats.count, 0);
        assert_eq!(stats.p999_us, 0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let stats = latency_stats(&mut [42]);
        assert_eq!(
            (
                stats.min_us,
                stats.p50_us,
                stats.p99_us,
                stats.p999_us,
                stats.max_us
            ),
            (42, 42, 42, 42, 42)
        );
    }

    #[test]
    fn percentiles_of_a_known_distribution() {
        // 1..=1000: nearest-rank pXX is exactly XX0 (and p999 is 999).
        let mut samples: Vec<u64> = (1..=1000).collect();
        let stats = latency_stats(&mut samples);
        assert_eq!(stats.count, 1000);
        assert_eq!(stats.min_us, 1);
        assert_eq!(stats.max_us, 1000);
        assert_eq!(stats.p50_us, 500);
        assert_eq!(stats.p90_us, 900);
        assert_eq!(stats.p99_us, 990);
        assert_eq!(stats.p999_us, 999);
        assert_eq!(stats.mean_us, 500);
    }

    #[test]
    fn order_of_input_does_not_matter() {
        let mut a: Vec<u64> = vec![5, 1, 9, 3, 7];
        let mut b: Vec<u64> = vec![9, 7, 5, 3, 1];
        assert_eq!(latency_stats(&mut a).p50_us, latency_stats(&mut b).p50_us);
        assert_eq!(latency_stats(&mut a).p50_us, 5);
    }

    #[test]
    fn outlier_shows_in_the_tail_not_the_median() {
        let mut samples: Vec<u64> = vec![10; 999];
        samples.push(100_000);
        let stats = latency_stats(&mut samples);
        assert_eq!(stats.p50_us, 10);
        assert_eq!(stats.p99_us, 10);
        assert_eq!(stats.p999_us, 10);
        assert_eq!(stats.max_us, 100_000);
    }
}
