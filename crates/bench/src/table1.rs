//! Table I: packing the four AOSP-scale applications with each public
//! packer and revealing them with DexLego.
//!
//! Success criterion (as in §V-A): every method executed during the driving
//! run appears in the reassembled DEX with its instructions and control
//! flows intact — checked mechanically by comparing executed-method
//! signatures and per-method invoke targets.

use std::collections::BTreeSet;

use dexlego_core::pipeline::reveal;
use dexlego_droidbench::appgen::{generate, AppSpec};
use dexlego_packer::{pack, PackerId};
use dexlego_runtime::observer::RuntimeObserver;
use dexlego_runtime::{MethodId, Runtime, Slot};

/// The paper's four AOSP applications with their instruction counts.
pub const APPS: [(&str, usize); 4] = [
    ("HTMLViewer", 217),
    ("Calculator", 2_507),
    ("Calendar", 78_598),
    ("Contacts", 103_602),
];

/// Result of one (app, packer) cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Application name.
    pub app: &'static str,
    /// Packer name.
    pub packer: &'static str,
    /// Whether collection + reassembly succeeded and preserved behaviour.
    pub success: bool,
    /// Methods executed during driving.
    pub executed_methods: usize,
    /// Of those, methods present in the reassembled DEX.
    pub reassembled_methods: usize,
}

/// Tracks which app methods execute.
#[derive(Default)]
struct ExecutedMethods {
    sigs: BTreeSet<String>,
}

impl RuntimeObserver for ExecutedMethods {
    fn on_method_enter(&mut self, rt: &Runtime, method: MethodId) {
        let m = rt.method(method);
        if rt.class(m.class).source != "<framework>"
            && matches!(m.body, dexlego_runtime::class::MethodImpl::Bytecode { .. })
        {
            self.sigs.insert(rt.method_name(method));
        }
    }
}

/// Runs Table I: returns per-app instruction counts and all cells.
///
/// The (app, packer) grid is embarrassingly parallel — every cell gets its
/// own runtime — so the whole table is sharded across the harness pool.
pub fn run() -> (Vec<(&'static str, usize)>, Vec<Cell>) {
    let per_app = dexlego_harness::parallel_map_expect(
        APPS.to_vec(),
        dexlego_harness::default_workers(),
        run_app,
    );
    let mut insn_counts = Vec::new();
    let mut cells = Vec::new();
    for (count, app_cells) in per_app {
        insn_counts.push(count);
        cells.extend(app_cells);
    }
    (insn_counts, cells)
}

/// All Table I cells for one application.
fn run_app((name, target): (&'static str, usize)) -> ((&'static str, usize), Vec<Cell>) {
    let app = generate(&AppSpec::plain_profile(
        &format!("aosp/{}", name.to_lowercase()),
        target,
    ));
    let mut cells = Vec::new();
    for packer in PackerId::table1() {
        let packed = pack(&app.dex, &app.entry, packer).expect("packing succeeds");
        let mut rt = Runtime::new();
        let mut executed = ExecutedMethods::default();
        let packed2 = packed.clone();
        let outcome = reveal(&mut rt, |rt, obs| {
            let mut chained = dexlego_core::force::ChainMut(&mut executed, obs);
            if packed2.install_observed(rt, &mut chained).is_err() {
                return;
            }
            let _ = packed2.launch(rt, &mut chained);
            // Fire registered callbacks once each.
            let cbs = rt.callbacks.clone();
            for cb in cbs {
                rt.callback_depth += 1;
                let _ = rt.call_method(
                    &mut chained,
                    cb.method,
                    &[Slot::of(cb.receiver), Slot::of(0)],
                );
                rt.callback_depth -= 1;
            }
        });
        let cell = match outcome {
            Err(_) => Cell {
                app: name,
                packer: packer.profile().name,
                success: false,
                executed_methods: executed.sigs.len(),
                reassembled_methods: 0,
            },
            Ok(outcome) => {
                // Mechanical RQ1 validation (carried on the outcome):
                // every collected method and every collected instruction
                // opcode appears in the reassembled DEX.
                let problems = &outcome.validation;
                let out = &outcome.dex;
                let mut present = 0usize;
                for sig in &executed.sigs {
                    let (class, rest) = sig.split_once("->").expect("method sig");
                    let name_part: String = rest.chars().take_while(|&c| c != '(').collect();
                    let found = out.find_class(class).is_some_and(|def| {
                        def.class_data.as_ref().is_some_and(|data| {
                            data.methods().any(|m| {
                                out.method_signature(m.method_idx)
                                    .is_ok_and(|s| s.starts_with(&format!("{class}->{name_part}(")))
                            })
                        })
                    });
                    if found {
                        present += 1;
                    }
                }
                Cell {
                    app: name,
                    packer: packer.profile().name,
                    success: problems.is_empty()
                        && present == executed.sigs.len()
                        && !executed.sigs.is_empty(),
                    executed_methods: executed.sigs.len(),
                    reassembled_methods: present,
                }
            }
        };
        cells.push(cell);
    }
    ((name, app.insn_count), cells)
}

/// Formats Table I.
pub fn format(insn_counts: &[(&str, usize)], cells: &[Cell]) -> String {
    let mut out = String::new();
    out.push_str("Table I — packers vs applications\n");
    out.push_str("application | # instructions\n");
    for (name, count) in insn_counts {
        out.push_str(&format!("{name:<11} | {count}\n"));
    }
    out.push('\n');
    for cell in cells {
        out.push_str(&format!(
            "{:<11} x {:<8} : {} ({} / {} executed methods reassembled)\n",
            cell.app,
            cell.packer,
            if cell.success { "OK" } else { "FAIL" },
            cell.reassembled_methods,
            cell.executed_methods,
        ));
    }
    out
}
