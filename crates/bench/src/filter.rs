//! A tiny regex-subset matcher for `--filter` flags: literal characters,
//! `.` (any one character), `*` (zero or more of the preceding atom), and
//! the `^` / `$` anchors. No dependency on a regex crate — benchmark
//! binaries only need enough to select workloads by name.

/// One pattern element: a concrete character or the `.` wildcard, plus
/// whether it is starred.
#[derive(Debug, Clone, Copy)]
struct Atom {
    /// `None` means `.` — matches any single character.
    ch: Option<char>,
    /// Whether the atom may repeat zero or more times (`*`).
    star: bool,
}

impl Atom {
    fn matches(self, c: char) -> bool {
        self.ch.is_none_or(|a| a == c)
    }
}

/// A compiled filter pattern. Unanchored by default: the pattern may match
/// anywhere in the candidate string unless `^` / `$` pin it down.
#[derive(Debug, Clone)]
pub struct Pattern {
    atoms: Vec<Atom>,
    from_start: bool,
    to_end: bool,
}

impl Pattern {
    /// Compiles `pat`. A leading `*` (nothing to repeat) is rejected.
    pub fn new(pat: &str) -> Result<Pattern, String> {
        let mut rest = pat;
        let from_start = rest.starts_with('^');
        if from_start {
            rest = &rest[1..];
        }
        let to_end = rest.ends_with('$');
        if to_end {
            rest = &rest[..rest.len() - 1];
        }
        let mut atoms: Vec<Atom> = Vec::new();
        for c in rest.chars() {
            match c {
                '*' => match atoms.last_mut() {
                    Some(a) if !a.star => a.star = true,
                    _ => return Err(format!("`*` with nothing to repeat in {pat:?}")),
                },
                '.' => atoms.push(Atom {
                    ch: None,
                    star: false,
                }),
                c => atoms.push(Atom {
                    ch: Some(c),
                    star: false,
                }),
            }
        }
        Ok(Pattern {
            atoms,
            from_start,
            to_end,
        })
    }

    /// Whether the pattern matches `text` (anywhere, unless anchored).
    pub fn is_match(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        let starts = if self.from_start {
            0..1
        } else {
            0..chars.len() + 1
        };
        for s in starts {
            if match_here(&self.atoms, &chars[s..], self.to_end) {
                return true;
            }
        }
        false
    }
}

/// Classic backtracking match of `atoms` against the head of `text`;
/// `to_end` requires the whole remainder to be consumed.
fn match_here(atoms: &[Atom], text: &[char], to_end: bool) -> bool {
    let Some((first, rest)) = atoms.split_first() else {
        return !to_end || text.is_empty();
    };
    if first.star {
        let mut i = 0;
        loop {
            if match_here(rest, &text[i..], to_end) {
                return true;
            }
            if i < text.len() && first.matches(text[i]) {
                i += 1;
            } else {
                return false;
            }
        }
    } else if !text.is_empty() && first.matches(text[0]) {
        match_here(rest, &text[1..], to_end)
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::Pattern;

    fn m(pat: &str, text: &str) -> bool {
        Pattern::new(pat).unwrap().is_match(text)
    }

    #[test]
    fn literals_match_anywhere() {
        assert!(m("switch", "switch_loop"));
        assert!(m("loop", "switch_loop"));
        assert!(!m("hot", "switch_loop"));
        assert!(m("", "anything"));
    }

    #[test]
    fn anchors_pin_the_match() {
        assert!(m("^hot", "hot_loop"));
        assert!(!m("^loop", "hot_loop"));
        assert!(m("loop$", "hot_loop"));
        assert!(!m("hot$", "hot_loop"));
        assert!(m("^hot_loop$", "hot_loop"));
        assert!(!m("^hot_loop$", "hot_loops"));
    }

    #[test]
    fn dot_and_star_repeat() {
        assert!(m("h.t", "hot_loop"));
        assert!(m("^h.*p$", "hot_loop"));
        assert!(m("lo*p", "lp"));
        assert!(m("lo*p", "looop"));
        assert!(!m("^lo*p$", "loq"));
        assert!(m(".*", ""));
    }

    #[test]
    fn leading_star_is_rejected() {
        assert!(Pattern::new("*x").is_err());
        assert!(Pattern::new("^*x").is_err());
        assert!(Pattern::new("a**").is_err());
    }
}
