//! `dexlegod` load harness: latency distribution and sustained RPS under
//! concurrent, pipelined load.
//!
//! Starts an in-process daemon on an ephemeral loop-back port with a
//! fresh store, then drives it with `conns` concurrent connections, each
//! keeping up to `window` tagged requests in flight (the pipelined
//! dialect) until it has pushed `requests_per_conn` extractions through.
//! Every request carries unique fuzzing seeds, so the cold pass is all
//! pipeline misses; the warm pass replays the identical requests and is
//! served entirely from the content-addressed store.
//!
//! Per pass the harness reports wall time, sustained requests/sec, and
//! the per-request latency distribution (p50/p90/p99/p999, send to
//! reply). A final single-connection comparison replays a warm
//! minimal-payload probe two ways — strictly serially (the old
//! one-in-flight protocol) and pipelined — to measure what multiplexing
//! alone buys on the protocol turnaround.

use std::collections::HashMap;
use std::time::Instant;

use dexlego_dex::writer::write_dex;
use dexlego_droidbench::appgen::corpus_apps;
use dexlego_harness::json::{self, Value};
use dexlego_packer::PackerId;
use dexlego_service::{
    Client, Daemon, ExtractReply, ExtractRequest, PipelinedClient, ServiceConfig,
};
use dexlego_store::TempDir;

use crate::stats::{latency_stats, LatencyStats};

/// Load-generator shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent connections.
    pub conns: usize,
    /// Extractions pushed through each connection per pass.
    pub requests_per_conn: usize,
    /// Maximum tagged requests in flight per connection.
    pub window: usize,
    /// Instruction count of each generated app (payload size knob).
    pub insns: usize,
    /// Optional per-request deadline to exercise shedding under load.
    pub deadline_ms: Option<u64>,
    /// Daemon worker threads.
    pub workers: usize,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            conns: 4,
            requests_per_conn: 32,
            window: 8,
            insns: 60,
            deadline_ms: None,
            workers: 2,
        }
    }
}

/// One pass (cold or warm) across all connections.
#[derive(Debug, Clone, Default)]
pub struct PassResult {
    /// Wall time of the whole pass, seconds.
    pub wall_s: f64,
    /// Completed requests across all connections.
    pub completed: usize,
    /// Sustained requests/sec over the pass.
    pub rps: f64,
    /// Send-to-reply latency distribution, microseconds.
    pub latency: LatencyStats,
    /// Requests shed `overloaded`.
    pub overloaded: usize,
    /// Requests shed `deadline_exceeded`.
    pub deadline_exceeded: usize,
    /// Replies that failed to parse, carried an unknown id, or answered
    /// `error`/`failed` — any of these is a harness failure.
    pub protocol_errors: usize,
}

/// Results of one full load run.
#[derive(Debug, Clone)]
pub struct ServiceBench {
    /// The shape that produced these numbers.
    pub config: LoadConfig,
    /// First pass: every request runs the extraction pipeline.
    pub cold: PassResult,
    /// Second pass: identical requests, served from the store.
    pub warm: PassResult,
    /// Warm replay of the single-connection turnaround probe, one request
    /// in flight at a time (the old blocking protocol): best round,
    /// requests/sec.
    pub serial_one_conn_rps: f64,
    /// The same warm probe with `window` requests in flight: best round,
    /// requests/sec.
    pub pipelined_one_conn_rps: f64,
    /// What pipelining alone buys on the warm path: the median over
    /// paired rounds of (pipelined rps / serial rps). Each pair runs
    /// back-to-back so both sides see the same machine conditions; the
    /// median shrugs off rounds a scheduler hiccup distorted. This is
    /// deliberately not the quotient of the two best-round rates above —
    /// those may come from different rounds.
    pub pipelining_speedup: f64,
    /// Cache hits / extracts over both passes, from the daemon's stats.
    pub hit_rate: f64,
}

/// Builds each connection's request list. Seeds are part of the job
/// digest, so giving every request a unique seed makes every cold
/// request a genuine miss and every warm replay a genuine hit.
pub(crate) fn build_requests(config: &LoadConfig) -> Vec<Vec<ExtractRequest>> {
    let packers = PackerId::table1();
    let apps = corpus_apps(config.conns, config.insns);
    apps.into_iter()
        .enumerate()
        .map(|(conn, (name, app))| {
            let dex = write_dex(&app.dex).expect("serialise app");
            (0..config.requests_per_conn)
                .map(|i| {
                    let mut req = ExtractRequest::new(dex.clone(), &app.entry);
                    req.name = Some(format!("{name}/c{conn}r{i}"));
                    req.packer = Some(
                        packers[(conn + i) % packers.len()]
                            .profile()
                            .name
                            .to_owned(),
                    );
                    req.seeds = vec![(conn * config.requests_per_conn + i + 1) as u64];
                    req.deadline_ms = config.deadline_ms;
                    req
                })
                .collect()
        })
        .collect()
}

/// Builds the single-connection turnaround probe: one tiny app replayed
/// with seeds disjoint from the load passes (offset far past them), so
/// per-request protocol turnaround — not payload parsing — dominates the
/// serial-vs-pipelined comparison.
fn build_turnaround_probe(config: &LoadConfig) -> Vec<ExtractRequest> {
    // Fixed length regardless of the pass shape: a round must be long
    // enough to measure, even when the passes themselves are small.
    const PROBE_REQUESTS: usize = 64;
    let seed_base = (config.conns * config.requests_per_conn) as u64 + 1_000;
    let (name, app) = corpus_apps(1, 10).into_iter().next().expect("probe app");
    let dex = write_dex(&app.dex).expect("serialise probe app");
    (0..PROBE_REQUESTS)
        .map(|i| {
            let mut req = ExtractRequest::new(dex.clone(), &app.entry);
            req.name = Some(format!("{name}/probe{i}"));
            req.seeds = vec![seed_base + i as u64];
            req
        })
        .collect()
}

/// Drives one connection for one pass: windowed pipelining until every
/// request has its reply. Returns the latency samples (µs) and counters.
pub(crate) fn drive_conn(
    addr: &str,
    requests: &[ExtractRequest],
    window: usize,
) -> (Vec<u64>, PassResult) {
    let mut client = PipelinedClient::connect(addr).expect("connect");
    let mut result = PassResult::default();
    let mut samples = Vec::with_capacity(requests.len());
    let mut sent_at: HashMap<u64, Instant> = HashMap::new();
    let mut next = 0usize;
    // Refill in half-window batches rather than one send per receive:
    // sends are buffered, so each refill is one write for the whole
    // batch while the pipeline stays at least half full.
    let refill_at = (window / 2).max(1);
    while result.completed + result.protocol_errors < requests.len() {
        while next < requests.len() && sent_at.len() < window {
            let id = client.send_extract(&requests[next]).expect("send");
            sent_at.insert(id, Instant::now());
            next += 1;
        }
        let drain_to = if next < requests.len() { refill_at } else { 0 };
        while sent_at.len() > drain_to {
            match client.recv_extract() {
                Ok((id, reply)) => {
                    let Some(sent) = sent_at.remove(&id) else {
                        result.protocol_errors += 1;
                        continue;
                    };
                    samples.push(sent.elapsed().as_micros() as u64);
                    result.completed += 1;
                    match reply {
                        ExtractReply::Done { .. } => {}
                        ExtractReply::Overloaded => result.overloaded += 1,
                        ExtractReply::DeadlineExceeded { .. } => result.deadline_exceeded += 1,
                        ExtractReply::Failed { .. } => result.protocol_errors += 1,
                    }
                }
                Err(_) => {
                    result.protocol_errors += 1;
                    // An undecodable reply still consumed one in-flight
                    // slot; drop the oldest so the window cannot wedge.
                    if let Some(&oldest) = sent_at.keys().min() {
                        sent_at.remove(&oldest);
                    }
                }
            }
        }
    }
    (samples, result)
}

/// One pass over all connections concurrently; merges the per-connection
/// samples and counters under a single pass-wide clock.
pub(crate) fn run_pass(addr: &str, requests: &[Vec<ExtractRequest>], window: usize) -> PassResult {
    let start = Instant::now();
    let per_conn: Vec<(Vec<u64>, PassResult)> = std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .map(|reqs| scope.spawn(move || drive_conn(addr, reqs, window)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("conn thread"))
            .collect()
    });
    let wall_s = start.elapsed().as_secs_f64();

    let mut merged = PassResult {
        wall_s,
        ..PassResult::default()
    };
    let mut samples = Vec::new();
    for (conn_samples, conn_result) in per_conn {
        samples.extend(conn_samples);
        merged.completed += conn_result.completed;
        merged.overloaded += conn_result.overloaded;
        merged.deadline_exceeded += conn_result.deadline_exceeded;
        merged.protocol_errors += conn_result.protocol_errors;
    }
    merged.rps = merged.completed as f64 / wall_s.max(1e-9);
    merged.latency = latency_stats(&mut samples);
    merged
}

/// Warm single-connection replay, one request in flight at a time — the
/// old protocol's turnaround, measured with the old blocking client.
fn serial_replay(addr: &str, requests: &[ExtractRequest]) -> f64 {
    let mut client = Client::connect(addr).expect("connect");
    let start = Instant::now();
    for req in requests {
        match client.extract(req).expect("serial extract") {
            ExtractReply::Done { .. } => {}
            other => panic!("serial replay did not complete: {other:?}"),
        }
    }
    requests.len() as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

/// Runs the full load shape against a fresh daemon.
///
/// # Panics
///
/// Daemon start, transport, or job failures — this is an experiment
/// driver, not a library.
pub fn run(config: LoadConfig) -> ServiceBench {
    assert!(config.conns > 0 && config.requests_per_conn > 0 && config.window > 0);
    let dir = TempDir::new("bench-service").expect("temp store");
    let mut service = ServiceConfig::new(dir.path());
    service.workers = config.workers;
    // The generator never exceeds its window, so nothing is shed as long
    // as the window fits the per-connection bound.
    assert!(
        config.window <= service.max_pending_per_conn,
        "window {} exceeds the server's per-connection bound {}",
        config.window,
        service.max_pending_per_conn
    );
    let daemon = Daemon::start(service).expect("daemon starts");
    let addr = daemon.addr().to_string();

    let requests = build_requests(&config);
    let cold = run_pass(&addr, &requests, config.window);
    let warm = run_pass(&addr, &requests, config.window);

    // Single-connection protocol-turnaround comparison: identical warm
    // requests, one connection, only the in-flight budget differs.
    // Pipelining saves per-request turnaround (wakeups, syscalls, the
    // client's idle round trip), so the probe uses minimal payloads to
    // keep that cost visible next to request parsing; an untimed
    // pipelined pass warms the store first. Each round finishes in
    // milliseconds — all scheduler noise individually — so run the two
    // modes as back-to-back pairs and take the median of the per-pair
    // ratios (see [`ServiceBench::pipelining_speedup`]).
    const ONE_CONN_ROUNDS: usize = 7;
    let probe_requests = build_turnaround_probe(&config);
    let (_, warmup) = drive_conn(&addr, &probe_requests, config.window);
    assert_eq!(warmup.protocol_errors, 0, "probe warm-up errored");
    let mut serial_one_conn_rps = 0f64;
    let mut pipelined_one_conn_rps = 0f64;
    let mut ratios = Vec::with_capacity(ONE_CONN_ROUNDS);
    for _ in 0..ONE_CONN_ROUNDS {
        let serial_rps = serial_replay(&addr, &probe_requests);
        let start = Instant::now();
        let (_, pass) = drive_conn(&addr, &probe_requests, config.window);
        assert_eq!(pass.protocol_errors, 0, "pipelined replay errored");
        let pipelined_rps = pass.completed as f64 / start.elapsed().as_secs_f64().max(1e-9);
        serial_one_conn_rps = serial_one_conn_rps.max(serial_rps);
        pipelined_one_conn_rps = pipelined_one_conn_rps.max(pipelined_rps);
        ratios.push(pipelined_rps / serial_rps.max(1e-9));
    }
    ratios.sort_unstable_by(|a, b| a.total_cmp(b));
    let pipelining_speedup = ratios[ratios.len() / 2];

    let mut control = Client::connect(&addr).expect("control connection");
    let stats = control.stats().expect("stats");
    let hits = stats.get("hits").and_then(Value::as_u64).unwrap_or(0) as f64;
    let extracts = stats.get("extracts").and_then(Value::as_u64).unwrap_or(0) as f64;
    control.shutdown().expect("shutdown");
    drop(control);
    daemon.wait();

    ServiceBench {
        config,
        cold,
        warm,
        serial_one_conn_rps,
        pipelined_one_conn_rps,
        pipelining_speedup,
        hit_rate: hits / extracts.max(1.0),
    }
}

pub(crate) fn pass_json(pass: &PassResult) -> String {
    json::object(&[
        ("wall_s", format!("{:.3}", pass.wall_s)),
        ("completed", pass.completed.to_string()),
        ("rps", format!("{:.1}", pass.rps)),
        ("p50_us", pass.latency.p50_us.to_string()),
        ("p90_us", pass.latency.p90_us.to_string()),
        ("p99_us", pass.latency.p99_us.to_string()),
        ("p999_us", pass.latency.p999_us.to_string()),
        ("min_us", pass.latency.min_us.to_string()),
        ("max_us", pass.latency.max_us.to_string()),
        ("mean_us", pass.latency.mean_us.to_string()),
        ("overloaded", pass.overloaded.to_string()),
        ("deadline_exceeded", pass.deadline_exceeded.to_string()),
        ("protocol_errors", pass.protocol_errors.to_string()),
    ])
}

/// Formats the result as one JSON object.
pub fn format(bench: &ServiceBench) -> String {
    json::object(&[
        ("experiment", json::string("service_load")),
        ("conns", bench.config.conns.to_string()),
        (
            "requests_per_conn",
            bench.config.requests_per_conn.to_string(),
        ),
        ("window", bench.config.window.to_string()),
        ("insns", bench.config.insns.to_string()),
        ("workers", bench.config.workers.to_string()),
        ("cold", pass_json(&bench.cold)),
        ("warm", pass_json(&bench.warm)),
        (
            "serial_one_conn_rps",
            format!("{:.1}", bench.serial_one_conn_rps),
        ),
        (
            "pipelined_one_conn_rps",
            format!("{:.1}", bench.pipelined_one_conn_rps),
        ),
        (
            "pipelining_speedup",
            format!("{:.2}", bench.pipelining_speedup),
        ),
        ("hit_rate", format!("{:.3}", bench.hit_rate)),
    ])
}
