//! Service benchmark: cold vs warm throughput of a `dexlegod` daemon.
//!
//! Starts an in-process daemon on an ephemeral loop-back port with a
//! fresh store, pushes a corpus of packed apps through it twice over the
//! wire — the first pass runs the pipeline, the second is served from the
//! content-addressed store — and reports jobs/sec for each pass plus the
//! observed cache hit rate.

use std::time::Instant;

use dexlego_dex::writer::write_dex;
use dexlego_droidbench::appgen::corpus_apps;
use dexlego_harness::json::{self, Value};
use dexlego_packer::PackerId;
use dexlego_service::{Client, Daemon, ExtractReply, ExtractRequest, ServiceConfig};
use dexlego_store::TempDir;

/// Results of one cold/warm throughput run.
#[derive(Debug, Clone)]
pub struct ServiceBench {
    /// Jobs per pass.
    pub jobs: usize,
    /// Cold-pass wall time (every job runs the pipeline), seconds.
    pub cold_s: f64,
    /// Warm-pass wall time (every job served from the store), seconds.
    pub warm_s: f64,
    /// Cache hits / extract requests over both passes, as the daemon's
    /// stats endpoint reports them.
    pub hit_rate: f64,
}

impl ServiceBench {
    /// Cold throughput, jobs/sec.
    pub fn cold_jobs_per_s(&self) -> f64 {
        self.jobs as f64 / self.cold_s.max(1e-9)
    }

    /// Warm throughput, jobs/sec.
    pub fn warm_jobs_per_s(&self) -> f64 {
        self.jobs as f64 / self.warm_s.max(1e-9)
    }

    /// Warm speedup over cold.
    pub fn speedup(&self) -> f64 {
        self.warm_jobs_per_s() / self.cold_jobs_per_s().max(1e-9)
    }
}

/// Runs `apps` jobs (packer profiles rotated over Table I) through a
/// fresh daemon twice.
///
/// # Panics
///
/// Daemon start, transport, or job failures — this is an experiment
/// driver, not a library.
pub fn run(apps: usize, insns: usize) -> ServiceBench {
    let dir = TempDir::new("bench-service").expect("temp store");
    let daemon = Daemon::start(ServiceConfig::new(dir.path())).expect("daemon starts");
    let addr = daemon.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    let packers = PackerId::table1();
    let requests: Vec<ExtractRequest> = corpus_apps(apps, insns)
        .into_iter()
        .enumerate()
        .map(|(i, (name, app))| {
            let dex = write_dex(&app.dex).expect("serialise app");
            let mut req = ExtractRequest::new(dex, &app.entry);
            req.name = Some(name);
            req.packer = Some(packers[i % packers.len()].profile().name.to_owned());
            req
        })
        .collect();

    let mut pass = |label: &str, want_cached: bool| -> f64 {
        let start = Instant::now();
        for req in &requests {
            match client.extract(req).expect("extract") {
                ExtractReply::Done { cached, .. } => {
                    assert_eq!(cached, want_cached, "{label}: unexpected cache state");
                }
                other => panic!("{label}: job did not complete: {other:?}"),
            }
        }
        start.elapsed().as_secs_f64()
    };

    let cold_s = pass("cold", false);
    let warm_s = pass("warm", true);

    let stats = client.stats().expect("stats");
    let hits = stats.get("hits").and_then(Value::as_u64).unwrap_or(0) as f64;
    let extracts = stats.get("extracts").and_then(Value::as_u64).unwrap_or(0) as f64;

    client.shutdown().expect("shutdown");
    drop(client);
    daemon.wait();

    ServiceBench {
        jobs: requests.len(),
        cold_s,
        warm_s,
        hit_rate: hits / extracts.max(1.0),
    }
}

/// Formats the result as one JSON object.
pub fn format(bench: &ServiceBench) -> String {
    json::object(&[
        ("experiment", json::string("service")),
        ("jobs", bench.jobs.to_string()),
        ("cold_s", format!("{:.3}", bench.cold_s)),
        ("warm_s", format!("{:.3}", bench.warm_s)),
        ("cold_jobs_per_s", format!("{:.1}", bench.cold_jobs_per_s())),
        ("warm_jobs_per_s", format!("{:.1}", bench.warm_jobs_per_s())),
        ("speedup", format!("{:.1}", bench.speedup())),
        ("hit_rate", format!("{:.3}", bench.hit_rate)),
    ])
}
