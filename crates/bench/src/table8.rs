//! Table VIII: application launch time with and without DexLego, mean and
//! standard deviation over 30 launches of three popular-app stand-ins.

use std::time::Instant;

use dexlego_core::JitCollector;
use dexlego_droidbench::appgen::{generate, AppSpec};
use dexlego_runtime::class::SigKey;
use dexlego_runtime::observer::NullObserver;
use dexlego_runtime::{Runtime, RuntimeObserver, Slot};

/// The paper's three applications with stand-in code sizes (launch cost is
/// dominated by class initialisation and `onCreate` work).
pub const APPS: [(&str, &str, usize); 3] = [
    ("Snapchat", "9.43.0.0", 24_000),
    ("Instagram", "9.7.0", 18_000),
    ("WhatsApp", "2.16.310", 7_000),
];

/// One row of Table VIII.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application name.
    pub app: &'static str,
    /// Version.
    pub version: &'static str,
    /// Mean / std launch time (ms) on the unmodified runtime.
    pub original: (f64, f64),
    /// Mean / std launch time (ms) with DexLego collecting.
    pub dexlego: (f64, f64),
}

fn mean_std(samples: &[f64]) -> (f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

fn launch_times(dex: &dexlego_dex::DexFile, entry: &str, collected: bool, runs: usize) -> Vec<f64> {
    (0..runs)
        .map(|_| {
            // Each launch is a cold start: fresh runtime, fresh linking.
            let mut rt = Runtime::new();
            let mut collector = JitCollector::new();
            let mut null = NullObserver;
            let obs: &mut dyn RuntimeObserver = if collected { &mut collector } else { &mut null };
            let start = Instant::now();
            rt.load_dex_observed(dex, "app", obs).expect("loads");
            let activity = rt.new_instance(obs, entry).expect("instantiates");
            let class = rt.find_class(entry).expect("linked");
            if let Some(on_create) =
                rt.resolve_method(class, &SigKey::new("onCreate", "(Landroid/os/Bundle;)V"))
            {
                let _ = rt.call_method(obs, on_create, &[Slot::of(activity), Slot::of(0)]);
            }
            start.elapsed().as_secs_f64() * 1000.0
        })
        .collect()
}

/// Runs Table VIII.
pub fn run() -> Vec<Row> {
    APPS.iter()
        .map(|&(app, version, size)| {
            let generated = generate(&AppSpec::plain_profile(
                &format!("popular/{}", app.to_lowercase()),
                size,
            ));
            let original = mean_std(&launch_times(&generated.dex, &generated.entry, false, 30));
            let dexlego = mean_std(&launch_times(&generated.dex, &generated.entry, true, 30));
            Row {
                app,
                version,
                original,
                dexlego,
            }
        })
        .collect()
}

/// Formats Table VIII.
pub fn format(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("Table VIII — launch time (ms), 30 runs\n");
    out.push_str("app       | version   | original mean/std | DexLego mean/std | slowdown\n");
    for r in rows {
        out.push_str(&format!(
            "{:<9} | {:<9} | {:>8.2} / {:<6.2} | {:>8.2} / {:<6.2} | {:>5.2}x\n",
            r.app,
            r.version,
            r.original.0,
            r.original.1,
            r.dexlego.0,
            r.dexlego.1,
            r.dexlego.0 / r.original.0.max(1e-9),
        ));
    }
    out
}
