//! Taint-precision regression gate: fails if any tool misclassifies a
//! corpus sample not already in the checked-in baseline.
use std::process::ExitCode;

use dexlego_bench::taint_gate;

fn main() -> ExitCode {
    let write = std::env::args().any(|a| a == "--write-baseline");
    let observed = taint_gate::observed();
    if write {
        taint_gate::write_baseline(&observed).expect("writing baseline");
        println!(
            "wrote {} misclassifications to {}",
            observed.len(),
            taint_gate::baseline_path().display()
        );
        return ExitCode::SUCCESS;
    }
    let baseline = match taint_gate::load_baseline() {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "taint-precision gate: cannot read baseline {}: {e}\n\
                 generate it with `cargo run -p dexlego-bench --bin taint_gate -- --write-baseline`",
                taint_gate::baseline_path().display()
            );
            return ExitCode::FAILURE;
        }
    };
    let report = taint_gate::check(&observed, &baseline);
    print!("{}", taint_gate::format(&report));
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
