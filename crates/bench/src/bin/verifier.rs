//! Verifier throughput benchmark, as one JSON line (BENCH_verifier.json).
//!
//! ```text
//! cargo run -p dexlego-bench --release --bin verifier \
//!     [-- --apps N --insns N --rounds N --repeats N --smoke --baseline]
//! ```
//!
//! The default mode measures the reference sequential engine against the
//! fast path (RPO worklist + slab frames + verify cache) over a generated
//! corpus, differentially checking that both emit identical diagnostics.
//! `--baseline` measures only the reference engine (for pinning pre-
//! optimization numbers). `--smoke` runs a reduced corpus and asserts the
//! fast-path invariants hold; `verify.sh` runs it on every change.

fn main() {
    let mut apps = 12usize;
    let mut insns = 160usize;
    let mut rounds = 4u32;
    let mut repeats = 3u32;
    let mut smoke = false;
    let mut baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--apps" | "--insns" | "--rounds" | "--repeats" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| panic!("{arg} expects a value"));
                let parsed: u64 = value
                    .parse()
                    .unwrap_or_else(|_| panic!("{arg} expects a number"));
                match arg.as_str() {
                    "--apps" => apps = parsed as usize,
                    "--insns" => insns = parsed as usize,
                    "--rounds" => rounds = parsed as u32,
                    _ => repeats = parsed as u32,
                }
            }
            "--smoke" => smoke = true,
            "--baseline" => baseline = true,
            other => panic!("unknown argument: {other}"),
        }
    }
    if smoke {
        apps = 4;
        insns = 80;
        rounds = 3;
        repeats = 2;
    }
    if baseline {
        let (single_s, corpus_s, bench_insns) =
            dexlego_bench::verifier::run_baseline(apps, insns, rounds, repeats);
        println!(
            "{}",
            dexlego_harness::json::object(&[
                (
                    "experiment",
                    dexlego_harness::json::string("verifier_baseline")
                ),
                ("apps", apps.to_string()),
                ("insns", bench_insns.to_string()),
                ("rounds", rounds.to_string()),
                ("baseline_us", format!("{:.0}", single_s * 1e6)),
                ("corpus_baseline_us", format!("{:.0}", corpus_s * 1e6)),
                (
                    "baseline_insns_per_s",
                    format!("{:.0}", bench_insns as f64 / single_s.max(1e-9)),
                ),
            ])
        );
        return;
    }
    let r = dexlego_bench::verifier::run(apps, insns, rounds, repeats);
    println!("{}", dexlego_bench::verifier::format(&r));
    if smoke {
        eprintln!(
            "verifier smoke: {} methods, corpus {:.2}x, cold {:.2}x, warm {:.2}x, {} hits / {} misses",
            r.methods,
            r.corpus_speedup(),
            r.cold_speedup(),
            r.warm_speedup(),
            r.cache_hits,
            r.cache_misses
        );
        // The corpus workload re-verifies every DEX each round; with the
        // cache only the first round pays, so the floor is conservative
        // even on one core.
        assert!(
            r.corpus_speedup() >= 1.2,
            "corpus workload speedup regressed: {:.2}x < 1.2x",
            r.corpus_speedup()
        );
        // A warm pass is pure cache hits and must beat verifying cold.
        assert!(
            r.fast_warm_s <= r.fast_cold_s,
            "warm pass slower than cold pass ({:.0}us > {:.0}us)",
            r.fast_warm_s * 1e6,
            r.fast_cold_s * 1e6
        );
        assert!(
            r.cache_hits > 0,
            "corpus workload produced no verify-cache hits"
        );
    }
}
