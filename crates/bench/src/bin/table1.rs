//! Regenerates Table I.
fn main() {
    let (counts, cells) = dexlego_bench::table1::run();
    println!("{}", dexlego_bench::table1::format(&counts, &cells));
}
