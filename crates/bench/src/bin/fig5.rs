//! Regenerates Figure 5.
fn main() {
    let results = dexlego_bench::table2::run();
    println!(
        "{}",
        dexlego_bench::fig5::format(&dexlego_bench::fig5::run(&results))
    );
}
