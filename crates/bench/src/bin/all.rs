//! Regenerates every table and figure.
//!
//! The functional experiments (Tables I–VII, Figure 5) are independent of
//! each other, so they run as named tasks on the harness worker pool —
//! Figure 5 rides in Table II's task because it consumes its results. The
//! two performance experiments (Figure 6, Table VIII) measure wall time and
//! would be skewed by concurrent load, so they run sequentially afterwards.
//! Output is printed in the paper's canonical order regardless of
//! completion order.

use dexlego_harness::{default_workers, run_tasks, Task};

fn main() {
    let tasks = vec![
        Task::new("table1", || {
            let (counts, cells) = dexlego_bench::table1::run();
            dexlego_bench::table1::format(&counts, &cells)
        }),
        Task::new("table2+fig5", || {
            let t2 = dexlego_bench::table2::run();
            format!(
                "{}\n{}",
                dexlego_bench::table2::format(&t2),
                dexlego_bench::fig5::format(&dexlego_bench::fig5::run(&t2))
            )
        }),
        Task::new("table4", || {
            dexlego_bench::table4::format(&dexlego_bench::table4::run())
        }),
        Task::new("table5", || {
            dexlego_bench::table5::format(&dexlego_bench::table5::run())
        }),
        Task::new("table6", || {
            dexlego_bench::table6::format(&dexlego_bench::table6::run())
        }),
        Task::new("table7", || {
            dexlego_bench::table7::format(&dexlego_bench::table7::run())
        }),
    ];
    for (name, result) in run_tasks(tasks, default_workers()) {
        match result {
            Ok(output) => println!("{output}"),
            Err(e) => panic!("{name} failed: {e}"),
        }
    }
    println!(
        "{}",
        dexlego_bench::fig6::format(&dexlego_bench::fig6::run())
    );
    println!(
        "{}",
        dexlego_bench::table8::format(&dexlego_bench::table8::run())
    );
}
