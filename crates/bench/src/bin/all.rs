//! Regenerates every table and figure in sequence.
fn main() {
    let (counts, cells) = dexlego_bench::table1::run();
    println!("{}", dexlego_bench::table1::format(&counts, &cells));
    let t2 = dexlego_bench::table2::run();
    println!("{}", dexlego_bench::table2::format(&t2));
    println!(
        "{}",
        dexlego_bench::fig5::format(&dexlego_bench::fig5::run(&t2))
    );
    println!(
        "{}",
        dexlego_bench::table4::format(&dexlego_bench::table4::run())
    );
    println!(
        "{}",
        dexlego_bench::table5::format(&dexlego_bench::table5::run())
    );
    println!(
        "{}",
        dexlego_bench::table6::format(&dexlego_bench::table6::run())
    );
    println!(
        "{}",
        dexlego_bench::table7::format(&dexlego_bench::table7::run())
    );
    println!(
        "{}",
        dexlego_bench::fig6::format(&dexlego_bench::fig6::run())
    );
    println!(
        "{}",
        dexlego_bench::table8::format(&dexlego_bench::table8::run())
    );
}
