//! Regenerates Table V.
fn main() {
    println!(
        "{}",
        dexlego_bench::table5::format(&dexlego_bench::table5::run())
    );
}
