//! Regenerates Tables II and III.
fn main() {
    let results = dexlego_bench::table2::run();
    println!("{}", dexlego_bench::table2::format(&results));
}
