//! Regenerates Table VII.
fn main() {
    println!(
        "{}",
        dexlego_bench::table7::format(&dexlego_bench::table7::run())
    );
}
