//! Regenerates Table VI.
fn main() {
    println!(
        "{}",
        dexlego_bench::table6::format(&dexlego_bench::table6::run())
    );
}
