//! Regenerates Table IV.
fn main() {
    println!(
        "{}",
        dexlego_bench::table4::format(&dexlego_bench::table4::run())
    );
}
