//! `dexlegod` load generator: latency distribution and sustained RPS, as
//! one JSON line (the format checked in as BENCH_service.json).
//!
//! ```text
//! cargo run -p dexlego-bench --bin service --release -- \
//!     [--conns N] [--requests N] [--window N] [--insns N] \
//!     [--deadline-ms N] [--workers N] [--router N] [--hedge-ms N] \
//!     [--stall-period-ms N] [--stall-ms N] [--smoke]
//! ```
//!
//! `--router N` switches to fleet mode: the same load shape driven
//! through `dexlego-router` fronting `N` in-process backends, emitting
//! the BENCH_router.json shape (warm tails with and without hedging, a
//! single-backend-via-router baseline, and a kill-one-backend pass).
//! Every backend — fleet and baseline alike — gets the same injected
//! straggler profile (`--stall-period-ms` / `--stall-ms`), the tail-at-scale
//! methodology: stalls cost no CPU, so the comparison measures how each
//! topology absorbs a stuck shard rather than raw machine parallelism.
//!
//! `--smoke` runs a small fixed shape and asserts the qualitative
//! invariants (`verify.sh` uses it as a regression gate): no protocol
//! errors, a fully warm second pass, and pipelining beating the serial
//! one-in-flight protocol on the warm path. Combined with `--router`,
//! the smoke instead asserts the fleet contract: replication happened,
//! the hedged fleet's warm p999 does not lose to the single-backend
//! baseline, and killing a backend mid-pass produced zero error
//! replies.

use dexlego_bench::router::{run_fleet, FleetConfig};
use dexlego_bench::service::{run, LoadConfig};

fn main() {
    let mut config = LoadConfig::default();
    let mut smoke = false;
    let mut router_backends = 0usize;
    let mut hedge_ms = 20u64;
    let mut stall_period_ms = 280u64;
    let mut stall_ms = 90u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} expects a number"))
        };
        match arg.as_str() {
            "--conns" => config.conns = value("--conns"),
            "--requests" => config.requests_per_conn = value("--requests"),
            "--window" => config.window = value("--window"),
            "--insns" => config.insns = value("--insns"),
            "--deadline-ms" => config.deadline_ms = Some(value("--deadline-ms") as u64),
            "--workers" => config.workers = value("--workers"),
            "--router" => router_backends = value("--router"),
            "--hedge-ms" => hedge_ms = value("--hedge-ms") as u64,
            "--stall-period-ms" => stall_period_ms = value("--stall-period-ms") as u64,
            "--stall-ms" => stall_ms = value("--stall-ms") as u64,
            "--smoke" => smoke = true,
            other => panic!("unknown argument: {other}"),
        }
    }
    if smoke {
        config = LoadConfig {
            conns: 3,
            requests_per_conn: 20,
            window: 8,
            insns: 40,
            deadline_ms: None,
            workers: 2,
        };
        if router_backends > 0 {
            router_backends = 3;
            // Long enough that every warm round spans at least one full
            // stall window (wall > period + width), so best-of-rounds
            // cannot dodge the injected stragglers on any topology.
            config.requests_per_conn = 220;
            // Light pipelining keeps the healthy-path latency well under
            // the hedge budget, so hedges fire on stalls, not on load.
            config.window = 2;
            hedge_ms = 20;
            stall_period_ms = 280;
            stall_ms = 90;
        }
    }

    if router_backends > 0 {
        run_router_mode(
            router_backends,
            hedge_ms,
            (stall_period_ms, stall_ms),
            config,
            smoke,
        );
        return;
    }

    let bench = run(config);
    println!("{}", dexlego_bench::service::format(&bench));

    if smoke {
        assert_eq!(bench.cold.protocol_errors, 0, "cold pass protocol errors");
        assert_eq!(bench.warm.protocol_errors, 0, "warm pass protocol errors");
        let expected = bench.config.conns * bench.config.requests_per_conn;
        assert_eq!(bench.cold.completed, expected, "cold pass lost replies");
        assert_eq!(bench.warm.completed, expected, "warm pass lost replies");
        assert!(
            bench.warm.rps > bench.cold.rps,
            "warm pass should outrun the cold pass: {:.1} vs {:.1} rps",
            bench.warm.rps,
            bench.cold.rps
        );
        assert!(
            bench.pipelining_speedup > 1.0,
            "pipelining should beat serial turnaround: {:.2}x",
            bench.pipelining_speedup
        );
        eprintln!("service load smoke: ok");
    }
}

fn run_router_mode(
    backends: usize,
    hedge_ms: u64,
    stall: (u64, u64),
    load: LoadConfig,
    smoke: bool,
) {
    let bench = run_fleet(FleetConfig {
        backends,
        hedge_ms,
        stall_period_ms: stall.0,
        stall_ms: stall.1,
        load,
    });
    println!("{}", dexlego_bench::router::format(&bench));

    if smoke {
        let expected = bench.config.load.conns * bench.config.load.requests_per_conn;
        for (name, pass) in [
            ("cold", &bench.cold),
            ("warm_hedged", &bench.warm_hedged),
            ("warm_unhedged", &bench.warm_unhedged),
            ("single_warm", &bench.single_warm),
            ("kill_one_backend", &bench.kill),
        ] {
            assert_eq!(pass.protocol_errors, 0, "{name} pass saw error replies");
            assert_eq!(pass.completed, expected, "{name} pass lost replies");
        }
        assert_eq!(
            bench.counters.fleet_errors, 0,
            "no request exhausted every candidate"
        );
        assert!(
            bench.counters.replica_fills > 0,
            "fresh fills were replicated"
        );
        assert!(
            bench.warm_hedged.latency.p999_us <= bench.single_warm.latency.p999_us,
            "hedged fleet warm p999 ({}us) lost to the single-backend baseline ({}us)",
            bench.warm_hedged.latency.p999_us,
            bench.single_warm.latency.p999_us
        );
        eprintln!("router fleet smoke: ok");
    }
}
