//! `dexlegod` load generator: latency distribution and sustained RPS, as
//! one JSON line (the format checked in as BENCH_service.json).
//!
//! ```text
//! cargo run -p dexlego-bench --bin service --release -- \
//!     [--conns N] [--requests N] [--window N] [--insns N] \
//!     [--deadline-ms N] [--workers N] [--smoke]
//! ```
//!
//! `--smoke` runs a small fixed shape and asserts the qualitative
//! invariants (`verify.sh` uses it as a regression gate): no protocol
//! errors, a fully warm second pass, and pipelining beating the serial
//! one-in-flight protocol on the warm path.

use dexlego_bench::service::{run, LoadConfig};

fn main() {
    let mut config = LoadConfig::default();
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} expects a number"))
        };
        match arg.as_str() {
            "--conns" => config.conns = value("--conns"),
            "--requests" => config.requests_per_conn = value("--requests"),
            "--window" => config.window = value("--window"),
            "--insns" => config.insns = value("--insns"),
            "--deadline-ms" => config.deadline_ms = Some(value("--deadline-ms") as u64),
            "--workers" => config.workers = value("--workers"),
            "--smoke" => smoke = true,
            other => panic!("unknown argument: {other}"),
        }
    }
    if smoke {
        config = LoadConfig {
            conns: 3,
            requests_per_conn: 20,
            window: 8,
            insns: 40,
            deadline_ms: None,
            workers: 2,
        };
    }

    let bench = run(config);
    println!("{}", dexlego_bench::service::format(&bench));

    if smoke {
        assert_eq!(bench.cold.protocol_errors, 0, "cold pass protocol errors");
        assert_eq!(bench.warm.protocol_errors, 0, "warm pass protocol errors");
        let expected = bench.config.conns * bench.config.requests_per_conn;
        assert_eq!(bench.cold.completed, expected, "cold pass lost replies");
        assert_eq!(bench.warm.completed, expected, "warm pass lost replies");
        assert!(
            bench.warm.rps > bench.cold.rps,
            "warm pass should outrun the cold pass: {:.1} vs {:.1} rps",
            bench.warm.rps,
            bench.cold.rps
        );
        assert!(
            bench.pipelining_speedup > 1.0,
            "pipelining should beat serial turnaround: {:.2}x",
            bench.pipelining_speedup
        );
        eprintln!("service load smoke: ok");
    }
}
