//! Cold vs warm `dexlegod` throughput, as one JSON line.
//!
//! ```text
//! cargo run -p dexlego-bench --bin service [-- --apps N --insns N]
//! ```

fn main() {
    let mut apps = 6usize;
    let mut insns = 80usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} expects a number"))
        };
        match arg.as_str() {
            "--apps" => apps = value("--apps"),
            "--insns" => insns = value("--insns"),
            other => panic!("unknown argument: {other}"),
        }
    }
    let bench = dexlego_bench::service::run(apps, insns);
    println!("{}", dexlego_bench::service::format(&bench));
}
