//! Regenerates Table VIII.
fn main() {
    println!(
        "{}",
        dexlego_bench::table8::format(&dexlego_bench::table8::run())
    );
}
