//! Regenerates Figure 6.
fn main() {
    println!(
        "{}",
        dexlego_bench::fig6::format(&dexlego_bench::fig6::run())
    );
}
