//! Interpreter fetch microbenchmark, as one JSON line (BENCH_interp.json).
//!
//! ```text
//! cargo run -p dexlego-bench --release --bin interp \
//!     [-- --iters N --repeats N --filter PATTERN --smoke --quick-smoke]
//! ```
//!
//! `--filter` restricts the run to workloads whose name matches the given
//! pattern (literal chars, `.`, `*`, `^`, `$` — see `dexlego_bench::filter`).
//! `--smoke` runs a reduced workload and asserts the predecoded cache is
//! not slower than per-step decoding; `--quick-smoke` implies `--smoke`
//! and additionally asserts the quickened fast path is not slower either
//! (used by `verify.sh`).

use dexlego_bench::filter::Pattern;

fn main() {
    let mut iters = 200_000i32;
    let mut repeats = 5u32;
    let mut smoke = false;
    let mut quick_smoke = false;
    let mut filter: Option<Pattern> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" | "--repeats" | "--filter" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| panic!("{arg} expects a value"));
                match arg.as_str() {
                    "--iters" => iters = value.parse().expect("--iters expects a number"),
                    "--repeats" => repeats = value.parse().expect("--repeats expects a number"),
                    _ => {
                        filter =
                            Some(Pattern::new(&value).unwrap_or_else(|e| panic!("--filter: {e}")));
                    }
                }
            }
            "--smoke" => smoke = true,
            "--quick-smoke" => quick_smoke = true,
            other => panic!("unknown argument: {other}"),
        }
    }
    if smoke || quick_smoke {
        iters = 20_000;
        repeats = 3;
    }
    let results = dexlego_bench::interp::run_filtered(iters, repeats, filter.as_ref());
    assert!(!results.is_empty(), "--filter matched no workload");
    println!("{}", dexlego_bench::interp::format(&results));
    if smoke || quick_smoke {
        for r in &results {
            assert!(
                r.speedup() >= 1.0,
                "{}: predecoded fetch slower than per-step ({:.2}x)",
                r.name,
                r.speedup()
            );
        }
        eprintln!("interp smoke: predecoded >= per-step on all workloads");
    }
    if quick_smoke {
        for r in &results {
            eprintln!(
                "interp quick-smoke: {} quickened {:.2}x vs per-step ({:.2}x predecoded)",
                r.name,
                r.quick_speedup(),
                r.speedup()
            );
            assert!(
                r.quick_speedup() >= 1.0,
                "{}: quickened path slower than per-step ({:.2}x)",
                r.name,
                r.quick_speedup()
            );
        }
    }
}
