//! Interpreter fetch microbenchmark, as one JSON line (BENCH_interp.json).
//!
//! ```text
//! cargo run -p dexlego-bench --release --bin interp [-- --iters N --repeats N --smoke]
//! ```
//!
//! `--smoke` runs a reduced workload and asserts the predecoded cache is
//! not slower than per-step decoding (used by `verify.sh`).

fn main() {
    let mut iters = 200_000i32;
    let mut repeats = 5u32;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> i64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} expects a number"))
        };
        match arg.as_str() {
            "--iters" => iters = value("--iters") as i32,
            "--repeats" => repeats = value("--repeats") as u32,
            "--smoke" => smoke = true,
            other => panic!("unknown argument: {other}"),
        }
    }
    if smoke {
        iters = 20_000;
        repeats = 3;
    }
    let results = dexlego_bench::interp::run(iters, repeats);
    println!("{}", dexlego_bench::interp::format(&results));
    if smoke {
        for r in &results {
            assert!(
                r.speedup() >= 1.0,
                "{}: predecoded fetch slower than per-step ({:.2}x)",
                r.name,
                r.speedup()
            );
        }
        eprintln!("interp smoke: predecoded >= per-step on all workloads");
    }
}
