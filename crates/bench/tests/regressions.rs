//! Regression tests pinning the experiment results to the paper's numbers.
//!
//! The Table II/III experiment runs the full 134-sample corpus through all
//! three tools four times — a couple of minutes in debug builds — so it is
//! `#[ignore]`d by default; run with
//! `cargo test -p dexlego-bench --release -- --ignored`.

use dexlego_bench::{fig5, table2, table4};

#[test]
#[ignore = "full-corpus experiment; run with --release -- --ignored"]
fn tables_2_and_3_match_the_paper_exactly() {
    let results = table2::run();
    let tp_fp = |outcomes: &[table2::ToolOutcome]| -> Vec<(usize, usize)> {
        outcomes
            .iter()
            .map(|o| (o.confusion.tp, o.confusion.fp))
            .collect()
    };
    // Table II, "Original": FlowDroid 81/10, DroidSafe 95/12, HornDroid 98/9.
    assert_eq!(tp_fp(&results.original), vec![(81, 10), (95, 12), (98, 9)]);
    // Table II, "DexLego": 95/4, 105/7, 106/4.
    assert_eq!(tp_fp(&results.dexlego), vec![(95, 4), (105, 7), (106, 4)]);
    // Table III, DexHunter/AppSpear on packed samples: 84/10, 98/12, 101/9.
    assert_eq!(
        tp_fp(&results.baseline_unpacked),
        vec![(84, 10), (98, 12), (101, 9)]
    );

    // Figure 5 shape: DexLego's F-measure beats the baselines for every
    // tool, and the baselines improve on the packed originals by < 3
    // percentage points relative to original analysis (paper: "the
    // improvement introduced by DexHunter and AppSpear is less than 3%").
    for m in fig5::run(&results) {
        assert!(m.dexlego > m.original, "{}: DexLego improves F", m.tool);
        assert!(m.dexlego > m.dexhunter, "{}: DexLego beats dumps", m.tool);
        assert!(
            (m.dexhunter - m.original).abs() < 0.06,
            "{}: dump-based improvement stays small",
            m.tool
        );
        // Paper Figure 5 end-points: 63→84 (FD), 61→80 (DS), 72→89 (HD);
        // allow a few points of slack.
        assert!(m.original > 0.55 && m.original < 0.80, "{}", m.tool);
        assert!(m.dexlego > 0.78 && m.dexlego < 0.95, "{}", m.tool);
    }
}

#[test]
fn table_4_matches_the_paper_exactly() {
    let rows = table4::run();
    let as_tuples: Vec<(&str, usize, usize, usize, usize)> = rows
        .iter()
        .map(|r| {
            (
                r.sample.as_str(),
                r.leaks,
                r.taintdroid,
                r.taintart,
                r.dexlego_hd,
            )
        })
        .collect();
    assert_eq!(
        as_tuples,
        vec![
            ("Button1", 1, 0, 0, 1),
            ("Button3", 2, 0, 0, 2),
            ("EmulatorDetection1", 1, 0, 1, 1),
            ("ImplicitFlow1", 2, 0, 0, 2),
            ("PrivateDataLeak3", 2, 1, 1, 1),
        ]
    );
}

#[test]
fn table_5_reveals_every_flow() {
    let rows = dexlego_bench::table5::run();
    for (row, &(_, _, _, _, expected)) in rows.iter().zip(dexlego_bench::table5::APPS.iter()) {
        assert_eq!(
            row.original, 0,
            "{}: packed original must look clean",
            row.package
        );
        assert_eq!(
            row.revealed, expected,
            "{}: revealed flow count",
            row.package
        );
    }
}
