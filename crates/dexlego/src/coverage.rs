//! Coverage measurement (JaCoCo analogue) and the Sapienz-style event
//! fuzzer used as the baseline input generator (paper §V-D, Table VII).

use std::collections::{HashMap, HashSet};

use dexlego_dalvik::{decode_method, Decoded};
use dexlego_runtime::class::{MethodImpl, SigKey};
use dexlego_runtime::observer::{InsnEvent, RuntimeObserver};
use dexlego_runtime::{MethodId, Runtime, Slot};

/// Records executed instructions and branch directions per method.
#[derive(Debug, Default)]
pub struct CoverageRecorder {
    executed: HashMap<MethodId, HashSet<u32>>,
    branches: HashSet<(MethodId, u32, bool)>,
    entered: HashSet<MethodId>,
}

impl CoverageRecorder {
    /// Creates an empty recorder.
    pub fn new() -> CoverageRecorder {
        CoverageRecorder::default()
    }

    /// Executed `dex_pc` set for a method.
    pub fn executed_pcs(&self, method: MethodId) -> Option<&HashSet<u32>> {
        self.executed.get(&method)
    }
}

impl RuntimeObserver for CoverageRecorder {
    fn on_method_enter(&mut self, _rt: &Runtime, method: MethodId) {
        self.entered.insert(method);
    }
    fn on_instruction(&mut self, _rt: &Runtime, ev: &InsnEvent<'_>) {
        self.executed
            .entry(ev.method)
            .or_default()
            .insert(ev.dex_pc);
    }
    fn on_branch(&mut self, _rt: &Runtime, method: MethodId, dex_pc: u32, taken: bool) {
        self.branches.insert((method, dex_pc, taken));
    }
}

/// Coverage percentages at the granularities of Table VII.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CoverageReport {
    /// Classes with at least one executed instruction / app classes.
    pub class: f64,
    /// Methods entered / app bytecode methods.
    pub method: f64,
    /// Basic blocks touched / basic blocks ("line" analogue: our synthetic
    /// sources have no debug line table, and JaCoCo lines map 1:1-ish onto
    /// leaders of basic blocks for straight-line statements).
    pub line: f64,
    /// Branch directions taken / (2 × conditional branches).
    pub branch: f64,
    /// Executed instructions / total instructions.
    pub instruction: f64,
}

fn percent(hit: usize, total: usize) -> f64 {
    if total == 0 {
        100.0
    } else {
        100.0 * hit as f64 / total as f64
    }
}

/// Measures coverage of all non-framework bytecode methods.
pub fn measure(rt: &Runtime, recorder: &CoverageRecorder) -> CoverageReport {
    let mut total_insns = 0usize;
    let mut hit_insns = 0usize;
    let mut total_methods = 0usize;
    let mut hit_methods = 0usize;
    let mut total_branches = 0usize;
    let mut hit_branches = 0usize;
    let mut total_blocks = 0usize;
    let mut hit_blocks = 0usize;
    let mut classes_total: HashSet<&str> = HashSet::new();
    let mut classes_hit: HashSet<&str> = HashSet::new();

    for method in rt.method_ids() {
        let m = rt.method(method);
        let class = rt.class(m.class);
        if class.source == "<framework>" {
            continue;
        }
        let MethodImpl::Bytecode { insns, .. } = &m.body else {
            continue;
        };
        let Ok(decoded) = decode_method(insns) else {
            continue;
        };
        classes_total.insert(&class.descriptor);
        total_methods += 1;
        let executed = recorder.executed.get(&method);
        if recorder.entered.contains(&method) {
            hit_methods += 1;
            classes_hit.insert(&class.descriptor);
        }

        // Leaders of basic blocks: entry, branch targets, post-branch pcs.
        let mut leaders: HashSet<u32> = HashSet::new();
        leaders.insert(0);
        let mut insn_pcs: Vec<u32> = Vec::new();
        for (pc, d) in &decoded {
            let Decoded::Insn(insn) = d else { continue };
            insn_pcs.push(*pc);
            total_insns += 1;
            if executed.is_some_and(|set| set.contains(pc)) {
                hit_insns += 1;
            }
            if insn.op.is_conditional_branch() {
                total_branches += 2;
                for dir in [true, false] {
                    if recorder.branches.contains(&(method, *pc, dir)) {
                        hit_branches += 1;
                    }
                }
                leaders.insert(insn.target(*pc));
                leaders.insert(pc + insn.units() as u32);
            } else if insn.op.is_terminator() {
                leaders.insert(pc + insn.units() as u32);
                if matches!(
                    insn.op,
                    dexlego_dalvik::Opcode::Goto
                        | dexlego_dalvik::Opcode::Goto16
                        | dexlego_dalvik::Opcode::Goto32
                ) {
                    leaders.insert(insn.target(*pc));
                }
            }
        }
        // A block is hit if its leader instruction executed.
        for &leader in &leaders {
            if insn_pcs.contains(&leader) {
                total_blocks += 1;
                if executed.is_some_and(|set| set.contains(&leader)) {
                    hit_blocks += 1;
                }
            }
        }
    }

    CoverageReport {
        class: percent(classes_hit.len(), classes_total.len()),
        method: percent(hit_methods, total_methods),
        line: percent(hit_blocks, total_blocks),
        branch: percent(hit_branches, total_branches),
        instruction: percent(hit_insns, total_insns),
    }
}

/// A Sapienz-style random event fuzzer: drives an activity's lifecycle and
/// fires registered UI callbacks with pseudo-random ordering, feeding
/// pseudo-random values through the `Lcom/dexlego/Input;` native.
#[derive(Debug, Clone)]
pub struct EventFuzzer {
    /// RNG state (xorshift64).
    pub seed: u64,
    /// Number of UI events to fire per run.
    pub events: usize,
}

impl EventFuzzer {
    /// Creates a fuzzer with the given seed.
    pub fn new(seed: u64, events: usize) -> EventFuzzer {
        EventFuzzer { seed, events }
    }

    fn next(&mut self) -> u64 {
        self.seed ^= self.seed << 13;
        self.seed ^= self.seed >> 7;
        self.seed ^= self.seed << 17;
        self.seed
    }

    /// Runs one fuzzing session against `activity_desc`: constructs the
    /// activity, invokes `onCreate`, then fires random callbacks.
    /// Execution errors are swallowed (a fuzzer keeps going after crashes).
    pub fn run(&mut self, rt: &mut Runtime, obs: &mut dyn RuntimeObserver, activity_desc: &str) {
        rt.input_state = self.next();
        let Ok(activity) = rt.new_instance(obs, activity_desc) else {
            return;
        };
        let Some(class) = rt.find_class(activity_desc) else {
            return;
        };
        if let Some(on_create) =
            rt.resolve_method(class, &SigKey::new("onCreate", "(Landroid/os/Bundle;)V"))
        {
            let _ = rt.call_method(obs, on_create, &[Slot::of(activity), Slot::of(0)]);
        }
        for _ in 0..self.events {
            if rt.callbacks.is_empty() {
                break;
            }
            let pick = (self.next() % rt.callbacks.len() as u64) as usize;
            let cb = rt.callbacks[pick].clone();
            rt.input_state = self.next();
            rt.callback_depth += 1;
            let _ = rt.call_method(obs, cb.method, &[Slot::of(cb.receiver), Slot::of(0)]);
            rt.callback_depth -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_handles_zero_total() {
        assert_eq!(percent(0, 0), 100.0);
        assert_eq!(percent(1, 4), 25.0);
    }

    #[test]
    fn fuzzer_rng_is_deterministic() {
        let mut a = EventFuzzer::new(42, 5);
        let mut b = EventFuzzer::new(42, 5);
        for _ in 0..10 {
            assert_eq!(a.next(), b.next());
        }
    }
}
