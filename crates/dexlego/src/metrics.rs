//! A lightweight metrics sink threaded through the pipeline.
//!
//! Every [`crate::pipeline::reveal`] produces a [`PipelineMetrics`] inside
//! its [`crate::pipeline::RevealOutcome`]: named phase timings (collect,
//! serialize, tree-merge, dexgen, canonicalize, verify, validate) plus
//! counters (collected methods/classes/instructions, emitted guards,
//! verifier lints). The batch harness serialises these into its per-job JSON
//! report so corpus runs expose where pipeline time goes without a profiler.

use std::time::Instant;

/// Ordered phase timings and counters for one pipeline run.
///
/// Phases and counters are small append-only association lists rather than
/// hash maps: a pipeline run records fewer than ten of each, lookups are
/// rare, and insertion order (= execution order) is meaningful in reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineMetrics {
    phases: Vec<(&'static str, u64)>,
    counters: Vec<(&'static str, u64)>,
}

impl PipelineMetrics {
    /// Creates an empty sink.
    pub fn new() -> PipelineMetrics {
        PipelineMetrics::default()
    }

    /// Times `f`, recording the elapsed microseconds under `phase`, and
    /// returns its result.
    pub fn time<T>(&mut self, phase: &'static str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let value = f();
        self.record_phase_us(phase, start.elapsed().as_micros() as u64);
        value
    }

    /// Adds `us` microseconds to `phase` (created at the current position
    /// if new).
    pub fn record_phase_us(&mut self, phase: &'static str, us: u64) {
        match self.phases.iter_mut().find(|(p, _)| *p == phase) {
            Some((_, total)) => *total += us,
            None => self.phases.push((phase, us)),
        }
    }

    /// Adds `n` to `counter` (created at the current position if new).
    pub fn count(&mut self, counter: &'static str, n: u64) {
        match self.counters.iter_mut().find(|(c, _)| *c == counter) {
            Some((_, total)) => *total += n,
            None => self.counters.push((counter, n)),
        }
    }

    /// Phase timings in execution order, as (name, microseconds).
    pub fn phases(&self) -> &[(&'static str, u64)] {
        &self.phases
    }

    /// Counters in recording order, as (name, value).
    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }

    /// Microseconds recorded for `phase`, if any.
    pub fn phase_us(&self, phase: &str) -> Option<u64> {
        self.phases
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|&(_, us)| us)
    }

    /// Value of `counter`, if recorded.
    pub fn counter(&self, counter: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(c, _)| *c == counter)
            .map(|&(_, n)| n)
    }

    /// Total time across all recorded phases, in microseconds.
    pub fn total_us(&self) -> u64 {
        self.phases.iter().map(|&(_, us)| us).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_and_keep_order() {
        let mut m = PipelineMetrics::new();
        m.record_phase_us("a", 3);
        m.record_phase_us("b", 5);
        m.record_phase_us("a", 4);
        assert_eq!(m.phases(), &[("a", 7), ("b", 5)]);
        assert_eq!(m.phase_us("b"), Some(5));
        assert_eq!(m.phase_us("missing"), None);
        assert_eq!(m.total_us(), 12);
    }

    #[test]
    fn counters_accumulate() {
        let mut m = PipelineMetrics::new();
        m.count("methods", 2);
        m.count("methods", 3);
        assert_eq!(m.counter("methods"), Some(5));
    }

    #[test]
    fn time_records_and_passes_through() {
        let mut m = PipelineMetrics::new();
        let v = m.time("work", || 41 + 1);
        assert_eq!(v, 42);
        assert!(m.phase_us("work").is_some());
    }
}
