//! Stable digests of pipeline inputs.
//!
//! The persistent result store (`dexlego-store`) keys cached extraction
//! results by *what went into the pipeline*: the original DEX bytes, the
//! packer profile, every driving parameter that can change the collection
//! (seeds, events, fuel, conformance checking), and the extractor version.
//! Two runs with equal digests are guaranteed to produce the same revealed
//! DEX, so a cached result can be served instead of re-extracting.
//!
//! The digest is an SHA-1 over a canonical byte encoding: each field is
//! written as `tag-length ‖ tag ‖ value-length ‖ value` (lengths as
//! little-endian `u32`), which makes the encoding prefix-free — no two
//! distinct field sequences serialise to the same bytes, so `("ab", "c")`
//! and `("a", "bc")` never collide.

use dexlego_dex::checksum::sha1;

/// Version stamp mixed into every input digest.
///
/// Bump the suffix whenever collection or reassembly *semantics* change
/// (new merge strategy, different canonicalisation, verifier gate changes):
/// stale cache entries from older pipelines then miss instead of serving
/// results the current code would not produce.
pub const EXTRACTOR_VERSION: &str = concat!("dexlego-", env!("CARGO_PKG_VERSION"), "+pipeline.4");

/// Accumulates tagged fields into a canonical byte stream and digests it.
///
/// # Example
///
/// ```
/// use dexlego_core::digest::InputDigest;
///
/// let mut d = InputDigest::new();
/// d.bytes("dex", b"\x64\x65\x78");
/// d.str("packer", "360");
/// d.u64("fuel", 10_000_000);
/// let a = d.finish_hex();
/// assert_eq!(a.len(), 40);
///
/// // Field order and values are significant.
/// let mut e = InputDigest::new();
/// e.bytes("dex", b"\x64\x65\x78");
/// e.str("packer", "Baidu");
/// e.u64("fuel", 10_000_000);
/// assert_ne!(a, e.finish_hex());
/// ```
#[derive(Debug, Clone)]
pub struct InputDigest {
    buf: Vec<u8>,
}

impl InputDigest {
    /// A digest seeded with [`EXTRACTOR_VERSION`].
    pub fn new() -> InputDigest {
        let mut d = InputDigest { buf: Vec::new() };
        d.bytes("version", EXTRACTOR_VERSION.as_bytes());
        d
    }

    /// Appends a tagged byte field.
    pub fn bytes(&mut self, tag: &str, value: &[u8]) {
        self.buf
            .extend_from_slice(&(tag.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(tag.as_bytes());
        self.buf
            .extend_from_slice(&(value.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(value);
    }

    /// Appends a tagged string field.
    pub fn str(&mut self, tag: &str, value: &str) {
        self.bytes(tag, value.as_bytes());
    }

    /// Appends a tagged integer field.
    pub fn u64(&mut self, tag: &str, value: u64) {
        self.bytes(tag, &value.to_le_bytes());
    }

    /// Appends a tagged boolean field.
    pub fn flag(&mut self, tag: &str, value: bool) {
        self.bytes(tag, &[u8::from(value)]);
    }

    /// The SHA-1 digest of everything appended so far.
    pub fn finish(&self) -> [u8; 20] {
        sha1(&self.buf)
    }

    /// [`finish`](InputDigest::finish) as 40 lowercase hex characters.
    pub fn finish_hex(&self) -> String {
        self.finish().iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl Default for InputDigest {
    fn default() -> InputDigest {
        InputDigest::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic() {
        let build = || {
            let mut d = InputDigest::new();
            d.bytes("dex", &[1, 2, 3]);
            d.u64("fuel", 42);
            d.flag("conformance", true);
            d.finish_hex()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn digest_depends_on_every_field() {
        let base = {
            let mut d = InputDigest::new();
            d.bytes("dex", &[1, 2, 3]);
            d.u64("fuel", 42);
            d.flag("conformance", true);
            d.finish_hex()
        };
        let variants = [
            {
                let mut d = InputDigest::new();
                d.bytes("dex", &[1, 2, 4]);
                d.u64("fuel", 42);
                d.flag("conformance", true);
                d.finish_hex()
            },
            {
                let mut d = InputDigest::new();
                d.bytes("dex", &[1, 2, 3]);
                d.u64("fuel", 43);
                d.flag("conformance", true);
                d.finish_hex()
            },
            {
                let mut d = InputDigest::new();
                d.bytes("dex", &[1, 2, 3]);
                d.u64("fuel", 42);
                d.flag("conformance", false);
                d.finish_hex()
            },
        ];
        for v in variants {
            assert_ne!(base, v);
        }
    }

    #[test]
    fn encoding_is_prefix_free() {
        // ("ab", "c") vs ("a", "bc"): same concatenated payload, different
        // digests thanks to the length prefixes.
        let mut d1 = InputDigest::new();
        d1.str("t", "ab");
        d1.str("t", "c");
        let mut d2 = InputDigest::new();
        d2.str("t", "a");
        d2.str("t", "bc");
        assert_ne!(d1.finish_hex(), d2.finish_hex());
    }

    #[test]
    fn version_is_mixed_in() {
        // An empty builder still digests the version stamp, so the digest
        // of "nothing" is not SHA-1 of the empty string.
        let d = InputDigest::new();
        assert_ne!(d.finish_hex(), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert!(EXTRACTOR_VERSION.contains("pipeline"));
    }
}
