//! Converting one collection tree into a single instruction array
//! (paper §IV-B, "Converting a Tree into an Instruction Array").
//!
//! The root node's instructions are laid out in `dex_pc` order. At each
//! divergence point a synthetic conditional branch on a static boolean
//! field of the instrument class is inserted, with the taken edge leading to
//! the divergence branch's block (appended after the parent's body) and the
//! fall-through continuing into the baseline. Because the static field's
//! value is unknown to a static analyser, both the baseline and every
//! divergent variant are treated as reachable — which is exactly the
//! property the reassembly needs to expose self-modifying behaviour.
//!
//! All constant-pool indices embedded in the collected units are remapped
//! from the source DEX's pools into the output [`DexFile`], and reflective
//! `Method.invoke` call sites are replaced by direct calls to their
//! recorded targets.

use std::collections::HashMap;

use dexlego_dalvik::asm::Label;
use dexlego_dalvik::{decode_insn, Decoded, Insn, MethodAssembler, Opcode};
use dexlego_dex::{CodeItem, DexFile};

use crate::collect::tree::{CollectedInsn, CollectionTree, NodeId};
use crate::files::{MethodRecord, PoolRecord, ReflectionTarget};
use crate::reassemble::dexgen::GuardAlloc;
use crate::reassemble::parse_descriptor;
use crate::{DexLegoError, Result};

/// Everything needed to merge one tree of one method.
pub struct MergeInput<'a> {
    /// The method's collection record.
    pub record: &'a MethodRecord,
    /// The tree to merge.
    pub tree: &'a CollectionTree,
    /// Constant pools of the source the units reference.
    pub pool: &'a PoolRecord,
    /// Reflection targets by call-site `dex_pc` within this method.
    pub reflection: &'a HashMap<u32, Vec<ReflectionTarget>>,
}

struct Emitter<'d, 'i> {
    dex: &'d mut DexFile,
    guards: &'d mut GuardAlloc,
    asm: MethodAssembler,
    labels: HashMap<(NodeId, u32), Label>,
    trap: Option<Label>,
    guard_reg: u32,
    input: &'i MergeInput<'i>,
}

/// Merges `input.tree` into a [`CodeItem`].
///
/// The produced code has one extra register (the guard/scratch register) and
/// a prologue that moves the argument registers down to their original
/// positions, so every collected instruction keeps its original register
/// numbers.
///
/// # Errors
///
/// Returns [`DexLegoError::Reassembly`] for structurally impossible input
/// (e.g. a method already using 256 registers) and propagates
/// encode/decode failures.
pub fn merge_tree(
    dex: &mut DexFile,
    guards: &mut GuardAlloc,
    input: &MergeInput<'_>,
) -> Result<CodeItem> {
    let old_registers = u32::from(input.record.registers);
    let guard_reg = old_registers;
    if guard_reg > 255 {
        return Err(DexLegoError::Reassembly(format!(
            "{}: cannot allocate guard register above v255",
            input.record.key
        )));
    }

    let mut emitter = Emitter {
        dex,
        guards,
        asm: MethodAssembler::new(),
        labels: HashMap::new(),
        trap: None,
        guard_reg,
        input,
    };

    // Pre-create a label for every collected (node, dex_pc).
    for (node_id, node) in input.tree.nodes().iter().enumerate() {
        for ins in &node.il {
            let label = emitter.asm.new_label();
            emitter.labels.insert((node_id, ins.dex_pc), label);
        }
    }

    emitter.emit_prologue();
    emitter.emit_node(input.tree.root(), &[input.tree.root()])?;
    // Handlers that were never executed are retargeted to the trap block;
    // make sure it exists before assembly when any try region survives.
    let root_pcs: std::collections::HashSet<u32> =
        input.tree.node(0).il.iter().map(|i| i.dex_pc).collect();
    let needs_trap_handler = input.record.tries.iter().any(|t| {
        let covered = (t.start..t.start + t.count).any(|pc| root_pcs.contains(&pc));
        let unresolved_handler = t
            .catches
            .iter()
            .map(|(_, pc)| *pc)
            .chain(t.catch_all)
            .any(|pc| !root_pcs.contains(&pc));
        covered && unresolved_handler
    });
    if needs_trap_handler {
        emitter.trap_label();
    }
    emitter.emit_trap_block();

    let trap = emitter.trap;
    let (insns, labels) = emitter
        .asm
        .assemble_with_labels()
        .map_err(DexLegoError::Dalvik)?;

    // ---- try/catch remapping (paper: the reassembled DEX keeps the
    // method's exception structure; clauses whose handlers were never
    // executed point at the trap block) -----------------------------------
    let addr_of = |pc: u32| -> Option<u32> {
        emitter
            .labels
            .get(&(0, pc))
            .and_then(|l| labels.get(l))
            .copied()
    };
    let trap_addr = trap.and_then(|l| labels.get(&l)).copied();
    let mut tries = Vec::new();
    let mut handlers = Vec::new();
    for record_try in &input.record.tries {
        // New range: the span of collected instructions inside the old one.
        let mut lo: Option<u32> = None;
        let mut hi: Option<u32> = None;
        for ins in &input.tree.node(0).il {
            if ins.dex_pc >= record_try.start && ins.dex_pc < record_try.start + record_try.count {
                if let Some(addr) = addr_of(ins.dex_pc) {
                    let end = addr + ins.units.len() as u32;
                    lo = Some(lo.map_or(addr, |v: u32| v.min(addr)));
                    hi = Some(hi.map_or(end, |v: u32| v.max(end)));
                }
            }
        }
        let (Some(lo), Some(hi)) = (lo, hi) else {
            continue;
        };
        let mut handler = dexlego_dex::EncodedCatchHandler::default();
        for (desc, pc) in &record_try.catches {
            let Some(addr) = addr_of(*pc).or(trap_addr) else {
                continue;
            };
            handler.catches.push(dexlego_dex::code::CatchClause {
                type_idx: emitter.dex.intern_type(desc),
                addr,
            });
        }
        if let Some(pc) = record_try.catch_all {
            handler.catch_all_addr = addr_of(pc).or(trap_addr);
        }
        if handler.catches.is_empty() && handler.catch_all_addr.is_none() {
            continue;
        }
        tries.push(dexlego_dex::TryItem {
            start_addr: lo,
            insn_count: (hi - lo) as u16,
            handler_index: handlers.len(),
        });
        handlers.push(handler);
    }
    tries.sort_by_key(|t| t.start_addr);

    Ok(CodeItem {
        registers_size: input.record.registers + 1,
        ins_size: input.record.ins,
        outs_size: 8,
        insns,
        tries,
        handlers,
    })
}

impl Emitter<'_, '_> {
    /// Moves the incoming arguments (now one register higher because of the
    /// added guard register) down to their original positions.
    fn emit_prologue(&mut self) {
        let record = self.input.record;
        let ins = u32::from(record.ins);
        if ins == 0 {
            return;
        }
        let old_base = u32::from(record.registers) - ins;
        // Parameter kinds in register order: `this` (instance methods) then
        // declared parameters.
        let is_static = record.access & 0x8 != 0;
        let mut kinds: Vec<MoveKind> = Vec::new();
        if !is_static {
            kinds.push(MoveKind::Object);
        }
        for p in &record.params {
            kinds.push(match p.as_str() {
                "J" | "D" => MoveKind::Wide,
                s if s.starts_with('L') || s.starts_with('[') => MoveKind::Object,
                _ => MoveKind::Single,
            });
        }
        let mut offset = 0u32;
        for kind in kinds {
            let dst = old_base + offset;
            let src = dst + 1;
            let op = match kind {
                MoveKind::Single if dst <= 0xf && src <= 0xf => Opcode::Move,
                MoveKind::Single => Opcode::MoveFrom16,
                MoveKind::Wide if dst <= 0xf && src <= 0xf => Opcode::MoveWide,
                MoveKind::Wide => Opcode::MoveWideFrom16,
                MoveKind::Object if dst <= 0xf && src <= 0xf => Opcode::MoveObject,
                MoveKind::Object => Opcode::MoveObjectFrom16,
            };
            let mut insn = Insn::of(op);
            insn.a = dst;
            insn.b = src;
            self.asm.push(insn);
            offset += match kind {
                MoveKind::Wide => 2,
                _ => 1,
            };
        }
    }

    fn emit_node(&mut self, node_id: NodeId, chain: &[NodeId]) -> Result<()> {
        let node = self.input.tree.node(node_id).clone();
        let mut entries: Vec<&CollectedInsn> = node.il.iter().collect();
        entries.sort_by_key(|e| e.dex_pc);

        for (i, entry) in entries.iter().enumerate() {
            let label = self.labels[&(node_id, entry.dex_pc)];
            self.asm.bind(label);

            // Divergence guards: one per child forking at this dex_pc
            // (paper Code 4: `if (Modification.guard) { baseline } else
            // { divergent }` — here the taken edge is the divergent block).
            for &child in &node.children {
                if self.input.tree.node(child).sm_start == entry.dex_pc {
                    let field = self.guards.next_field(self.dex);
                    let mut sget = Insn::of(Opcode::SgetBoolean);
                    sget.a = self.guard_reg;
                    sget.idx = field;
                    self.asm.push(sget);
                    let child_entry = self.labels[&(child, entry.dex_pc)];
                    self.asm.if_z(Opcode::IfNez, self.guard_reg, child_entry);
                }
            }

            let insn = self.decode_entry(entry)?;
            let op = insn.op;
            self.emit_insn(entry, insn, chain)?;

            // Preserve fall-through: if the next collected instruction in
            // layout order is not the physical successor, redirect.
            if !op.is_terminator() {
                let fall_through = entry.dex_pc + op.format().units() as u32;
                let next_is_contiguous =
                    entries.get(i + 1).is_some_and(|n| n.dex_pc == fall_through);
                if !next_is_contiguous {
                    let target = self.resolve_or_trap(fall_through, chain);
                    self.asm.goto(target);
                }
            }
        }

        // Child divergence blocks, after the parent's body.
        for &child in &node.children {
            let mut child_chain = vec![child];
            child_chain.extend_from_slice(chain);
            self.emit_node(child, &child_chain)?;
            // Convergence: jump back into the parent flow.
            let child_node = self.input.tree.node(child);
            let last = child_node.il.iter().max_by_key(|e| e.dex_pc);
            let ends_with_terminator = last
                .and_then(|e| decode_insn(&e.units, 0).ok())
                .and_then(|d| d.as_insn().map(|i| i.op.is_terminator()))
                .unwrap_or(false);
            if !ends_with_terminator {
                let target = match child_node.sm_end {
                    Some(end) => self.resolve_or_trap(end, chain),
                    None => self.trap_label(),
                };
                self.asm.goto(target);
            }
        }
        Ok(())
    }

    fn decode_entry(&self, entry: &CollectedInsn) -> Result<Insn> {
        match decode_insn(&entry.units, 0).map_err(DexLegoError::Dalvik)? {
            Decoded::Insn(insn) => Ok(insn),
            _ => Err(DexLegoError::Reassembly(format!(
                "{}: collected payload at dex_pc {}",
                self.input.record.key, entry.dex_pc
            ))),
        }
    }

    fn emit_insn(&mut self, entry: &CollectedInsn, mut insn: Insn, chain: &[NodeId]) -> Result<()> {
        // Reflection replacement (paper §IV-D): a recorded Method.invoke
        // call site becomes direct call(s) to the resolved target(s).
        if insn.op.is_invoke() && insn.regs.len() >= 3 {
            if let Some(targets) = self.input.reflection.get(&entry.dex_pc) {
                if self.is_reflective_invoke(&insn) {
                    let targets = targets.clone();
                    return self.emit_direct_calls(&insn, &targets);
                }
            }
        }

        // Remap the constant-pool index into the output DEX.
        insn.idx = self.remap_index(&insn)?;

        match insn.op {
            Opcode::Goto | Opcode::Goto16 | Opcode::Goto32 => {
                let target = self.resolve_or_trap(insn.target(entry.dex_pc), chain);
                self.asm.goto(target);
            }
            op if op.is_conditional_branch() => {
                let target = self.resolve_or_trap(insn.target(entry.dex_pc), chain);
                self.asm.branch(insn, target);
            }
            Opcode::PackedSwitch | Opcode::SparseSwitch | Opcode::FillArrayData => {
                self.emit_payload_insn(entry, &insn, chain)?;
            }
            _ => {
                self.asm.push(insn);
            }
        }
        Ok(())
    }

    fn emit_payload_insn(
        &mut self,
        entry: &CollectedInsn,
        insn: &Insn,
        chain: &[NodeId],
    ) -> Result<()> {
        let Some((_, payload_units)) = &entry.payload else {
            return Err(DexLegoError::Reassembly(format!(
                "{}: {} at dex_pc {} has no captured payload",
                self.input.record.key,
                insn.op.mnemonic(),
                entry.dex_pc
            )));
        };
        match decode_insn(payload_units, 0).map_err(DexLegoError::Dalvik)? {
            Decoded::PackedSwitchPayload { first_key, targets } => {
                let labels: Vec<Label> = targets
                    .iter()
                    .map(|&rel| self.resolve_or_trap(entry.dex_pc.wrapping_add(rel as u32), chain))
                    .collect();
                self.asm.packed_switch(insn.a, first_key, labels);
            }
            Decoded::SparseSwitchPayload { keys, targets } => {
                let labels: Vec<Label> = targets
                    .iter()
                    .map(|&rel| self.resolve_or_trap(entry.dex_pc.wrapping_add(rel as u32), chain))
                    .collect();
                self.asm.sparse_switch(insn.a, keys, labels);
            }
            Decoded::FillArrayDataPayload {
                element_width,
                data,
            } => {
                self.asm.fill_array_data(insn.a, element_width, data);
            }
            Decoded::Insn(_) => {
                return Err(DexLegoError::Reassembly(
                    "captured payload decodes as an instruction".into(),
                ))
            }
        }
        Ok(())
    }

    fn is_reflective_invoke(&self, insn: &Insn) -> bool {
        self.input
            .pool
            .methods
            .get(insn.idx as usize)
            .is_some_and(|(class, name, _)| {
                class == "Ljava/lang/reflect/Method;" && name == "invoke"
            })
    }

    fn emit_direct_calls(&mut self, original: &Insn, targets: &[ReflectionTarget]) -> Result<()> {
        let receiver = original.regs[1];
        let args_array = original.regs[2];
        let join = self.asm.new_label();
        let alt_labels: Vec<Label> = targets
            .iter()
            .skip(1)
            .map(|_| self.asm.new_label())
            .collect();
        // Guard chain selecting among multiple observed targets.
        for &alt in &alt_labels {
            let field = self.guards.next_field(self.dex);
            let mut sget = Insn::of(Opcode::SgetBoolean);
            sget.a = self.guard_reg;
            sget.idx = field;
            self.asm.push(sget);
            self.asm.if_z(Opcode::IfNez, self.guard_reg, alt);
        }
        let emit_one = |this: &mut Self, target: &ReflectionTarget| -> Result<()> {
            let (params, ret) = parse_descriptor(&target.key.descriptor)?;
            let param_refs: Vec<&str> = params.iter().map(String::as_str).collect();
            let idx =
                this.dex
                    .intern_method(&target.key.class, &target.key.name, &ret, &param_refs);
            // Argument mapping: the boxed Object[] register stands in for
            // the parameter list (over-approximate; static analysers treat
            // the array's taint as flowing into the callee).
            let regs: Vec<u32> = match (target.is_static, target.param_count) {
                (true, 0) => vec![],
                (true, _) => vec![args_array],
                (false, 0) => vec![receiver],
                (false, _) => vec![receiver, args_array],
            };
            let op = if target.is_static {
                Opcode::InvokeStatic
            } else {
                Opcode::InvokeVirtual
            };
            this.asm.invoke(op, idx, &regs);
            Ok(())
        };
        emit_one(self, &targets[0])?;
        if !alt_labels.is_empty() {
            self.asm.goto(join);
            for (i, (alt, target)) in alt_labels.iter().zip(targets.iter().skip(1)).enumerate() {
                self.asm.bind(*alt);
                emit_one(self, target)?;
                // The last alternative falls through to the join point.
                if i + 2 < targets.len() {
                    self.asm.goto(join);
                }
            }
        }
        self.asm.bind(join);
        Ok(())
    }

    fn remap_index(&mut self, insn: &Insn) -> Result<u32> {
        use dexlego_dalvik::IndexKind;
        let missing = |what: &str, idx: u32| {
            DexLegoError::Reassembly(format!("{what} index {idx} missing from collected pool"))
        };
        Ok(match insn.op.index_kind() {
            IndexKind::None => insn.idx,
            IndexKind::String => {
                let s = self
                    .input
                    .pool
                    .strings
                    .get(insn.idx as usize)
                    .ok_or_else(|| missing("string", insn.idx))?;
                self.dex.intern_string(s)
            }
            IndexKind::Type => {
                let t = self
                    .input
                    .pool
                    .types
                    .get(insn.idx as usize)
                    .ok_or_else(|| missing("type", insn.idx))?;
                self.dex.intern_type(t)
            }
            IndexKind::Field => {
                let (class, name, type_desc) = self
                    .input
                    .pool
                    .fields
                    .get(insn.idx as usize)
                    .ok_or_else(|| missing("field", insn.idx))?;
                self.dex.intern_field(class, type_desc, name)
            }
            IndexKind::Method => {
                let (class, name, descriptor) = self
                    .input
                    .pool
                    .methods
                    .get(insn.idx as usize)
                    .cloned()
                    .ok_or_else(|| missing("method", insn.idx))?;
                let (params, ret) = parse_descriptor(&descriptor)?;
                let param_refs: Vec<&str> = params.iter().map(String::as_str).collect();
                self.dex.intern_method(&class, &name, &ret, &param_refs)
            }
        })
    }

    fn resolve_or_trap(&mut self, dex_pc: u32, chain: &[NodeId]) -> Label {
        for &node in chain {
            if let Some(&label) = self.labels.get(&(node, dex_pc)) {
                return label;
            }
        }
        self.trap_label()
    }

    fn trap_label(&mut self) -> Label {
        if let Some(t) = self.trap {
            return t;
        }
        let t = self.asm.new_label();
        self.trap = Some(t);
        t
    }

    fn emit_trap_block(&mut self) {
        // Never-executed branch directions land here: throw, terminating the
        // path for any analyser without inventing behaviour.
        if let Some(trap) = self.trap {
            self.asm.bind(trap);
            let mut zero = Insn::of(Opcode::Const16);
            zero.a = self.guard_reg;
            zero.lit = 0;
            self.asm.push(zero);
            let mut throw = Insn::of(Opcode::Throw);
            throw.a = self.guard_reg;
            self.asm.push(throw);
        }
    }
}

#[derive(Clone, Copy)]
enum MoveKind {
    Single,
    Wide,
    Object,
}
