//! Assembling the collection files into a complete DEX file
//! (paper §IV-B "Merging Instruction Arrays" and §IV-C).

use std::collections::HashMap;

use dexlego_dalvik::{Insn, MethodAssembler, Opcode};
use dexlego_dex::file::{EncodedField, EncodedMethod};
use dexlego_dex::value::EncodedValue;
use dexlego_dex::{AccessFlags, ClassDef, CodeItem, DexFile};

use crate::files::{CollectedValue, CollectionFiles, MethodRecord};
use crate::metrics::PipelineMetrics;
use crate::reassemble::tree_merge::{merge_tree, MergeInput};
use crate::{DexLegoError, Result, INSTRUMENT_CLASS};

/// Allocator for the instrument class's guard fields.
///
/// Each synthetic branch gets its own static boolean field
/// (`Lcom/dexlego/Modification;->mN:Z`), named after the paper's
/// `com_test_Main_advancedLeak_0` scheme but compacted.
#[derive(Debug, Default)]
pub struct GuardAlloc {
    count: u32,
}

impl GuardAlloc {
    /// Interns the next guard field into `dex` and returns its field index.
    pub fn next_field(&mut self, dex: &mut DexFile) -> u32 {
        let name = format!("m{}", self.count);
        self.count += 1;
        dex.intern_field(INSTRUMENT_CLASS, "Z", &name)
    }

    /// Number of guard fields allocated so far.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Emits the instrument class definition holding every allocated guard
    /// field, initialised with deterministic pseudo-random booleans (the
    /// paper initialises them "with random values"; determinism keeps the
    /// reassembled DEX reproducible).
    pub fn emit_instrument_class(&self, dex: &mut DexFile) {
        let class_idx = dex.intern_type(INSTRUMENT_CLASS);
        let mut def = ClassDef::new(class_idx);
        def.access = AccessFlags::PUBLIC | AccessFlags::FINAL | AccessFlags::SYNTHETIC;
        def.superclass = Some(dex.intern_type("Ljava/lang/Object;"));
        let mut fields: Vec<EncodedField> = (0..self.count)
            .map(|i| {
                let name = format!("m{i}");
                EncodedField {
                    field_idx: dex.intern_field(INSTRUMENT_CLASS, "Z", &name),
                    access: AccessFlags::PUBLIC | AccessFlags::STATIC,
                }
            })
            .collect();
        fields.sort_by_key(|f| f.field_idx);
        // xorshift-style deterministic "random" initial values.
        let mut state = 0x9e37_79b9u32;
        let values: Vec<EncodedValue> = fields
            .iter()
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                EncodedValue::Boolean(state & 1 == 1)
            })
            .collect();
        let data = def.class_data.as_mut().expect("fresh class data");
        data.static_fields = fields;
        def.static_values = values;
        dex.add_class(def);
    }
}

/// Reassembles collection files into a DEX model (unsorted pools; pass the
/// result through [`dexlego_dalvik::canon::canonicalize`] before writing
/// bytes).
///
/// # Errors
///
/// Returns [`DexLegoError::Reassembly`] for inconsistent collection data
/// and propagates assembly failures.
///
/// # Example
///
/// ```
/// use dexlego_core::{files::CollectionFiles, reassemble::reassemble};
/// let dex = reassemble(&CollectionFiles::default()).unwrap();
/// // Even an empty collection yields a valid model with the instrument class.
/// assert!(dex.find_class("Lcom/dexlego/Modification;").is_some());
/// ```
pub fn reassemble(files: &CollectionFiles) -> Result<DexFile> {
    reassemble_with_metrics(files, &mut PipelineMetrics::new())
}

/// [`reassemble`] with instrumentation: records the time spent merging
/// collection trees (`tree_merge`) separately from the rest of DEX
/// assembly (`dexgen`), plus counters for merged trees and allocated guard
/// fields, into `metrics`.
///
/// # Errors
///
/// Same failure modes as [`reassemble`].
pub fn reassemble_with_metrics(
    files: &CollectionFiles,
    metrics: &mut PipelineMetrics,
) -> Result<DexFile> {
    let total_start = std::time::Instant::now();
    let mut merge_time = std::time::Duration::ZERO;
    let mut trees_merged = 0u64;
    let mut dex = DexFile::new();
    let mut guards = GuardAlloc::default();

    // Latest definition wins for shadowed (re-defined) classes: a packer's
    // shell class is replaced by the unpacked original.
    let mut chosen: HashMap<&str, usize> = HashMap::new();
    for (i, class) in files.classes.iter().enumerate() {
        chosen.insert(&class.descriptor, i);
    }
    let mut chosen_order: Vec<usize> = chosen.values().copied().collect();
    chosen_order.sort_unstable();

    // Reflection sites by caller method.
    let mut reflection: HashMap<&crate::files::MethodKey, HashMap<u32, Vec<_>>> = HashMap::new();
    for site in &files.reflection_sites {
        reflection
            .entry(&site.caller)
            .or_default()
            .insert(site.dex_pc, site.targets.clone());
    }
    let empty_reflection: HashMap<u32, Vec<crate::files::ReflectionTarget>> = HashMap::new();

    for class_i in chosen_order {
        let class = &files.classes[class_i];
        let class_idx = dex.intern_type(&class.descriptor);
        let mut def = ClassDef::new(class_idx);
        def.access = AccessFlags(class.access);
        def.superclass = class.superclass.as_ref().map(|s| dex.intern_type(s));
        def.interfaces = class
            .interfaces
            .iter()
            .map(|i| dex.intern_type(i))
            .collect();

        // Fields + static values (positional over the sorted static list).
        let mut statics: Vec<(EncodedField, Option<EncodedValue>)> = Vec::new();
        let mut instance_fields: Vec<EncodedField> = Vec::new();
        for field in &class.fields {
            let idx = dex.intern_field(&class.descriptor, &field.type_desc, &field.name);
            let encoded = EncodedField {
                field_idx: idx,
                access: AccessFlags(field.access),
            };
            if field.is_static {
                let value = field.static_value.as_ref().map(|v| match v {
                    CollectedValue::Bool(b) => EncodedValue::Boolean(*b),
                    CollectedValue::Int(i) => EncodedValue::Int(*i),
                    CollectedValue::Long(l) => EncodedValue::Long(*l),
                    CollectedValue::Float(f) => EncodedValue::Float(*f),
                    CollectedValue::Double(d) => EncodedValue::Double(*d),
                    CollectedValue::Str(s) => EncodedValue::String(dex.intern_string(s)),
                    CollectedValue::Null => EncodedValue::Null,
                });
                statics.push((encoded, value));
            } else {
                instance_fields.push(encoded);
            }
        }
        statics.sort_by_key(|(f, _)| f.field_idx);
        instance_fields.sort_by_key(|f| f.field_idx);
        let last_value = statics.iter().rposition(|(_, v)| v.is_some());
        let mut static_values = Vec::new();
        for (i, (encoded, value)) in statics.iter().enumerate() {
            if last_value.is_some_and(|last| i <= last) {
                static_values.push(value.clone().unwrap_or_else(|| {
                    let tidx = dex.field_ids()[encoded.field_idx as usize].type_;
                    let desc = dex
                        .type_descriptor(tidx)
                        .unwrap_or("Ljava/lang/Object;")
                        .to_owned();
                    EncodedValue::default_for_type(&desc)
                }));
            }
        }
        def.static_values = static_values;
        {
            let data = def.class_data.as_mut().expect("fresh class data");
            data.static_fields = statics.into_iter().map(|(f, _)| f).collect();
            data.instance_fields = instance_fields;
        }

        // Methods of this class from the chosen source.
        let mut encoded_methods: Vec<(bool, EncodedMethod)> = Vec::new();
        for record in files.methods.iter().filter(|m| {
            m.key.class == class.descriptor
                && files
                    .pools
                    .get(m.pool as usize)
                    .is_some_and(|p| p.source == class.source)
        }) {
            let pool = files
                .pools
                .get(record.pool as usize)
                .ok_or_else(|| DexLegoError::Reassembly("method pool out of range".into()))?;
            let method_reflection = reflection.get(&record.key).unwrap_or(&empty_reflection);

            // Merge each unique tree, dedup resulting arrays.
            let mut bodies: Vec<CodeItem> = Vec::new();
            for tree in &record.trees {
                let merge_start = std::time::Instant::now();
                let body = merge_tree(
                    &mut dex,
                    &mut guards,
                    &MergeInput {
                        record,
                        tree,
                        pool,
                        reflection: method_reflection,
                    },
                )?;
                merge_time += merge_start.elapsed();
                trees_merged += 1;
                if !bodies.iter().any(|b| b.insns == body.insns) {
                    bodies.push(body);
                }
            }
            if bodies.is_empty() {
                continue;
            }
            let is_direct = record.access & 0x8 != 0 // static
                || record.access & 0x2 != 0 // private
                || record.key.name.starts_with('<');
            if bodies.len() == 1 {
                let method_idx = intern_record_method(&mut dex, record, None)?;
                encoded_methods.push((
                    is_direct,
                    EncodedMethod {
                        method_idx,
                        access: AccessFlags(record.access),
                        code: Some(bodies.remove(0)),
                    },
                ));
            } else {
                // Method variants plus a guarded dispatcher (paper §IV-B,
                // "Merging Instructions Arrays").
                let variant_indices: Vec<u32> = bodies
                    .iter()
                    .enumerate()
                    .map(|(k, _)| intern_record_method(&mut dex, record, Some(k)))
                    .collect::<Result<_>>()?;
                for (k, body) in bodies.into_iter().enumerate() {
                    encoded_methods.push((
                        is_direct,
                        EncodedMethod {
                            method_idx: variant_indices[k],
                            access: AccessFlags(record.access) | AccessFlags::SYNTHETIC,
                            code: Some(body),
                        },
                    ));
                }
                let dispatcher = build_dispatcher(&mut dex, &mut guards, record, &variant_indices)?;
                let method_idx = intern_record_method(&mut dex, record, None)?;
                encoded_methods.push((
                    is_direct,
                    EncodedMethod {
                        method_idx,
                        access: AccessFlags(record.access),
                        code: Some(dispatcher),
                    },
                ));
            }
        }
        {
            let data = def.class_data.as_mut().expect("fresh class data");
            for (is_direct, method) in encoded_methods {
                if is_direct {
                    data.direct_methods.push(method);
                } else {
                    data.virtual_methods.push(method);
                }
            }
            data.direct_methods.sort_by_key(|m| m.method_idx);
            data.virtual_methods.sort_by_key(|m| m.method_idx);
        }
        dex.add_class(def);
    }

    guards.emit_instrument_class(&mut dex);
    let merge_us = merge_time.as_micros() as u64;
    metrics.record_phase_us("tree_merge", merge_us);
    metrics.record_phase_us(
        "dexgen",
        (total_start.elapsed().as_micros() as u64).saturating_sub(merge_us),
    );
    metrics.count("trees_merged", trees_merged);
    metrics.count("guard_fields", u64::from(guards.count()));
    Ok(dex)
}

/// Reassembles and runs the bytecode verifier over every emitted method
/// body, gating on error-severity diagnostics.
///
/// Returns the DEX together with the remaining warning-severity lints
/// (`L####` rules — unreachable code, self-moves, dead stores) so callers
/// can surface them without failing the pipeline.
///
/// # Errors
///
/// In addition to [`reassemble`]'s failure modes, returns
/// [`DexLegoError::Verification`] when any method carries a `V####`
/// diagnostic — a reassembly that would not load under ART's verifier.
pub fn reassemble_verified(
    files: &CollectionFiles,
) -> Result<(DexFile, Vec<dexlego_verifier::Diagnostic>)> {
    let dex = reassemble(files)?;
    let typed =
        dexlego_verifier::verify_dex_typed(&dex, &dexlego_verifier::VerifyOptions::default());
    let (_typed, warnings) = gate_verified(typed)?;
    Ok((dex, warnings))
}

/// Gates an already-computed verification result: error-severity
/// diagnostics (`V####`) abort, warning-severity lints are split out and
/// returned alongside the (now diagnostics-free) typed result.
///
/// This is the single choke point for the pipeline's verification gate —
/// callers verify once with [`dexlego_verifier::verify_dex_typed`] and
/// hand the result here instead of re-running the verifier over the same
/// bytes.
///
/// # Errors
///
/// Returns [`DexLegoError::Verification`] carrying every error-severity
/// diagnostic when the DEX would not load under ART's verifier.
pub fn gate_verified(
    mut typed: dexlego_verifier::TypedDex,
) -> Result<(
    dexlego_verifier::TypedDex,
    Vec<dexlego_verifier::Diagnostic>,
)> {
    let diags = std::mem::take(&mut typed.diagnostics);
    let (errors, warnings): (Vec<_>, Vec<_>) = diags
        .into_iter()
        .partition(dexlego_verifier::Diagnostic::is_error);
    if !errors.is_empty() {
        return Err(DexLegoError::Verification(errors));
    }
    Ok((typed, warnings))
}

fn intern_record_method(
    dex: &mut DexFile,
    record: &MethodRecord,
    variant: Option<usize>,
) -> Result<u32> {
    let name = match variant {
        None => record.key.name.clone(),
        Some(k) => format!("{}$v{k}", record.key.name),
    };
    let param_refs: Vec<&str> = record.params.iter().map(String::as_str).collect();
    Ok(dex.intern_method(&record.key.class, &name, &record.return_type, &param_refs))
}

/// Builds the dispatcher body: guarded selection among method variants,
/// forwarding all arguments.
fn build_dispatcher(
    dex: &mut DexFile,
    guards: &mut GuardAlloc,
    record: &MethodRecord,
    variants: &[u32],
) -> Result<CodeItem> {
    let ins = u32::from(record.ins);
    // v0..v1 scratch (wide-capable), parameters at v2...
    let registers = (ins + 2) as u16;
    let arg_regs: Vec<u32> = (2..2 + ins).collect();
    let is_static = record.access & 0x8 != 0;
    let invoke_op = if is_static {
        Opcode::InvokeStatic
    } else {
        Opcode::InvokeVirtual
    };

    let mut asm = MethodAssembler::new();
    let labels: Vec<_> = variants.iter().skip(1).map(|_| asm.new_label()).collect();
    for &label in &labels {
        let field = guards.next_field(dex);
        let mut sget = Insn::of(Opcode::SgetBoolean);
        sget.a = 0;
        sget.idx = field;
        asm.push(sget);
        asm.if_z(Opcode::IfNez, 0, label);
    }
    let emit_call = |asm: &mut MethodAssembler, idx: u32| {
        asm.invoke(invoke_op, idx, &arg_regs);
        match record.return_type.as_str() {
            "V" => {
                asm.ret(Opcode::ReturnVoid, 0);
            }
            "J" | "D" => {
                let mut mr = Insn::of(Opcode::MoveResultWide);
                mr.a = 0;
                asm.push(mr);
                asm.ret(Opcode::ReturnWide, 0);
            }
            s if s.starts_with('L') || s.starts_with('[') => {
                let mut mr = Insn::of(Opcode::MoveResultObject);
                mr.a = 0;
                asm.push(mr);
                asm.ret(Opcode::ReturnObject, 0);
            }
            _ => {
                let mut mr = Insn::of(Opcode::MoveResult);
                mr.a = 0;
                asm.push(mr);
                asm.ret(Opcode::Return, 0);
            }
        }
    };
    emit_call(&mut asm, variants[0]);
    for (label, &variant) in labels.iter().zip(variants.iter().skip(1)) {
        asm.bind(*label);
        emit_call(&mut asm, variant);
    }
    let insns = asm.assemble().map_err(DexLegoError::Dalvik)?;
    Ok(CodeItem {
        registers_size: registers,
        ins_size: record.ins,
        outs_size: registers,
        insns,
        tries: Vec::new(),
        handlers: Vec::new(),
    })
}
