//! Offline reassembly: collection files → a valid DEX file (paper §IV-B/C).

pub mod dexgen;
pub mod tree_merge;

pub use dexgen::{
    gate_verified, reassemble, reassemble_verified, reassemble_with_metrics, GuardAlloc,
};
pub use tree_merge::merge_tree;

use crate::{DexLegoError, Result};

/// Parses a method descriptor like `(ILjava/lang/String;)V` into parameter
/// descriptors and the return descriptor.
///
/// # Errors
///
/// Returns [`DexLegoError::Reassembly`] on malformed descriptors.
///
/// # Example
///
/// ```
/// let (params, ret) = dexlego_core::reassemble::parse_descriptor("(I[BLjava/lang/String;)V").unwrap();
/// assert_eq!(params, vec!["I", "[B", "Ljava/lang/String;"]);
/// assert_eq!(ret, "V");
/// ```
pub fn parse_descriptor(descriptor: &str) -> Result<(Vec<String>, String)> {
    let bad = || DexLegoError::Reassembly(format!("malformed descriptor {descriptor:?}"));
    let rest = descriptor.strip_prefix('(').ok_or_else(bad)?;
    let close = rest.find(')').ok_or_else(bad)?;
    let (params_str, ret) = rest.split_at(close);
    let ret = &ret[1..];
    if ret.is_empty() {
        return Err(bad());
    }
    let mut params = Vec::new();
    let bytes = params_str.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        while bytes.get(i) == Some(&b'[') {
            i += 1;
        }
        match bytes.get(i) {
            Some(b'L') => {
                while bytes.get(i) != Some(&b';') {
                    if i >= bytes.len() {
                        return Err(bad());
                    }
                    i += 1;
                }
                i += 1;
            }
            Some(b'Z' | b'B' | b'S' | b'C' | b'I' | b'J' | b'F' | b'D') => i += 1,
            _ => return Err(bad()),
        }
        params.push(params_str[start..i].to_owned());
    }
    Ok((params, ret.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_descriptors() {
        let (p, r) = parse_descriptor("()V").unwrap();
        assert!(p.is_empty());
        assert_eq!(r, "V");
        let (p, r) = parse_descriptor("(J[[Lfoo/Bar;ZD)Ljava/lang/Object;").unwrap();
        assert_eq!(p, vec!["J", "[[Lfoo/Bar;", "Z", "D"]);
        assert_eq!(r, "Ljava/lang/Object;");
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "I", "(I", "(X)V", "()", "(L)V"] {
            assert!(parse_descriptor(bad).is_err(), "{bad}");
        }
    }
}
