#![forbid(unsafe_code)]

//! DexLego: reassembleable bytecode extraction for aiding static analysis.
//!
//! This crate is the Rust reproduction of the DexLego system (Ning & Zhang,
//! DSN 2018). It implements the paper's pipeline end to end against the
//! simulated ART in [`dexlego_runtime`]:
//!
//! 1. **Just-in-time collection** ([`collect`]): a [`RuntimeObserver`] that
//!    records classes, fields, static values, methods, and — at instruction
//!    level — executed bytecode, organised into *collection trees* (the
//!    paper's Algorithm 1) that capture self-modifying code as divergence
//!    branches.
//! 2. **Offline reassembly** ([`reassemble`]): merging each method's
//!    collection trees into a single instruction array by inserting
//!    synthetic branches on static fields of a generated instrument class
//!    (`LModification;`), merging multiple execution variants, replacing
//!    reflective calls with direct calls, and emitting a valid DEX file.
//! 3. **Force execution** ([`force`]): the paper's iterative
//!    coverage-improvement module — identify Uncovered Conditional Branches,
//!    compute branch-decision paths, re-run with interpreter-level branch
//!    forcing and exception tolerance.
//! 4. **Baselines** ([`baseline`]): DexHunter- and AppSpear-style
//!    method-level dump extractors used for the Table III comparison.
//! 5. **Coverage** ([`coverage`]): a JaCoCo-style coverage recorder and the
//!    Sapienz-style random event fuzzer.
//!
//! [`RuntimeObserver`]: dexlego_runtime::RuntimeObserver
//!
//! # Example
//!
//! See [`pipeline::reveal`] for the one-call "execute, collect, reassemble"
//! entry point used by the examples and benchmarks.

pub mod baseline;
pub mod collect;
pub mod coverage;
pub mod digest;
pub mod files;
pub mod force;
pub mod metrics;
pub mod pipeline;
pub mod reassemble;

pub use collect::collector::JitCollector;
pub use digest::{InputDigest, EXTRACTOR_VERSION};
pub use files::CollectionFiles;
pub use metrics::PipelineMetrics;
pub use pipeline::{reveal, RevealOutcome};

use std::fmt;

/// Errors from collection, reassembly, or force execution.
#[derive(Debug)]
pub enum DexLegoError {
    /// Underlying runtime failure.
    Runtime(dexlego_runtime::RuntimeError),
    /// Bytecode encode/decode failure.
    Dalvik(dexlego_dalvik::DalvikError),
    /// DEX model failure.
    Dex(dexlego_dex::DexError),
    /// Collection-file (de)serialisation failure.
    Codec(String),
    /// Reassembly invariant violation.
    Reassembly(String),
    /// The reassembled DEX failed bytecode verification (the diagnostics
    /// carry the error-severity findings; see `dexlego_verifier`).
    Verification(Vec<dexlego_verifier::Diagnostic>),
}

impl fmt::Display for DexLegoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DexLegoError::Runtime(e) => write!(f, "runtime error: {e}"),
            DexLegoError::Dalvik(e) => write!(f, "bytecode error: {e}"),
            DexLegoError::Dex(e) => write!(f, "dex error: {e}"),
            DexLegoError::Codec(m) => write!(f, "collection file codec error: {m}"),
            DexLegoError::Reassembly(m) => write!(f, "reassembly error: {m}"),
            DexLegoError::Verification(diags) => {
                write!(
                    f,
                    "reassembled DEX failed verification ({} error",
                    diags.len()
                )?;
                if diags.len() != 1 {
                    write!(f, "s")?;
                }
                write!(f, ")")?;
                for d in diags.iter().take(3) {
                    write!(f, "; {d}")?;
                }
                if diags.len() > 3 {
                    write!(f, "; ...")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for DexLegoError {}

impl From<dexlego_runtime::RuntimeError> for DexLegoError {
    fn from(e: dexlego_runtime::RuntimeError) -> DexLegoError {
        DexLegoError::Runtime(e)
    }
}

impl From<dexlego_dalvik::DalvikError> for DexLegoError {
    fn from(e: dexlego_dalvik::DalvikError) -> DexLegoError {
        DexLegoError::Dalvik(e)
    }
}

impl From<dexlego_dex::DexError> for DexLegoError {
    fn from(e: dexlego_dex::DexError) -> DexLegoError {
        DexLegoError::Dex(e)
    }
}

/// Convenience alias for results with [`DexLegoError`].
pub type Result<T> = std::result::Result<T, DexLegoError>;

/// The descriptor of the generated instrument class whose static boolean
/// fields guard synthetic branches (paper §IV-B, Code 4).
pub const INSTRUMENT_CLASS: &str = "Lcom/dexlego/Modification;";
