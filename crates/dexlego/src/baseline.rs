//! Method-level extraction baselines: DexHunter and AppSpear (paper
//! §IV-A "Inadequacy of Method-level Collection", Table III).
//!
//! Both systems dump unpacked code from memory at a single point in time:
//! DexHunter dumps whole DEX images "at the right timing"; AppSpear rebuilds
//! a DEX from Dalvik's runtime data structures. Against packers that simply
//! decrypt-then-run they recover the original code, but:
//!
//! * self-modifying methods yield only whichever version is in memory at
//!   dump time (Code 2 *or* Code 3 — never both), and
//! * reflective calls remain reflective.
//!
//! Our implementations dump from the simulated runtime after execution,
//! which reproduces exactly those semantics.

use std::collections::HashMap;

use dexlego_dalvik::{decode_method, encode_insn, Decoded, IndexKind};
use dexlego_dex::file::{EncodedField, EncodedMethod};
use dexlego_dex::value::EncodedValue;
use dexlego_dex::{AccessFlags, ClassDef, CodeItem, DexFile};
use dexlego_runtime::class::MethodImpl;
use dexlego_runtime::{ClassId, Runtime};

use crate::{DexLegoError, Result};

/// Which baseline behaviour to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// DexHunter: dump every app DEX source currently in memory.
    DexHunter,
    /// AppSpear: rebuild from runtime class structures; only classes that
    /// were actually initialised are considered "reliable".
    AppSpear,
}

/// Dumps the application's code from runtime memory as a single DEX model,
/// emulating a method-level unpacking system.
///
/// # Errors
///
/// Propagates decode/encode failures for methods whose in-memory code is
/// not valid bytecode (still-encrypted method bodies are skipped instead,
/// as real dump tools do).
pub fn dump(rt: &Runtime, kind: BaselineKind) -> Result<DexFile> {
    let mut dex = DexFile::new();

    // Latest definition of each descriptor wins (shadowing redefinition).
    let mut latest: HashMap<&str, ClassId> = HashMap::new();
    let mut order: Vec<ClassId> = Vec::new();
    for class_id in rt.class_ids() {
        let class = rt.class(class_id);
        if class.source == "<framework>" {
            continue;
        }
        if kind == BaselineKind::AppSpear && !class.initialized {
            continue;
        }
        latest.insert(class.descriptor.as_str(), class_id);
        order.push(class_id);
    }
    order.retain(|&id| latest.get(rt.class(id).descriptor.as_str()) == Some(&id));

    for class_id in order {
        let class = rt.class(class_id);
        let class_idx = dex.intern_type(&class.descriptor);
        let mut def = ClassDef::new(class_idx);
        def.access = class.access;
        def.superclass = class
            .superclass
            .map(|s| dex.intern_type(&rt.class(s).descriptor.clone()));
        def.interfaces = class
            .interfaces
            .iter()
            .map(|&i| dex.intern_type(&rt.class(i).descriptor.clone()))
            .collect();

        // Fields, with whatever static values are in memory.
        let mut statics: Vec<(EncodedField, Option<EncodedValue>)> = Vec::new();
        let mut instance_fields = Vec::new();
        let mut field_ids: Vec<_> = class.fields.values().copied().collect();
        field_ids.sort();
        for fid in field_ids {
            let field = rt.field(fid);
            let idx = dex.intern_field(&class.descriptor, &field.type_desc, &field.name);
            let encoded = EncodedField {
                field_idx: idx,
                access: field.access,
            };
            if field.access.is_static() {
                let value = class
                    .statics
                    .get(&fid)
                    .map(|v| match field.type_desc.as_str() {
                        "Z" => EncodedValue::Boolean(v.raw != 0),
                        "B" | "S" | "C" | "I" => EncodedValue::Int(v.raw as u32 as i32),
                        "J" => EncodedValue::Long(v.as_long()),
                        "F" => EncodedValue::Float(f32::from_bits(v.raw as u32)),
                        "D" => EncodedValue::Double(v.as_double()),
                        "Ljava/lang/String;" => match rt.heap.as_string(v.raw as u32) {
                            Some(s) => EncodedValue::String(dex.intern_string(s)),
                            None => EncodedValue::Null,
                        },
                        _ => EncodedValue::Null,
                    });
                statics.push((encoded, value));
            } else {
                instance_fields.push(encoded);
            }
        }
        statics.sort_by_key(|(f, _)| f.field_idx);
        instance_fields.sort_by_key(|f| f.field_idx);
        let last_value = statics.iter().rposition(|(_, v)| v.is_some());
        for (i, (encoded, value)) in statics.iter().enumerate() {
            if last_value.is_some_and(|last| i <= last) {
                def.static_values.push(value.clone().unwrap_or_else(|| {
                    let tidx = dex.field_ids()[encoded.field_idx as usize].type_;
                    let desc = dex
                        .type_descriptor(tidx)
                        .unwrap_or("Ljava/lang/Object;")
                        .to_owned();
                    EncodedValue::default_for_type(&desc)
                }));
            }
        }

        // Methods with their current in-memory code.
        let mut directs = Vec::new();
        let mut virtuals = Vec::new();
        let mut method_ids: Vec<_> = class.methods.values().copied().collect();
        method_ids.sort();
        for mid in method_ids {
            let method = rt.method(mid);
            let param_refs: Vec<&str> = method.params.iter().map(String::as_str).collect();
            let method_idx = dex.intern_method(
                &class.descriptor,
                &method.name,
                &method.return_type,
                &param_refs,
            );
            let code = match &method.body {
                MethodImpl::Bytecode {
                    registers,
                    ins,
                    insns,
                    tries,
                    handlers,
                } => {
                    let Some(source) = rt.method_source(mid) else {
                        continue;
                    };
                    match remap_units(rt, source, insns, &mut dex) {
                        Ok(units) => Some(CodeItem {
                            registers_size: *registers,
                            ins_size: *ins,
                            outs_size: 8,
                            insns: units,
                            tries: tries.clone(),
                            handlers: handlers.clone(),
                        }),
                        // Still-encrypted bodies do not decode; a dump tool
                        // writes them out as-is and analysis skips them — we
                        // skip the method entirely, which is equivalent for
                        // the analyzers.
                        Err(_) => None,
                    }
                }
                _ => None,
            };
            let encoded = EncodedMethod {
                method_idx,
                access: if code.is_none() && !method.access.is_native() {
                    method.access | AccessFlags::NATIVE
                } else {
                    method.access
                },
                code,
            };
            let is_direct = method.access.is_static()
                || method.access.contains(AccessFlags::PRIVATE)
                || method.name.starts_with('<');
            if is_direct {
                directs.push(encoded);
            } else {
                virtuals.push(encoded);
            }
        }
        directs.sort_by_key(|m| m.method_idx);
        virtuals.sort_by_key(|m| m.method_idx);
        let data = def.class_data.as_mut().expect("fresh class data");
        data.static_fields = statics.into_iter().map(|(f, _)| f).collect();
        data.instance_fields = instance_fields;
        data.direct_methods = directs;
        data.virtual_methods = virtuals;
        dex.add_class(def);
    }
    Ok(dex)
}

/// Rewrites a method's code units so embedded pool indices point into the
/// output DEX (index widths are format-fixed, so lengths never change).
fn remap_units(rt: &Runtime, source: usize, insns: &[u16], dex: &mut DexFile) -> Result<Vec<u16>> {
    let table = rt.dex_table(source);
    let mut units = insns.to_vec();
    for (pc, decoded) in decode_method(insns).map_err(DexLegoError::Dalvik)? {
        let Decoded::Insn(mut insn) = decoded else {
            continue;
        };
        let new_idx = match insn.op.index_kind() {
            IndexKind::None => continue,
            IndexKind::String => {
                let s = table
                    .strings
                    .get(insn.idx as usize)
                    .ok_or_else(|| DexLegoError::Reassembly("string index out of range".into()))?;
                dex.intern_string(s)
            }
            IndexKind::Type => {
                let t = table
                    .types
                    .get(insn.idx as usize)
                    .ok_or_else(|| DexLegoError::Reassembly("type index out of range".into()))?;
                dex.intern_type(&t.clone())
            }
            IndexKind::Field => {
                let (c, n, t) = table
                    .fields
                    .get(insn.idx as usize)
                    .cloned()
                    .ok_or_else(|| DexLegoError::Reassembly("field index out of range".into()))?;
                dex.intern_field(&c, &t, &n)
            }
            IndexKind::Method => {
                let (c, sig) = table
                    .methods
                    .get(insn.idx as usize)
                    .cloned()
                    .ok_or_else(|| DexLegoError::Reassembly("method index out of range".into()))?;
                let (params, ret) = crate::reassemble::parse_descriptor(&sig.descriptor)?;
                let param_refs: Vec<&str> = params.iter().map(String::as_str).collect();
                dex.intern_method(&c, &sig.name, &ret, &param_refs)
            }
        };
        if new_idx != insn.idx {
            insn.idx = new_idx;
            let encoded = encode_insn(&insn).map_err(DexLegoError::Dalvik)?;
            units[pc as usize..pc as usize + encoded.len()].copy_from_slice(&encoded);
        }
    }
    Ok(units)
}
