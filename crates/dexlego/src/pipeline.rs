//! The end-to-end DexLego pipeline of Figure 1: execute the target
//! application under JIT collection (optionally with force execution), then
//! reassemble the collected files into a new DEX offline.

use dexlego_dalvik::canon::canonicalize;
use dexlego_dex::DexFile;
use dexlego_runtime::observer::RuntimeObserver;
use dexlego_runtime::Runtime;

use crate::collect::JitCollector;
use crate::files::CollectionFiles;
use crate::force::{iterative_force, ForceStats};
use crate::metrics::PipelineMetrics;
use crate::reassemble::reassemble_with_metrics;
use crate::Result;

/// The result of revealing an application.
#[derive(Debug)]
pub struct RevealOutcome {
    /// The collection files produced by JIT collection.
    pub files: CollectionFiles,
    /// The reassembled DEX (canonicalised, verified, ready to serialise).
    pub dex: DexFile,
    /// Size in bytes of the serialised collection files ("dump file size",
    /// Table VI).
    pub dump_size: usize,
    /// Warning-severity verifier lints over the reassembled DEX
    /// (error-severity diagnostics abort the pipeline instead).
    pub lints: Vec<dexlego_verifier::Diagnostic>,
    /// Method bodies for which the verifier materialized typed IR.
    pub typed_methods: usize,
    /// Instructions across all typed-IR methods.
    pub typed_insns: u64,
    /// [`validate_reveal`] findings over the outcome (empty = every
    /// collected method and instruction made it into the reassembled DEX).
    /// Computed as part of the pipeline so callers cannot forget the check.
    pub validation: Vec<String>,
    /// Per-phase timings and counters recorded while producing this
    /// outcome.
    pub metrics: PipelineMetrics,
}

/// Runs `drive` under JIT collection and reassembles the result.
///
/// `drive` receives the runtime and the collecting observer and should
/// execute the application however the experiment requires (launch an
/// activity, run a fuzzer, replay events). Execution errors inside the
/// driver should be swallowed by the driver itself — a crashed app still
/// yields a valid partial collection, as in the paper.
///
/// # Errors
///
/// Propagates reassembly failures.
///
/// # Example
///
/// ```
/// use dexlego_core::pipeline::reveal;
/// use dexlego_runtime::Runtime;
///
/// let mut rt = Runtime::new();
/// let outcome = reveal(&mut rt, |_rt, _obs| {
///     // drive the app here
/// }).unwrap();
/// assert_eq!(outcome.files.methods.len(), 0);
/// ```
pub fn reveal<F>(rt: &mut Runtime, mut drive: F) -> Result<RevealOutcome>
where
    F: FnMut(&mut Runtime, &mut dyn RuntimeObserver),
{
    let mut collector = JitCollector::new();
    let mut metrics = PipelineMetrics::new();
    metrics.time("collect", || drive(rt, &mut collector));
    finish(rt, collector, None, metrics)
}

/// Like [`reveal`], but additionally runs the iterative force-execution
/// module (Figure 4) to improve coverage, collecting throughout.
///
/// # Errors
///
/// Propagates reassembly failures.
pub fn reveal_with_force<F>(
    rt: &mut Runtime,
    mut drive: F,
    max_iterations: usize,
) -> Result<(RevealOutcome, ForceStats)>
where
    F: FnMut(&mut Runtime, &mut dyn RuntimeObserver),
{
    let mut collector = JitCollector::new();
    let mut metrics = PipelineMetrics::new();
    let (_coverage, stats) = metrics.time("collect", || {
        iterative_force(rt, &mut drive, &mut collector, max_iterations)
    });
    let outcome = finish(rt, collector, Some(stats), metrics)?;
    Ok((outcome, stats))
}

/// Validates a reveal result mechanically (the automated form of the
/// paper's RQ1 manual check): every collected instruction's opcode appears
/// in the reassembled body of its method (original or a variant), and
/// every collected method is present.
///
/// The pipeline runs this itself and surfaces the findings in
/// [`RevealOutcome::validation`]; calling it directly is only needed to
/// cross-validate a collection against some *other* DEX.
///
/// Returns the list of violations (empty = validated).
pub fn validate_reveal(files: &CollectionFiles, dex: &DexFile) -> Vec<String> {
    use std::collections::HashMap;
    let mut problems = Vec::new();
    for record in &files.methods {
        // Gather the reassembled opcode multiset across the method and its
        // variants.
        let Some(class) = dex.find_class(&record.key.class) else {
            problems.push(format!("{}: class missing from output", record.key));
            continue;
        };
        let mut reassembled: HashMap<u8, usize> = HashMap::new();
        let mut found_method = false;
        if let Some(data) = &class.class_data {
            for method in data.methods() {
                let Ok(sig) = dex.method_signature(method.method_idx) else {
                    continue;
                };
                let base = format!("{}->{}", record.key.class, record.key.name);
                if !(sig.starts_with(&format!("{base}(")) || sig.contains(&format!("{}$v", base))) {
                    continue;
                }
                found_method = true;
                if let Some(code) = &method.code {
                    if let Ok(decoded) = dexlego_dalvik::decode_method(&code.insns) {
                        for (_, d) in decoded {
                            if let dexlego_dalvik::Decoded::Insn(insn) = d {
                                *reassembled.entry(insn.op as u8).or_default() += 1;
                            }
                        }
                    }
                }
            }
        }
        if !found_method {
            problems.push(format!("{}: method missing from output", record.key));
            continue;
        }
        // Collected opcodes (union over trees; variants cover per-tree).
        for tree in &record.trees {
            for node in tree.nodes() {
                for ins in &node.il {
                    let op = (ins.units[0] & 0xff) as u8;
                    if !reassembled.contains_key(&op)
                        && dexlego_dalvik::Opcode::from_u8(op).is_some()
                    {
                        problems.push(format!(
                            "{}: collected opcode {:#04x} at pc {} missing from output",
                            record.key, op, ins.dex_pc
                        ));
                    }
                }
            }
        }
    }
    problems
}

/// Reassembles already-collected files into a full [`RevealOutcome`] — the
/// offline half of the pipeline, shared by [`reveal`], the batch harness
/// (which collects on worker threads and reassembles from the files), and
/// tests that tamper with a collection before reassembly.
///
/// # Errors
///
/// Propagates reassembly failures and verifier rejections, exactly like
/// [`reveal`].
pub fn reassemble_collection(files: CollectionFiles) -> Result<RevealOutcome> {
    finish_files(files, PipelineMetrics::new())
}

fn finish(
    _rt: &mut Runtime,
    collector: JitCollector,
    _stats: Option<ForceStats>,
    metrics: PipelineMetrics,
) -> Result<RevealOutcome> {
    finish_files(collector.into_files(), metrics)
}

fn finish_files(files: CollectionFiles, mut metrics: PipelineMetrics) -> Result<RevealOutcome> {
    metrics.count("classes_collected", files.classes.len() as u64);
    metrics.count("methods_collected", files.methods.len() as u64);
    metrics.count("insns_collected", files.total_insns() as u64);
    let dump_size = metrics.time("serialize", || files.to_bytes().len());
    // `reassemble_with_metrics` records the `tree_merge` and `dexgen`
    // phases itself.
    let dex = reassemble_with_metrics(&files, &mut metrics)?;
    let dex = metrics
        .time("canonicalize", || canonicalize(&dex))
        .map_err(crate::DexLegoError::Dalvik)?;
    // Verification gate: the canonicalised DEX is the artifact handed to
    // static analysis, so it is the one that must satisfy the verifier.
    // This is the pipeline's single verification pass — the result is
    // gated here (error-severity diagnostics abort) and its typed IR and
    // cache counters ride along in the outcome instead of anyone
    // re-verifying the same bytes.
    let typed = metrics.time("verify", || {
        dexlego_verifier::verify_dex_typed(&dex, &dexlego_verifier::VerifyOptions::default())
    });
    metrics.count("verify_cache_hits", typed.cache_hits);
    metrics.count("verify_cache_misses", typed.cache_misses);
    let typed_methods = typed.methods.len();
    let typed_insns = typed.insn_count() as u64;
    let (_typed, lints) = crate::reassemble::gate_verified(typed)?;
    let validation = metrics.time("validate", || validate_reveal(&files, &dex));
    metrics.count("verifier_lints", lints.len() as u64);
    metrics.count("typed_methods", typed_methods as u64);
    metrics.count("typed_insns", typed_insns);
    metrics.count("validation_findings", validation.len() as u64);
    Ok(RevealOutcome {
        files,
        dex,
        dump_size,
        lints,
        typed_methods,
        typed_insns,
        validation,
        metrics,
    })
}
