//! Collection files: the on-disk output of the JIT collection stage.
//!
//! The paper's Figure 2 shows five collection files (class data, static
//! values, method data, field data, bytecode); here they are modelled as
//! one [`CollectionFiles`] container with a compact binary codec
//! ([`CollectionFiles::to_bytes`] / [`CollectionFiles::from_bytes`]) so the
//! Table VI "dump file size" metric is measurable. Static values live on
//! their [`FieldRecord`]s and bytecode trees on their [`MethodRecord`]s.

use crate::collect::tree::{CollectedInsn, CollectionTree, TreeNode};
use crate::{DexLegoError, Result};

/// Identity of a method: declaring class descriptor, name, and descriptor.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MethodKey {
    /// Declaring class descriptor, e.g. `Lcom/test/Main;`.
    pub class: String,
    /// Method name.
    pub name: String,
    /// Method descriptor, e.g. `(I)V`.
    pub descriptor: String,
}

impl std::fmt::Display for MethodKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}->{}{}", self.class, self.name, self.descriptor)
    }
}

/// A collected static value.
#[derive(Debug, Clone, PartialEq)]
pub enum CollectedValue {
    /// Boolean.
    Bool(bool),
    /// Int-family (byte/short/char/int).
    Int(i32),
    /// Long.
    Long(i64),
    /// Float.
    Float(f32),
    /// Double.
    Double(f64),
    /// String.
    Str(String),
    /// Null or unsupported reference.
    Null,
}

/// One collected field (field data file + static values file).
#[derive(Debug, Clone, PartialEq)]
pub struct FieldRecord {
    /// Field name.
    pub name: String,
    /// Type descriptor.
    pub type_desc: String,
    /// Raw access flags.
    pub access: u32,
    /// Whether the field is static.
    pub is_static: bool,
    /// Initial value collected at class initialisation (static only).
    pub static_value: Option<CollectedValue>,
}

/// One collected class (class data file).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClassRecord {
    /// Type descriptor.
    pub descriptor: String,
    /// Superclass descriptor, if any.
    pub superclass: Option<String>,
    /// Interface descriptors.
    pub interfaces: Vec<String>,
    /// Raw access flags.
    pub access: u32,
    /// DEX source tag the class was loaded from.
    pub source: String,
    /// Collected fields.
    pub fields: Vec<FieldRecord>,
}

/// A collected try/catch region, with catch types resolved to descriptors.
#[derive(Debug, Clone, PartialEq)]
pub struct TryRecord {
    /// First covered `dex_pc`.
    pub start: u32,
    /// Number of covered code units.
    pub count: u32,
    /// Typed catch clauses: (exception descriptor, handler `dex_pc`).
    pub catches: Vec<(String, u32)>,
    /// Catch-all handler `dex_pc`, if present.
    pub catch_all: Option<u32>,
}

/// One collected method (method data file + bytecode file).
#[derive(Debug, Clone, PartialEq)]
pub struct MethodRecord {
    /// The method's identity.
    pub key: MethodKey,
    /// Index into [`CollectionFiles::pools`] of the DEX source whose
    /// constant-pool indices the collected units reference.
    pub pool: u32,
    /// Raw access flags.
    pub access: u32,
    /// Register count of the original code item.
    pub registers: u16,
    /// Argument register count.
    pub ins: u16,
    /// Return type descriptor.
    pub return_type: String,
    /// Parameter type descriptors.
    pub params: Vec<String>,
    /// Try/catch regions of the original method (remapped at reassembly).
    pub tries: Vec<TryRecord>,
    /// Unique collection trees, one per distinct execution shape.
    pub trees: Vec<CollectionTree>,
}

/// The constant pools of one collected DEX source (string/type/field/method
/// structures of §IV-C), needed to resolve the indices embedded in the
/// collected code units.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PoolRecord {
    /// Source tag (e.g. `"app"`, `"dynamic:1"`).
    pub source: String,
    /// String pool.
    pub strings: Vec<String>,
    /// Type descriptors.
    pub types: Vec<String>,
    /// Method references: (class descriptor, name, descriptor).
    pub methods: Vec<(String, String, String)>,
    /// Field references: (class descriptor, name, type descriptor).
    pub fields: Vec<(String, String, String)>,
}

/// A resolved reflective-call target.
#[derive(Debug, Clone, PartialEq)]
pub struct ReflectionTarget {
    /// The target method.
    pub key: MethodKey,
    /// Whether the target is static.
    pub is_static: bool,
    /// Number of declared parameters.
    pub param_count: u32,
}

/// A reflective call site with every target observed at runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct ReflectionSite {
    /// The method containing the `Method.invoke` call.
    pub caller: MethodKey,
    /// `dex_pc` of the invoke instruction.
    pub dex_pc: u32,
    /// Observed targets (usually one).
    pub targets: Vec<ReflectionTarget>,
}

/// The full collection output.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CollectionFiles {
    /// Class data + field data + static values.
    pub classes: Vec<ClassRecord>,
    /// Method data + bytecode trees.
    pub methods: Vec<MethodRecord>,
    /// Constant pools of every collected DEX source.
    pub pools: Vec<PoolRecord>,
    /// Reflection resolution results.
    pub reflection_sites: Vec<ReflectionSite>,
}

impl CollectionFiles {
    /// Total collected instructions across all methods and trees.
    pub fn total_insns(&self) -> usize {
        self.methods
            .iter()
            .flat_map(|m| &m.trees)
            .map(CollectionTree::total_insns)
            .sum()
    }

    /// Methods that exhibited self-modifying code (any tree with more than
    /// one node).
    pub fn self_modifying_methods(&self) -> impl Iterator<Item = &MethodRecord> {
        self.methods
            .iter()
            .filter(|m| m.trees.iter().any(|t| t.node_count() > 1))
    }

    /// Serialises to the compact binary "dump file" format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.bytes(b"DLCF\x01");
        w.u32(self.classes.len() as u32);
        for class in &self.classes {
            w.str(&class.descriptor);
            w.opt_str(class.superclass.as_deref());
            w.u32(class.interfaces.len() as u32);
            for i in &class.interfaces {
                w.str(i);
            }
            w.u32(class.access);
            w.str(&class.source);
            w.u32(class.fields.len() as u32);
            for field in &class.fields {
                w.str(&field.name);
                w.str(&field.type_desc);
                w.u32(field.access);
                w.u8(u8::from(field.is_static));
                match &field.static_value {
                    None => w.u8(0),
                    Some(CollectedValue::Bool(b)) => {
                        w.u8(1);
                        w.u8(u8::from(*b));
                    }
                    Some(CollectedValue::Int(v)) => {
                        w.u8(2);
                        w.u32(*v as u32);
                    }
                    Some(CollectedValue::Long(v)) => {
                        w.u8(3);
                        w.u64(*v as u64);
                    }
                    Some(CollectedValue::Float(v)) => {
                        w.u8(4);
                        w.u32(v.to_bits());
                    }
                    Some(CollectedValue::Double(v)) => {
                        w.u8(5);
                        w.u64(v.to_bits());
                    }
                    Some(CollectedValue::Str(s)) => {
                        w.u8(6);
                        w.str(s);
                    }
                    Some(CollectedValue::Null) => w.u8(7),
                }
            }
        }
        w.u32(self.pools.len() as u32);
        for pool in &self.pools {
            w.str(&pool.source);
            w.u32(pool.strings.len() as u32);
            for s in &pool.strings {
                w.str(s);
            }
            w.u32(pool.types.len() as u32);
            for t in &pool.types {
                w.str(t);
            }
            w.u32(pool.methods.len() as u32);
            for (c, n, d) in &pool.methods {
                w.str(c);
                w.str(n);
                w.str(d);
            }
            w.u32(pool.fields.len() as u32);
            for (c, n, t) in &pool.fields {
                w.str(c);
                w.str(n);
                w.str(t);
            }
        }
        w.u32(self.methods.len() as u32);
        for method in &self.methods {
            w.str(&method.key.class);
            w.str(&method.key.name);
            w.str(&method.key.descriptor);
            w.u32(method.pool);
            w.u32(method.access);
            w.u32(u32::from(method.registers));
            w.u32(u32::from(method.ins));
            w.str(&method.return_type);
            w.u32(method.params.len() as u32);
            for p in &method.params {
                w.str(p);
            }
            w.u32(method.tries.len() as u32);
            for t in &method.tries {
                w.u32(t.start);
                w.u32(t.count);
                w.u32(t.catches.len() as u32);
                for (desc, pc) in &t.catches {
                    w.str(desc);
                    w.u32(*pc);
                }
                match t.catch_all {
                    None => w.u8(0),
                    Some(pc) => {
                        w.u8(1);
                        w.u32(pc);
                    }
                }
            }
            w.u32(method.trees.len() as u32);
            for tree in &method.trees {
                w.u32(tree.node_count() as u32);
                for node in tree.nodes() {
                    w.u32(node.sm_start);
                    match node.sm_end {
                        None => w.u8(0),
                        Some(e) => {
                            w.u8(1);
                            w.u32(e);
                        }
                    }
                    match node.parent {
                        None => w.u32(u32::MAX),
                        Some(p) => w.u32(p as u32),
                    }
                    w.u32(node.il.len() as u32);
                    for ins in &node.il {
                        w.u32(ins.dex_pc);
                        w.u32(ins.units.len() as u32);
                        for &u in &ins.units {
                            w.u16(u);
                        }
                        match &ins.payload {
                            None => w.u8(0),
                            Some((off, units)) => {
                                w.u8(1);
                                w.u32(*off as u32);
                                w.u32(units.len() as u32);
                                for &u in units {
                                    w.u16(u);
                                }
                            }
                        }
                    }
                }
            }
        }
        w.u32(self.reflection_sites.len() as u32);
        for site in &self.reflection_sites {
            w.str(&site.caller.class);
            w.str(&site.caller.name);
            w.str(&site.caller.descriptor);
            w.u32(site.dex_pc);
            w.u32(site.targets.len() as u32);
            for t in &site.targets {
                w.str(&t.key.class);
                w.str(&t.key.name);
                w.str(&t.key.descriptor);
                w.u8(u8::from(t.is_static));
                w.u32(t.param_count);
            }
        }
        w.out
    }

    /// Parses the binary format produced by [`Self::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`DexLegoError::Codec`] on truncated or malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<CollectionFiles> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.take(5)? != b"DLCF\x01" {
            return Err(DexLegoError::Codec("bad magic".into()));
        }
        let mut files = CollectionFiles::default();
        for _ in 0..r.u32()? {
            let descriptor = r.str()?;
            let superclass = r.opt_str()?;
            let n_ifaces = r.u32()?;
            let mut interfaces = Vec::with_capacity(n_ifaces as usize);
            for _ in 0..n_ifaces {
                interfaces.push(r.str()?);
            }
            let access = r.u32()?;
            let source = r.str()?;
            let n_fields = r.u32()?;
            let mut fields = Vec::with_capacity(n_fields as usize);
            for _ in 0..n_fields {
                let name = r.str()?;
                let type_desc = r.str()?;
                let access = r.u32()?;
                let is_static = r.u8()? != 0;
                let static_value = match r.u8()? {
                    0 => None,
                    1 => Some(CollectedValue::Bool(r.u8()? != 0)),
                    2 => Some(CollectedValue::Int(r.u32()? as i32)),
                    3 => Some(CollectedValue::Long(r.u64()? as i64)),
                    4 => Some(CollectedValue::Float(f32::from_bits(r.u32()?))),
                    5 => Some(CollectedValue::Double(f64::from_bits(r.u64()?))),
                    6 => Some(CollectedValue::Str(r.str()?)),
                    7 => Some(CollectedValue::Null),
                    other => return Err(DexLegoError::Codec(format!("bad value tag {other}"))),
                };
                fields.push(FieldRecord {
                    name,
                    type_desc,
                    access,
                    is_static,
                    static_value,
                });
            }
            files.classes.push(ClassRecord {
                descriptor,
                superclass,
                interfaces,
                access,
                source,
                fields,
            });
        }
        for _ in 0..r.u32()? {
            let source = r.str()?;
            let mut pool = PoolRecord {
                source,
                ..PoolRecord::default()
            };
            for _ in 0..r.u32()? {
                pool.strings.push(r.str()?);
            }
            for _ in 0..r.u32()? {
                pool.types.push(r.str()?);
            }
            for _ in 0..r.u32()? {
                pool.methods.push((r.str()?, r.str()?, r.str()?));
            }
            for _ in 0..r.u32()? {
                pool.fields.push((r.str()?, r.str()?, r.str()?));
            }
            files.pools.push(pool);
        }
        for _ in 0..r.u32()? {
            let key = MethodKey {
                class: r.str()?,
                name: r.str()?,
                descriptor: r.str()?,
            };
            let pool = r.u32()?;
            let access = r.u32()?;
            let registers = r.u32()? as u16;
            let ins = r.u32()? as u16;
            let return_type = r.str()?;
            let n_params = r.u32()?;
            let mut params = Vec::with_capacity(n_params as usize);
            for _ in 0..n_params {
                params.push(r.str()?);
            }
            let n_tries = r.u32()?;
            let mut tries = Vec::with_capacity(n_tries as usize);
            for _ in 0..n_tries {
                let start = r.u32()?;
                let count = r.u32()?;
                let n_catches = r.u32()?;
                let mut catches = Vec::with_capacity(n_catches as usize);
                for _ in 0..n_catches {
                    catches.push((r.str()?, r.u32()?));
                }
                let catch_all = if r.u8()? != 0 { Some(r.u32()?) } else { None };
                tries.push(TryRecord {
                    start,
                    count,
                    catches,
                    catch_all,
                });
            }
            let n_trees = r.u32()?;
            let mut trees = Vec::with_capacity(n_trees as usize);
            for _ in 0..n_trees {
                let n_nodes = r.u32()?;
                let mut nodes = Vec::with_capacity(n_nodes as usize);
                for _ in 0..n_nodes {
                    let sm_start = r.u32()?;
                    let sm_end = if r.u8()? != 0 { Some(r.u32()?) } else { None };
                    let parent_raw = r.u32()?;
                    let parent = if parent_raw == u32::MAX {
                        None
                    } else {
                        Some(parent_raw as usize)
                    };
                    let n_il = r.u32()?;
                    let mut il = Vec::with_capacity(n_il as usize);
                    for _ in 0..n_il {
                        let dex_pc = r.u32()?;
                        let n_units = r.u32()?;
                        let mut units = Vec::with_capacity(n_units as usize);
                        for _ in 0..n_units {
                            units.push(r.u16()?);
                        }
                        let payload = if r.u8()? != 0 {
                            let off = r.u32()? as i32;
                            let n = r.u32()?;
                            let mut p = Vec::with_capacity(n as usize);
                            for _ in 0..n {
                                p.push(r.u16()?);
                            }
                            Some((off, p))
                        } else {
                            None
                        };
                        il.push(CollectedInsn {
                            dex_pc,
                            units,
                            payload,
                        });
                    }
                    nodes.push(TreeNode {
                        iim: il
                            .iter()
                            .enumerate()
                            .map(|(i, ins)| (ins.dex_pc, i))
                            .collect(),
                        il,
                        sm_start,
                        sm_end,
                        parent,
                        children: Vec::new(),
                    });
                }
                // Rebuild child links from parent pointers.
                let child_links: Vec<(usize, usize)> = nodes
                    .iter()
                    .enumerate()
                    .filter_map(|(i, n)| n.parent.map(|p| (p, i)))
                    .collect();
                for (p, c) in child_links {
                    nodes[p].children.push(c);
                }
                trees.push(CollectionTree::from_nodes(nodes)?);
            }
            files.methods.push(MethodRecord {
                key,
                pool,
                access,
                registers,
                ins,
                return_type,
                params,
                tries,
                trees,
            });
        }
        for _ in 0..r.u32()? {
            let caller = MethodKey {
                class: r.str()?,
                name: r.str()?,
                descriptor: r.str()?,
            };
            let dex_pc = r.u32()?;
            let n = r.u32()?;
            let mut targets = Vec::with_capacity(n as usize);
            for _ in 0..n {
                targets.push(ReflectionTarget {
                    key: MethodKey {
                        class: r.str()?,
                        name: r.str()?,
                        descriptor: r.str()?,
                    },
                    is_static: r.u8()? != 0,
                    param_count: r.u32()?,
                });
            }
            files.reflection_sites.push(ReflectionSite {
                caller,
                dex_pc,
                targets,
            });
        }
        Ok(files)
    }
}

impl CollectionTree {
    /// Rebuilds a tree from deserialised nodes.
    ///
    /// # Errors
    ///
    /// Returns [`DexLegoError::Codec`] if the node list is empty or parent
    /// links are out of range.
    pub fn from_nodes(nodes: Vec<TreeNode>) -> Result<CollectionTree> {
        if nodes.is_empty() {
            return Err(DexLegoError::Codec("tree with no nodes".into()));
        }
        let len = nodes.len();
        if nodes.iter().any(|n| n.parent.is_some_and(|p| p >= len)) {
            return Err(DexLegoError::Codec("tree parent out of range".into()));
        }
        let mut tree = CollectionTree::new();
        tree.replace_nodes(nodes);
        Ok(tree)
    }
}

#[derive(Default)]
struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn bytes(&mut self, b: &[u8]) {
        self.out.extend_from_slice(b);
    }
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }
    fn opt_str(&mut self, s: Option<&str>) {
        match s {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8]> {
        let end = self.pos + n;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| DexLegoError::Codec("truncated".into()))?;
        self.pos = end;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("length checked")))
    }
    fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| DexLegoError::Codec("bad utf-8".into()))
    }
    fn opt_str(&mut self) -> Result<Option<String>> {
        if self.u8()? != 0 {
            Ok(Some(self.str()?))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_files() -> CollectionFiles {
        let mut tree = CollectionTree::new();
        tree.observe(0, &[0x0012], None);
        tree.observe(1, &[0x1234, 0x5678], Some((4, vec![0x0100, 0x0001])));
        tree.observe(0, &[0x9912], None); // divergence
        CollectionFiles {
            classes: vec![ClassRecord {
                descriptor: "Lcom/test/Main;".into(),
                superclass: Some("Landroid/app/Activity;".into()),
                interfaces: vec!["Lx/I;".into()],
                access: 1,
                source: "app".into(),
                fields: vec![FieldRecord {
                    name: "PHONE".into(),
                    type_desc: "Ljava/lang/String;".into(),
                    access: 0x19,
                    is_static: true,
                    static_value: Some(CollectedValue::Str("800-123-456".into())),
                }],
            }],
            pools: vec![PoolRecord {
                source: "app".into(),
                strings: vec!["800-123-456".into()],
                types: vec!["Lcom/test/Main;".into()],
                methods: vec![(
                    "Lcom/test/Main;".into(),
                    "advancedLeak".into(),
                    "()V".into(),
                )],
                fields: vec![(
                    "Lcom/test/Main;".into(),
                    "PHONE".into(),
                    "Ljava/lang/String;".into(),
                )],
            }],
            methods: vec![MethodRecord {
                key: MethodKey {
                    class: "Lcom/test/Main;".into(),
                    name: "advancedLeak".into(),
                    descriptor: "()V".into(),
                },
                pool: 0,
                access: 1,
                registers: 4,
                ins: 1,
                return_type: "V".into(),
                params: vec![],
                tries: vec![TryRecord {
                    start: 0,
                    count: 4,
                    catches: vec![("Ljava/lang/Exception;".into(), 9)],
                    catch_all: Some(12),
                }],
                trees: vec![tree],
            }],
            reflection_sites: vec![ReflectionSite {
                caller: MethodKey {
                    class: "Lcom/test/Main;".into(),
                    name: "refl".into(),
                    descriptor: "()V".into(),
                },
                dex_pc: 12,
                targets: vec![ReflectionTarget {
                    key: MethodKey {
                        class: "Lcom/test/Main;".into(),
                        name: "hidden".into(),
                        descriptor: "(Ljava/lang/String;)V".into(),
                    },
                    is_static: false,
                    param_count: 1,
                }],
            }],
        }
    }

    #[test]
    fn binary_roundtrip_is_lossless() {
        let files = sample_files();
        let bytes = files.to_bytes();
        let back = CollectionFiles::from_bytes(&bytes).unwrap();
        assert_eq!(back, files);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            CollectionFiles::from_bytes(b"NOPE!"),
            Err(DexLegoError::Codec(_))
        ));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = sample_files().to_bytes();
        // Any strict prefix must fail, not panic.
        for cut in [5usize, 9, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                CollectionFiles::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes should fail"
            );
        }
    }

    #[test]
    fn totals_count_all_nodes() {
        let files = sample_files();
        assert_eq!(files.total_insns(), 3);
        assert_eq!(files.self_modifying_methods().count(), 1);
    }
}
