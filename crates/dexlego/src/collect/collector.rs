//! The just-in-time collecting observer (paper §III-A, Figure 2).
//!
//! [`JitCollector`] implements [`RuntimeObserver`] and records, as the
//! modified ART executes an application:
//!
//! * class metadata when the class linker loads a class,
//! * field metadata and static values when the class is initialised,
//! * method metadata when a method is first entered,
//! * the executed instructions of every method execution, organised into
//!   [`CollectionTree`]s (Algorithm 1) — keeping only unique trees,
//! * resolved targets of reflective calls,
//! * dynamically loaded DEX sources (collected like the main one).
//!
//! Framework classes (source `"<framework>"`) are not collected: the paper
//! collects the application's DEX structures, not the Android framework.

use std::collections::HashMap;

use dexlego_runtime::class::MethodImpl;
use dexlego_runtime::observer::{InsnEvent, RuntimeObserver};
use dexlego_runtime::{ClassId, MethodId, ObjKind, Runtime};

use crate::collect::tree::CollectionTree;
use crate::files::{
    ClassRecord, CollectedValue, CollectionFiles, FieldRecord, MethodKey, MethodRecord,
    ReflectionTarget,
};

/// The collecting observer. Attach to every execution of the target
/// application, then call [`JitCollector::into_files`] to obtain the
/// collection files for offline reassembly.
///
/// # Example
///
/// ```no_run
/// use dexlego_core::JitCollector;
/// use dexlego_runtime::Runtime;
///
/// let mut rt = Runtime::new();
/// let mut collector = JitCollector::new();
/// // ... load the app and drive it with `collector` as the observer ...
/// let files = collector.into_files();
/// assert!(files.methods.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct JitCollector {
    // Classes and methods are keyed with their source tag: a packer that
    // loads the original DEX over the shell redefines same-named classes,
    // and both definitions are collected (the reassembler keeps the latest).
    classes: HashMap<(String, String), ClassRecord>,
    class_order: Vec<(String, String)>,
    methods: HashMap<(MethodKey, u32), MethodRecord>,
    method_order: Vec<(MethodKey, u32)>,
    pools: Vec<crate::files::PoolRecord>,
    pool_by_source: HashMap<usize, u32>,
    reflection: HashMap<(MethodKey, u32), Vec<ReflectionTarget>>,
    frames: Vec<Frame>,
}

#[derive(Debug)]
struct Frame {
    // None: frame not collected (framework/native method).
    key: Option<(MethodKey, u32)>,
    tree: CollectionTree,
}

fn method_key(rt: &Runtime, method: MethodId) -> MethodKey {
    let m = rt.method(method);
    MethodKey {
        class: rt.class(m.class).descriptor.clone(),
        name: m.name.clone(),
        descriptor: m.descriptor.clone(),
    }
}

fn is_app_class(rt: &Runtime, class: ClassId) -> bool {
    rt.class(class).source != "<framework>"
}

impl JitCollector {
    /// Creates an empty collector.
    pub fn new() -> JitCollector {
        JitCollector::default()
    }

    /// Finishes collection and returns the collection files.
    pub fn into_files(self) -> CollectionFiles {
        let mut files = CollectionFiles::default();
        for key in &self.class_order {
            files.classes.push(self.classes[key].clone());
        }
        for key in &self.method_order {
            files.methods.push(self.methods[key].clone());
        }
        files.pools = self.pools;
        let mut sites: Vec<_> = self.reflection.into_iter().collect();
        sites.sort_by(|a, b| a.0.cmp(&b.0));
        for ((caller, dex_pc), targets) in sites {
            files.reflection_sites.push(crate::files::ReflectionSite {
                caller,
                dex_pc,
                targets,
            });
        }
        files
    }

    /// Number of methods with at least one collected tree so far.
    pub fn collected_method_count(&self) -> usize {
        self.methods.len()
    }

    fn record_class(&mut self, rt: &Runtime, class: ClassId) {
        if !is_app_class(rt, class) {
            return;
        }
        let rc = rt.class(class);
        let key = (rc.descriptor.clone(), rc.source.clone());
        if self.classes.contains_key(&key) {
            return;
        }
        // Collect the class metadata: the string/type/class structures of
        // §IV-C ("we firstly store string ...; a type structure is
        // constructed; finally a corresponding class structure").
        let mut fields: Vec<FieldRecord> = rc
            .fields
            .values()
            .map(|&fid| {
                let f = rt.field(fid);
                FieldRecord {
                    name: f.name.clone(),
                    type_desc: f.type_desc.clone(),
                    access: f.access.bits(),
                    is_static: f.access.is_static(),
                    static_value: None,
                }
            })
            .collect();
        fields.sort_by(|a, b| a.name.cmp(&b.name));
        self.classes.insert(
            key.clone(),
            ClassRecord {
                descriptor: rc.descriptor.clone(),
                superclass: rc.superclass.map(|s| rt.class(s).descriptor.clone()),
                interfaces: rc
                    .interfaces
                    .iter()
                    .map(|&i| rt.class(i).descriptor.clone())
                    .collect(),
                access: rc.access.bits(),
                source: rc.source.clone(),
                fields,
            },
        );
        self.class_order.push(key);
    }

    /// Pool index for a runtime DEX source, capturing it on first use.
    fn pool_for_source(&mut self, rt: &Runtime, source: usize) -> u32 {
        if let Some(&idx) = self.pool_by_source.get(&source) {
            return idx;
        }
        let table = rt.dex_table(source);
        let record = crate::files::PoolRecord {
            source: table.source.clone(),
            strings: table.strings.clone(),
            types: table.types.clone(),
            methods: table
                .methods
                .iter()
                .map(|(c, sig)| (c.clone(), sig.name.clone(), sig.descriptor.clone()))
                .collect(),
            fields: table.fields.clone(),
        };
        let idx = self.pools.len() as u32;
        self.pools.push(record);
        self.pool_by_source.insert(source, idx);
        idx
    }

    fn record_static_values(&mut self, rt: &Runtime, class: ClassId) {
        if !is_app_class(rt, class) {
            return;
        }
        let rc = rt.class(class);
        let key = (rc.descriptor.clone(), rc.source.clone());
        let Some(record) = self.classes.get_mut(&key) else {
            return;
        };
        for field in &mut record.fields {
            if !field.is_static {
                continue;
            }
            let Some(&fid) = rc.fields.get(&field.name) else {
                continue;
            };
            let Some(&value) = rc.statics.get(&fid) else {
                continue;
            };
            field.static_value = Some(match field.type_desc.as_str() {
                "Z" => CollectedValue::Bool(value.raw != 0),
                "B" | "S" | "C" | "I" => CollectedValue::Int(value.raw as u32 as i32),
                "J" => CollectedValue::Long(value.as_long()),
                "F" => CollectedValue::Float(f32::from_bits(value.raw as u32)),
                "D" => CollectedValue::Double(value.as_double()),
                "Ljava/lang/String;" => match rt.heap.as_string(value.raw as u32) {
                    Some(s) => CollectedValue::Str(s.to_owned()),
                    None => CollectedValue::Null,
                },
                _ => CollectedValue::Null,
            });
        }
    }
}

impl RuntimeObserver for JitCollector {
    fn on_class_load(&mut self, rt: &Runtime, class: ClassId) {
        self.record_class(rt, class);
    }

    fn on_class_init(&mut self, rt: &Runtime, class: ClassId) {
        // Initialisation links methods/fields and installs static values.
        self.record_class(rt, class);
        self.record_static_values(rt, class);
    }

    fn on_method_enter(&mut self, rt: &Runtime, method: MethodId) {
        let m = rt.method(method);
        let collectable = is_app_class(rt, m.class)
            && matches!(m.body, MethodImpl::Bytecode { .. })
            && rt.method_source(method).is_some();
        let key = if collectable {
            let pool = self.pool_for_source(rt, rt.method_source(method).expect("checked"));
            let m = rt.method(method);
            let key = (method_key(rt, method), pool);
            if !self.methods.contains_key(&key) {
                self.method_order.push(key.clone());
                let (registers, ins, tries) = match &m.body {
                    MethodImpl::Bytecode {
                        registers,
                        ins,
                        tries,
                        handlers,
                        ..
                    } => {
                        // Resolve catch types against the source's pools so
                        // the try/catch structure survives reassembly.
                        let source = rt.method_source(method).expect("checked");
                        let types = &rt.dex_table(source).types;
                        let records = tries
                            .iter()
                            .filter_map(|t| {
                                let handler = handlers.get(t.handler_index)?;
                                Some(crate::files::TryRecord {
                                    start: t.start_addr,
                                    count: u32::from(t.insn_count),
                                    catches: handler
                                        .catches
                                        .iter()
                                        .filter_map(|c| {
                                            types
                                                .get(c.type_idx as usize)
                                                .map(|d| (d.clone(), c.addr))
                                        })
                                        .collect(),
                                    catch_all: handler.catch_all_addr,
                                })
                            })
                            .collect();
                        (*registers, *ins, records)
                    }
                    _ => (0, 0, Vec::new()),
                };
                self.methods.insert(
                    key.clone(),
                    MethodRecord {
                        key: key.0.clone(),
                        pool,
                        access: m.access.bits(),
                        registers,
                        ins,
                        return_type: m.return_type.clone(),
                        params: m.params.clone(),
                        tries,
                        trees: Vec::new(),
                    },
                );
            }
            Some(key)
        } else {
            None
        };
        self.frames.push(Frame {
            key,
            tree: CollectionTree::new(),
        });
    }

    fn on_method_exit(&mut self, _rt: &Runtime, _method: MethodId) {
        let Some(frame) = self.frames.pop() else {
            return;
        };
        let Some(key) = frame.key else { return };
        if frame.tree.node(0).il.is_empty() {
            return;
        }
        let record = self.methods.get_mut(&key).expect("recorded at enter");
        // "We generate multiple collection trees for multiple executions of
        // the method and keep only the unique trees."
        if !record.trees.iter().any(|t| t.same_shape(&frame.tree)) {
            record.trees.push(frame.tree);
        }
    }

    fn on_instruction(&mut self, rt: &Runtime, ev: &InsnEvent<'_>) {
        let Some(frame) = self.frames.last_mut() else {
            return;
        };
        if frame.key.is_none() {
            return;
        }
        // Capture the payload for payload-referencing instructions so
        // switches and fill-array-data survive reassembly.
        let payload = if matches!(
            ev.insn.op,
            dexlego_dalvik::Opcode::PackedSwitch
                | dexlego_dalvik::Opcode::SparseSwitch
                | dexlego_dalvik::Opcode::FillArrayData
        ) {
            let payload_pc = ev.insn.target(ev.dex_pc);
            // Serve the raw units from the predecoded tables when the
            // method is cached; decode from the live body otherwise.
            let precached = rt
                .predecoded_cached(ev.method)
                .and_then(|p| p.payload_units(payload_pc))
                .map(|units| (ev.insn.off, units.to_vec()));
            if precached.is_some() {
                precached
            } else if let MethodImpl::Bytecode { insns, .. } = &rt.method(ev.method).body {
                let payload_pc = payload_pc as usize;
                dexlego_dalvik::decode_insn(insns, payload_pc)
                    .ok()
                    .map(|d| {
                        let len = d.units();
                        (ev.insn.off, insns[payload_pc..payload_pc + len].to_vec())
                    })
            } else {
                None
            }
        } else {
            None
        };
        frame.tree.observe(ev.dex_pc, ev.units, payload);
    }

    fn on_reflective_call(
        &mut self,
        rt: &Runtime,
        caller: MethodId,
        call_site: u32,
        target: MethodId,
    ) {
        let caller_key = method_key(rt, caller);
        let t = rt.method(target);
        let target_rec = ReflectionTarget {
            key: method_key(rt, target),
            is_static: t.access.is_static(),
            param_count: t.params.len() as u32,
        };
        let entry = self.reflection.entry((caller_key, call_site)).or_default();
        if !entry.contains(&target_rec) {
            entry.push(target_rec);
        }
    }

    fn on_dynamic_load(&mut self, rt: &Runtime, _source: &str, classes: &[ClassId]) {
        // "The execution of the code in the dynamic loaded DEX file also
        // follows the same flow": classes are recorded like main-DEX ones.
        for &c in classes {
            self.record_class(rt, c);
        }
    }
}

/// Convenience: reads a string static value back out of the runtime, used
/// by tests.
pub fn heap_string(rt: &Runtime, handle: u32) -> Option<String> {
    match rt.heap.get(handle).map(|o| &o.kind) {
        Some(ObjKind::Str(s)) => Some(s.clone()),
        _ => None,
    }
}
