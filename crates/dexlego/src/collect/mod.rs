//! Just-in-time collection: Algorithm 1 and the collecting observer.

pub mod collector;
pub mod tree;

pub use collector::JitCollector;
pub use tree::{CollectedInsn, CollectionTree, NodeId, TreeNode};
