//! The collection tree: the paper's Algorithm 1 and Figure 3 data
//! structures.
//!
//! One [`CollectionTree`] records all instructions executed during a single
//! execution of a method. The root node's Instruction List (IL) is the
//! baseline; whenever an instruction with an already-recorded `dex_pc`
//! differs from the recorded one, the bytecode has been modified at runtime
//! and a child node (a *divergence branch*) is forked. The Instruction
//! Index Map (IIM) maps `dex_pc` values to IL indices for the comparisons.

use std::collections::HashMap;

/// Index of a node within its [`CollectionTree`].
pub type NodeId = usize;

/// A captured instruction: its `dex_pc` and exact code units, plus any
/// switch/array payload it references (payloads are not themselves executed,
/// so they are captured alongside the referencing instruction).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CollectedInsn {
    /// Index of the instruction in the method's code-unit array.
    pub dex_pc: u32,
    /// Raw code units (`SameIns` in Algorithm 1 compares these).
    pub units: Vec<u16>,
    /// Payload units for `packed-switch`/`sparse-switch`/`fill-array-data`,
    /// with the original payload offset (relative to the instruction).
    pub payload: Option<(i32, Vec<u16>)>,
}

/// One node of the collection tree (the `TreeNode` structure of Figure 3).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TreeNode {
    /// Instruction List: executed instructions in first-execution order.
    pub il: Vec<CollectedInsn>,
    /// Instruction Index Map: `dex_pc` → index in [`Self::il`].
    pub iim: HashMap<u32, usize>,
    /// `sm_start`: the `dex_pc` where this divergence branch begins
    /// (meaningless for the root, which uses 0).
    pub sm_start: u32,
    /// `sm_end`: the `dex_pc` where this branch converged back to its
    /// parent, if it did.
    pub sm_end: Option<u32>,
    /// Parent node, `None` for the root.
    pub parent: Option<NodeId>,
    /// Child divergence branches, in creation order.
    pub children: Vec<NodeId>,
}

/// The collection result for a single execution of one method.
///
/// # Example
///
/// ```
/// use dexlego_core::collect::CollectionTree;
/// let mut tree = CollectionTree::new();
/// tree.observe(0, &[0x0012], None); // const/4 v0, #0
/// tree.observe(1, &[0x000e], None); // return-void
/// tree.observe(0, &[0x1012], None); // modified! const/4 v0, #1
/// assert_eq!(tree.node_count(), 2); // root + one divergence branch
/// ```
#[derive(Debug, Clone, Eq)]
pub struct CollectionTree {
    nodes: Vec<TreeNode>,
    current: NodeId,
}

impl PartialEq for CollectionTree {
    /// Structural equality: the `current` cursor is transient collection
    /// state and is ignored (it is not serialised either).
    fn eq(&self, other: &CollectionTree) -> bool {
        self.nodes == other.nodes
    }
}

impl Default for CollectionTree {
    fn default() -> CollectionTree {
        CollectionTree::new()
    }
}

impl CollectionTree {
    /// Creates a tree with an empty root node as the current node.
    pub fn new() -> CollectionTree {
        CollectionTree {
            nodes: vec![TreeNode::default()],
            current: 0,
        }
    }

    /// The root node id.
    pub const fn root(&self) -> NodeId {
        0
    }

    /// Number of nodes (1 = no self-modification observed).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node with the given id.
    pub fn node(&self, id: NodeId) -> &TreeNode {
        &self.nodes[id]
    }

    /// All nodes in creation order.
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Total collected instructions across all nodes.
    pub fn total_insns(&self) -> usize {
        self.nodes.iter().map(|n| n.il.len()).sum()
    }

    /// Processes one executed instruction (the body of Algorithm 1's loop).
    pub fn observe(&mut self, dex_pc: u32, units: &[u16], payload: Option<(i32, Vec<u16>)>) {
        // Case 1: dex_pc already recorded in the current node.
        if let Some(&pos_in_il) = self.nodes[self.current].iim.get(&dex_pc) {
            let old_ins = &self.nodes[self.current].il[pos_in_il];
            if old_ins.units == units {
                // Same instruction re-executed (loop): nothing to record.
                return;
            }
            // Divergence: the instruction at this dex_pc changed since we
            // recorded it. Fork a child branch.
            let child = self.nodes.len();
            self.nodes.push(TreeNode {
                sm_start: dex_pc,
                parent: Some(self.current),
                ..TreeNode::default()
            });
            self.nodes[self.current].children.push(child);
            self.current = child;
            // Fall through: record the instruction in the new node.
        } else if let Some(parent) = self.nodes[self.current].parent {
            // Case 2: unseen in the current (divergence) node — check for
            // convergence back to the parent.
            if let Some(&pos_in_il) = self.nodes[parent].iim.get(&dex_pc) {
                if self.nodes[parent].il[pos_in_il].units == units {
                    // The divergence branch converges: this layer of
                    // self-modification ended.
                    self.nodes[self.current].sm_end = Some(dex_pc);
                    self.current = parent;
                    return;
                }
            }
        }
        // Record as a new instruction of the current node.
        let node = &mut self.nodes[self.current];
        let pos = node.il.len();
        node.il.push(CollectedInsn {
            dex_pc,
            units: units.to_vec(),
            payload,
        });
        node.iim.insert(dex_pc, pos);
    }

    /// Structural equality ignoring the `current` cursor — used to keep
    /// only unique trees across multiple executions of a method.
    pub fn same_shape(&self, other: &CollectionTree) -> bool {
        self.nodes == other.nodes
    }

    /// Replaces the node storage wholesale (deserialisation support).
    pub(crate) fn replace_nodes(&mut self, nodes: Vec<TreeNode>) {
        self.nodes = nodes;
        self.current = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ins(units: &[u16]) -> Vec<u16> {
        units.to_vec()
    }

    #[test]
    fn straight_line_records_in_order() {
        let mut t = CollectionTree::new();
        t.observe(0, &ins(&[0x0012]), None);
        t.observe(1, &ins(&[0x0013, 0x002a]), None);
        t.observe(3, &ins(&[0x000f]), None);
        assert_eq!(t.node_count(), 1);
        let root = t.node(t.root());
        assert_eq!(root.il.len(), 3);
        assert_eq!(root.iim[&0], 0);
        assert_eq!(root.iim[&1], 1);
        assert_eq!(root.iim[&3], 2);
    }

    #[test]
    fn loop_does_not_duplicate() {
        let mut t = CollectionTree::new();
        for _ in 0..10 {
            t.observe(0, &ins(&[0x0090]), None);
            t.observe(2, &ins(&[0x0028]), None);
        }
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.node(0).il.len(), 2);
    }

    #[test]
    fn modification_forks_child() {
        let mut t = CollectionTree::new();
        t.observe(0, &ins(&[0xaaaa]), None);
        t.observe(1, &ins(&[0xbbbb]), None);
        // Re-execute pc 1 with different units -> divergence.
        t.observe(1, &ins(&[0xcccc]), None);
        assert_eq!(t.node_count(), 2);
        let child = t.node(1);
        assert_eq!(child.sm_start, 1);
        assert_eq!(child.parent, Some(0));
        assert_eq!(child.il.len(), 1);
        assert_eq!(child.il[0].units, ins(&[0xcccc]));
        assert_eq!(t.node(0).children, vec![1]);
    }

    #[test]
    fn divergence_converges_back_to_parent() {
        let mut t = CollectionTree::new();
        t.observe(0, &ins(&[0xaaaa]), None); // baseline pc0
        t.observe(1, &ins(&[0xbbbb]), None); // baseline pc1
        t.observe(2, &ins(&[0xdddd]), None); // baseline pc2
        t.observe(1, &ins(&[0xcccc]), None); // diverge at pc1
        t.observe(2, &ins(&[0xdddd]), None); // same as parent pc2 -> converge
        assert_eq!(t.node_count(), 2);
        let child = t.node(1);
        assert_eq!(child.sm_start, 1);
        assert_eq!(child.sm_end, Some(2));
        // After convergence the current node is the root again: a new pc
        // lands in the root.
        t.observe(5, &ins(&[0xeeee]), None);
        assert_eq!(t.node(0).il.len(), 4);
    }

    #[test]
    fn nested_divergence_layers() {
        let mut t = CollectionTree::new();
        t.observe(0, &ins(&[0x00aa]), None);
        t.observe(1, &ins(&[0x00bb]), None);
        t.observe(1, &ins(&[0x00cc]), None); // layer 1 divergence
        t.observe(1, &ins(&[0x00dd]), None); // wait: same node sees pc1 again with different units -> layer 2
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.node(2).parent, Some(1));
        assert_eq!(t.node(2).sm_start, 1);
    }

    #[test]
    fn code1_scenario_shapes_tree_like_listing1() {
        // Modelled on the paper's Code 1 / Listing 1: a loop whose body at
        // "pc 8" is `invoke normal` in iteration one and `invoke sink` in
        // iteration two, converging at "pc 11" (the tamper call).
        let normal = ins(&[0x206e, 0x0001, 0x0043]);
        let sink = ins(&[0x206e, 0x0002, 0x0043]);
        let tamper = ins(&[0x206e, 0x0003, 0x0053]);
        let mut t = CollectionTree::new();
        // iteration 1
        t.observe(0, &ins(&[0x0071, 0x0000, 0x0000]), None); // source
        t.observe(3, &ins(&[0x000c]), None);
        t.observe(4, &ins(&[0x0012]), None); // i = 0
        t.observe(5, &ins(&[0x2212]), None); // const 2
        t.observe(6, &ins(&[0x0235, 0x000b]), None); // if-ge
        t.observe(8, &normal, None);
        t.observe(11, &tamper, None);
        t.observe(14, &ins(&[0x01d8, 0x0101]), None); // i++
        t.observe(16, &ins(&[0xf328]), None); // goto
                                              // iteration 2: pc 8 now holds `sink`
        t.observe(5, &ins(&[0x2212]), None);
        t.observe(6, &ins(&[0x0235, 0x000b]), None);
        t.observe(8, &sink, None); // divergence!
        t.observe(11, &tamper, None); // convergence
        t.observe(14, &ins(&[0x01d8, 0x0101]), None);
        t.observe(16, &ins(&[0xf328]), None);
        // loop exits
        t.observe(5, &ins(&[0x2212]), None);
        t.observe(6, &ins(&[0x0235, 0x000b]), None);
        t.observe(17, &ins(&[0x000e]), None); // return-void

        // Exactly the Listing 1 shape: a root and one child holding one
        // instruction (the sink invoke).
        assert_eq!(t.node_count(), 2);
        let child = t.node(1);
        assert_eq!(child.il.len(), 1);
        assert_eq!(child.il[0].units, sink);
        assert_eq!(child.sm_start, 8);
        assert_eq!(child.sm_end, Some(11));
        // The root kept `normal` at pc 8.
        let root = t.node(0);
        assert_eq!(root.il[root.iim[&8]].units, normal);
    }

    #[test]
    fn same_shape_ignores_cursor() {
        let mut a = CollectionTree::new();
        let mut b = CollectionTree::new();
        for t in [&mut a, &mut b] {
            t.observe(0, &[0x0012], None);
            t.observe(1, &[0x000e], None);
        }
        assert!(a.same_shape(&b));
        b.observe(0, &[0x1112], None); // diverge in b only
        assert!(!a.same_shape(&b));
    }
}
