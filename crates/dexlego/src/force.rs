//! Force execution (paper §IV-E, Figure 4).
//!
//! The first force-execution prototype for "Android" (here: for the
//! simulated ART). Each iteration:
//!
//! 1. **Branch analysis** — from the coverage of all previous executions,
//!    identify Uncovered Conditional Branches (UCBs): `(branch, direction)`
//!    pairs never taken.
//! 2. **Path analysis** — over the method's CFG, compute the sequence of
//!    branch decisions leading from the method entry to each UCB.
//! 3. **Forced run** — re-execute the app with an observer that overrides
//!    the branch decisions along the path (and tolerates unhandled
//!    exceptions, since forced paths may be infeasible).
//!
//! Iteration stops when a round discovers no new coverage or the iteration
//! budget is exhausted.

use std::collections::{HashMap, HashSet, VecDeque};

use dexlego_dalvik::{decode_method, Decoded, Opcode};
use dexlego_runtime::class::MethodImpl;
use dexlego_runtime::observer::RuntimeObserver;
use dexlego_runtime::{MethodId, Runtime};

/// Records which branch directions have executed (the "result of the
/// previous execution" in Figure 4).
#[derive(Debug, Default)]
pub struct BranchCoverage {
    covered: HashSet<(MethodId, u32, bool)>,
    entered: HashSet<MethodId>,
}

impl BranchCoverage {
    /// Creates empty coverage.
    pub fn new() -> BranchCoverage {
        BranchCoverage::default()
    }

    /// Number of `(branch, direction)` pairs covered.
    pub fn covered_count(&self) -> usize {
        self.covered.len()
    }

    /// Whether a direction of a branch has been observed.
    pub fn is_covered(&self, method: MethodId, dex_pc: u32, direction: bool) -> bool {
        self.covered.contains(&(method, dex_pc, direction))
    }

    /// Methods entered at least once.
    pub fn entered_methods(&self) -> impl Iterator<Item = MethodId> + '_ {
        self.entered.iter().copied()
    }
}

impl RuntimeObserver for BranchCoverage {
    fn on_method_enter(&mut self, _rt: &Runtime, method: MethodId) {
        self.entered.insert(method);
    }
    fn on_branch(&mut self, _rt: &Runtime, method: MethodId, dex_pc: u32, taken: bool) {
        self.covered.insert((method, dex_pc, taken));
    }
}

/// An Uncovered Conditional Branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ucb {
    /// Containing method.
    pub method: MethodId,
    /// `dex_pc` of the conditional branch.
    pub dex_pc: u32,
    /// The direction (`true` = taken) not yet covered.
    pub direction: bool,
}

/// A path to a UCB: the branch decisions to force, in order, ending with
/// the UCB's own missing direction. Saved "into a file" in the paper; here
/// it is the in-memory equivalent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForcedPath {
    /// The method the path applies to.
    pub method: MethodId,
    /// `(dex_pc, direction)` decisions from method entry.
    pub decisions: Vec<(u32, bool)>,
}

/// Identifies every UCB among methods that have been entered.
pub fn find_ucbs(rt: &Runtime, coverage: &BranchCoverage) -> Vec<Ucb> {
    let mut ucbs = Vec::new();
    let mut methods: Vec<MethodId> = coverage.entered_methods().collect();
    methods.sort();
    for method in methods {
        let MethodImpl::Bytecode { insns, .. } = &rt.method(method).body else {
            continue;
        };
        let Ok(decoded) = decode_method(insns) else {
            continue;
        };
        for (pc, d) in decoded {
            let Decoded::Insn(insn) = d else { continue };
            if !insn.op.is_conditional_branch() {
                continue;
            }
            for direction in [true, false] {
                if !coverage.is_covered(method, pc, direction) {
                    ucbs.push(Ucb {
                        method,
                        dex_pc: pc,
                        direction,
                    });
                }
            }
        }
    }
    ucbs
}

/// Computes the branch-decision path from the method entry to `ucb` via BFS
/// over the method's CFG. Returns `None` when the UCB is unreachable in the
/// CFG (e.g. inside an exception handler).
pub fn path_to_ucb(rt: &Runtime, ucb: Ucb) -> Option<ForcedPath> {
    let MethodImpl::Bytecode { insns, .. } = &rt.method(ucb.method).body else {
        return None;
    };
    let decoded = decode_method(insns).ok()?;
    let index: HashMap<u32, &Decoded> = decoded.iter().map(|(pc, d)| (*pc, d)).collect();

    // BFS storing the decision list used to reach each pc.
    let mut visited: HashSet<u32> = HashSet::new();
    let mut queue: VecDeque<(u32, Vec<(u32, bool)>)> = VecDeque::new();
    queue.push_back((0, Vec::new()));
    while let Some((pc, decisions)) = queue.pop_front() {
        if !visited.insert(pc) {
            continue;
        }
        if pc == ucb.dex_pc {
            let mut final_decisions = decisions;
            final_decisions.push((ucb.dex_pc, ucb.direction));
            return Some(ForcedPath {
                method: ucb.method,
                decisions: final_decisions,
            });
        }
        let Some(d) = index.get(&pc) else { continue };
        let Decoded::Insn(insn) = d else { continue };
        let next = pc + insn.units() as u32;
        match insn.op {
            Opcode::Goto | Opcode::Goto16 | Opcode::Goto32 => {
                queue.push_back((insn.target(pc), decisions));
            }
            op if op.is_conditional_branch() => {
                let mut taken = decisions.clone();
                taken.push((pc, true));
                queue.push_back((insn.target(pc), taken));
                let mut fall = decisions;
                fall.push((pc, false));
                queue.push_back((next, fall));
            }
            Opcode::PackedSwitch | Opcode::SparseSwitch => {
                // Switch arms are traversable but not forcible; path search
                // may pass through any arm or the fall-through.
                if let Some(payload) = index.get(&insn.target(pc)) {
                    let targets: Vec<i32> = match payload {
                        Decoded::PackedSwitchPayload { targets, .. } => targets.clone(),
                        Decoded::SparseSwitchPayload { targets, .. } => targets.clone(),
                        _ => Vec::new(),
                    };
                    for rel in targets {
                        queue.push_back((pc.wrapping_add(rel as u32), decisions.clone()));
                    }
                }
                queue.push_back((next, decisions));
            }
            op if op.is_return() || op == Opcode::Throw => {}
            _ => queue.push_back((next, decisions)),
        }
    }
    None
}

/// The forcing observer: follows one [`ForcedPath`] per method cursor-wise
/// (the cursor resets on each entry into the method), overriding exactly
/// the decisions along the paths, and tolerates unhandled exceptions
/// (paper: "we monitor the unhandled exception in the interpreter and
/// tolerate it by directly clear the exception").
///
/// Multiple paths compose interprocedurally: reaching an uncovered branch
/// inside a method that is itself only reachable through a forced branch
/// requires forcing both the caller's path and the callee's path in the
/// same run.
#[derive(Debug)]
pub struct Forcer {
    paths: HashMap<MethodId, Vec<(u32, bool)>>,
    cursors: HashMap<MethodId, usize>,
}

impl Forcer {
    /// Creates a forcer for one path.
    pub fn new(path: ForcedPath) -> Forcer {
        Forcer::with_paths(vec![path])
    }

    /// Creates a forcer composing several per-method paths. Later paths for
    /// the same method override earlier ones.
    pub fn with_paths(paths: Vec<ForcedPath>) -> Forcer {
        let mut map = HashMap::new();
        for p in paths {
            map.insert(p.method, p.decisions);
        }
        Forcer {
            paths: map,
            cursors: HashMap::new(),
        }
    }
}

impl RuntimeObserver for Forcer {
    fn on_method_enter(&mut self, _rt: &Runtime, method: MethodId) {
        if self.paths.contains_key(&method) {
            self.cursors.insert(method, 0);
        }
    }

    fn override_branch(
        &mut self,
        _rt: &Runtime,
        method: MethodId,
        dex_pc: u32,
        _would_take: bool,
    ) -> Option<bool> {
        let decisions = self.paths.get(&method)?;
        let cursor = self.cursors.entry(method).or_insert(0);
        let &(pc, direction) = decisions.get(*cursor)?;
        if pc == dex_pc {
            *cursor += 1;
            Some(direction)
        } else {
            None
        }
    }

    fn tolerate_exceptions(&self) -> bool {
        true
    }
}

/// Statistics from an iterative force-execution session.
#[derive(Debug, Clone, Copy, Default)]
pub struct ForceStats {
    /// Number of Figure-4 iterations performed.
    pub iterations: usize,
    /// Forced runs executed.
    pub forced_runs: usize,
    /// UCBs for which no CFG path was found.
    pub unreachable_ucbs: usize,
}

/// Runs the iterative force-execution loop of Figure 4.
///
/// `drive` performs one full execution of the target application (e.g. one
/// fuzzing session); `extra` is chained into every run (DexLego chains its
/// [`crate::JitCollector`] here so collection continues during forcing).
pub fn iterative_force<F>(
    rt: &mut Runtime,
    drive: &mut F,
    extra: &mut dyn RuntimeObserver,
    max_iterations: usize,
) -> (BranchCoverage, ForceStats)
where
    F: FnMut(&mut Runtime, &mut dyn RuntimeObserver),
{
    let mut coverage = BranchCoverage::new();
    let mut stats = ForceStats::default();
    // Which forced paths were active when a method was first entered —
    // composing them lets later iterations re-reach methods that are only
    // reachable through forced branches.
    let mut provenance: HashMap<MethodId, Vec<ForcedPath>> = HashMap::new();

    // Previous execution: a plain run.
    {
        let mut entered = EnteredSet::default();
        let mut obs = ChainMut(&mut entered, &mut ChainMut(&mut coverage, extra));
        drive(rt, &mut obs);
        for m in entered.methods {
            provenance.entry(m).or_default();
        }
    }

    let mut attempted: HashSet<Ucb> = HashSet::new();
    for _ in 0..max_iterations {
        stats.iterations += 1;
        let before = coverage.covered_count();
        let ucbs: Vec<Ucb> = find_ucbs(rt, &coverage)
            .into_iter()
            .filter(|u| !attempted.contains(u))
            .collect();
        if ucbs.is_empty() {
            break;
        }
        for ucb in ucbs {
            attempted.insert(ucb);
            if coverage.is_covered(ucb.method, ucb.dex_pc, ucb.direction) {
                continue; // a previous forced run already got there
            }
            let Some(path) = path_to_ucb(rt, ucb) else {
                stats.unreachable_ucbs += 1;
                continue;
            };
            let mut paths = provenance.get(&ucb.method).cloned().unwrap_or_default();
            paths.push(path);
            let active_paths = paths.clone();
            let mut forcer = Forcer::with_paths(paths);
            let mut entered = EnteredSet::default();
            {
                let mut inner = ChainMut(&mut coverage, extra);
                let mut with_cov = ChainMut(&mut entered, &mut inner);
                let mut obs = ChainMut(&mut forcer, &mut with_cov);
                drive(rt, &mut obs);
            }
            stats.forced_runs += 1;
            for m in entered.methods {
                provenance.entry(m).or_insert_with(|| active_paths.clone());
            }
        }
        if coverage.covered_count() == before {
            break; // no new UCB coverage generated this iteration
        }
    }
    (coverage, stats)
}

/// Records which methods a run entered (for force-path provenance).
#[derive(Default)]
struct EnteredSet {
    methods: HashSet<MethodId>,
}

impl RuntimeObserver for EnteredSet {
    fn on_method_enter(&mut self, _rt: &Runtime, method: MethodId) {
        self.methods.insert(method);
    }
}

/// Chains two mutable observer references (the owned
/// [`dexlego_runtime::observer::Pair`] requires ownership; forcing needs
/// borrows).
pub struct ChainMut<'a, A: ?Sized, B: ?Sized>(pub &'a mut A, pub &'a mut B);

impl<A, B> RuntimeObserver for ChainMut<'_, A, B>
where
    A: RuntimeObserver + ?Sized,
    B: RuntimeObserver + ?Sized,
{
    fn on_class_load(&mut self, rt: &Runtime, class: dexlego_runtime::ClassId) {
        self.0.on_class_load(rt, class);
        self.1.on_class_load(rt, class);
    }
    fn on_class_init(&mut self, rt: &Runtime, class: dexlego_runtime::ClassId) {
        self.0.on_class_init(rt, class);
        self.1.on_class_init(rt, class);
    }
    fn on_method_enter(&mut self, rt: &Runtime, method: MethodId) {
        self.0.on_method_enter(rt, method);
        self.1.on_method_enter(rt, method);
    }
    fn on_method_exit(&mut self, rt: &Runtime, method: MethodId) {
        self.0.on_method_exit(rt, method);
        self.1.on_method_exit(rt, method);
    }
    fn on_instruction(&mut self, rt: &Runtime, event: &dexlego_runtime::observer::InsnEvent<'_>) {
        self.0.on_instruction(rt, event);
        self.1.on_instruction(rt, event);
    }
    fn on_branch(&mut self, rt: &Runtime, method: MethodId, dex_pc: u32, taken: bool) {
        self.0.on_branch(rt, method, dex_pc, taken);
        self.1.on_branch(rt, method, dex_pc, taken);
    }
    fn on_reflective_call(&mut self, rt: &Runtime, caller: MethodId, site: u32, target: MethodId) {
        self.0.on_reflective_call(rt, caller, site, target);
        self.1.on_reflective_call(rt, caller, site, target);
    }
    fn on_dynamic_load(
        &mut self,
        rt: &Runtime,
        source: &str,
        classes: &[dexlego_runtime::ClassId],
    ) {
        self.0.on_dynamic_load(rt, source, classes);
        self.1.on_dynamic_load(rt, source, classes);
    }
    fn on_exception(&mut self, rt: &Runtime, method: MethodId, dex_pc: u32) {
        self.0.on_exception(rt, method, dex_pc);
        self.1.on_exception(rt, method, dex_pc);
    }
    fn override_branch(
        &mut self,
        rt: &Runtime,
        method: MethodId,
        dex_pc: u32,
        would_take: bool,
    ) -> Option<bool> {
        self.0
            .override_branch(rt, method, dex_pc, would_take)
            .or_else(|| self.1.override_branch(rt, method, dex_pc, would_take))
    }
    fn tolerate_exceptions(&self) -> bool {
        self.0.tolerate_exceptions() || self.1.tolerate_exceptions()
    }
}
