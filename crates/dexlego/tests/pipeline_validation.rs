//! The pipeline surfaces [`validate_reveal`] findings in
//! [`RevealOutcome::validation`] instead of requiring a separate call:
//! a clean reveal reports no findings, while a deliberately truncated
//! collection (dropped class record, emptied method trees) reassembles into
//! a DEX that is *missing* collected code — and the pipeline says so.
//!
//! [`validate_reveal`]: dexlego_core::pipeline::validate_reveal
//! [`RevealOutcome::validation`]: dexlego_core::pipeline::RevealOutcome

use dexlego_core::pipeline::{reassemble_collection, reveal};
use dexlego_core::CollectionFiles;
use dexlego_dalvik::builder::ProgramBuilder;
use dexlego_dalvik::Opcode;
use dexlego_runtime::Runtime;

const MAIN: &str = "Lval/Main;";
const HELPER: &str = "Lval/Helper;";

fn build_app() -> dexlego_dex::DexFile {
    let mut pb = ProgramBuilder::new();
    pb.class(HELPER, |c| {
        c.static_method("triple", &["I"], "I", 2, |m| {
            let n = m.param_reg(0);
            m.asm.binop_lit8(Opcode::MulIntLit8, 0, n, 3);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    pb.class(MAIN, |c| {
        c.static_method("run", &[], "I", 2, |m| {
            m.asm.const4(0, 5);
            m.invoke(Opcode::InvokeStatic, HELPER, "triple", &["I"], "I", &[0]);
            let mut mr = dexlego_dalvik::Insn::of(Opcode::MoveResult);
            mr.a = 1;
            m.asm.push(mr);
            m.asm.ret(Opcode::Return, 1);
        });
    });
    pb.build().expect("assembles")
}

/// Reveals the small two-class app and returns its collection files.
fn collect() -> CollectionFiles {
    let mut rt = Runtime::new();
    let dex = build_app();
    let outcome = reveal(&mut rt, |rt, obs| {
        if rt.load_dex_observed(&dex, "app", obs).is_err() {
            return;
        }
        let _ = rt.call_static(obs, MAIN, "run", "()I", &[]);
    })
    .expect("reveal succeeds");
    assert!(
        outcome.validation.is_empty(),
        "clean reveal must validate: {:?}",
        outcome.validation
    );
    outcome.files
}

#[test]
fn clean_collection_reports_no_findings_and_phase_timings() {
    let mut rt = Runtime::new();
    let dex = build_app();
    let outcome = reveal(&mut rt, |rt, obs| {
        if rt.load_dex_observed(&dex, "app", obs).is_err() {
            return;
        }
        let _ = rt.call_static(obs, MAIN, "run", "()I", &[]);
    })
    .expect("reveal succeeds");
    assert!(outcome.validation.is_empty());
    // Every pipeline phase shows up in the metrics, in execution order.
    let names: Vec<&str> = outcome.metrics.phases().iter().map(|&(n, _)| n).collect();
    assert_eq!(
        names,
        [
            "collect",
            "serialize",
            "tree_merge",
            "dexgen",
            "canonicalize",
            "verify",
            "validate"
        ]
    );
    assert!(outcome.metrics.counter("methods_collected").unwrap() >= 2);
    assert!(outcome.metrics.counter("insns_collected").unwrap() > 0);
    assert_eq!(outcome.metrics.counter("validation_findings"), Some(0));
}

#[test]
fn truncated_class_file_is_flagged_by_the_pipeline() {
    let mut files = collect();
    // Truncate the class-data file: drop the helper class record. Its
    // collected method can no longer be emitted, so the reassembled DEX is
    // missing code that was observed executing.
    let before = files.classes.len();
    files.classes.retain(|c| c.descriptor != HELPER);
    assert_eq!(
        files.classes.len(),
        before - 1,
        "helper class was collected"
    );
    let outcome = reassemble_collection(files).expect("reassembly still succeeds");
    assert!(
        outcome
            .validation
            .iter()
            .any(|p| p.contains(HELPER) && p.contains("class missing from output")),
        "truncated class must be reported: {:?}",
        outcome.validation
    );
}

#[test]
fn truncated_method_trees_are_flagged_by_the_pipeline() {
    let mut files = collect();
    // Truncate the bytecode file: empty one collected method's trees. The
    // reassembler skips bodiless records, so the method vanishes from the
    // output while remaining in the collection.
    let record = files
        .methods
        .iter_mut()
        .find(|m| m.key.class == HELPER)
        .expect("helper method collected");
    record.trees.clear();
    let outcome = reassemble_collection(files).expect("reassembly still succeeds");
    assert!(
        outcome
            .validation
            .iter()
            .any(|p| p.contains("triple") && p.contains("method missing from output")),
        "truncated method must be reported: {:?}",
        outcome.validation
    );
}
