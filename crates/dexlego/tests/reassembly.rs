//! Reassembly-focused integration tests: method variants, multi-target
//! reflection sites, payload preservation, and force-assisted revelation.

use dexlego_core::pipeline::{reveal, reveal_with_force};
use dexlego_dalvik::builder::ProgramBuilder;
use dexlego_dalvik::{decode_method, Decoded, Insn, Opcode};
use dexlego_dex::verify::{verify, Strictness};
use dexlego_runtime::class::SigKey;
use dexlego_runtime::{Runtime, Slot};

fn invoked_names(dex: &dexlego_dex::DexFile, insns: &[u16]) -> Vec<String> {
    decode_method(insns)
        .unwrap()
        .into_iter()
        .filter_map(|(_, d)| match d {
            Decoded::Insn(insn) if insn.op.is_invoke() => {
                Some(dex.method_signature(insn.idx).unwrap())
            }
            _ => None,
        })
        .collect()
}

/// Two executions take different switch arms — two unique trees — so the
/// reassembler must emit method variants plus a guarded dispatcher.
#[test]
fn divergent_control_flow_produces_variants_and_dispatcher() {
    let entry = "Lvar/Main;";
    let mut pb = ProgramBuilder::new();
    pb.class(entry, |c| {
        c.static_method("pick", &["I"], "I", 2, |m| {
            let p = m.param_reg(0);
            let (a, b) = (m.asm.new_label(), m.asm.new_label());
            m.asm.if_z(Opcode::IfEqz, p, a);
            m.asm.goto(b);
            m.asm.bind(a);
            m.asm.const4(0, 10);
            m.asm.ret(Opcode::Return, 0);
            m.asm.bind(b);
            m.asm.const4(0, 20);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    let dex = pb.build().unwrap();
    let mut rt = Runtime::new();
    let outcome = reveal(&mut rt, |rt, obs| {
        rt.load_dex_observed(&dex, "app", obs).unwrap();
        for arg in [0, 1] {
            rt.call_static(obs, entry, "pick", "(I)I", &[Slot::from_int(arg)])
                .unwrap();
        }
    })
    .unwrap();

    // The record holds two unique trees.
    let record = outcome
        .files
        .methods
        .iter()
        .find(|m| m.key.name == "pick")
        .unwrap();
    assert_eq!(record.trees.len(), 2, "two distinct execution shapes");

    // The output has pick, pick$v0, pick$v1; the dispatcher invokes both
    // variants behind instrument-class guards.
    let out = &outcome.dex;
    verify(out, Strictness::Sorted).unwrap();
    let class = out.find_class(entry).unwrap();
    let data = class.class_data.as_ref().unwrap();
    let names: Vec<String> = data
        .methods()
        .map(|m| out.method_signature(m.method_idx).unwrap())
        .collect();
    assert!(names.iter().any(|n| n.contains("->pick(")), "{names:?}");
    assert!(names.iter().any(|n| n.contains("pick$v0")), "{names:?}");
    assert!(names.iter().any(|n| n.contains("pick$v1")), "{names:?}");
    let dispatcher = data
        .methods()
        .find(|m| {
            out.method_signature(m.method_idx)
                .is_ok_and(|s| s.contains("->pick(I)I"))
        })
        .unwrap();
    let invoked = invoked_names(out, &dispatcher.code.as_ref().unwrap().insns);
    assert!(invoked.iter().any(|s| s.contains("pick$v0")));
    assert!(invoked.iter().any(|s| s.contains("pick$v1")));
}

/// One reflective call site resolving to two different targets across
/// executions becomes a guard-selected pair of direct calls.
#[test]
fn multi_target_reflection_site_emits_guarded_direct_calls() {
    let entry = "Lmulti/Main;";
    let mut pb = ProgramBuilder::new();
    pb.class(entry, |c| {
        c.static_method("alpha", &[], "V", 1, |m| {
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
        c.static_method("beta", &[], "V", 1, |m| {
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
        // call(name): Class.forName("multi.Main").getMethod(name).invoke()
        c.static_method("call", &["Ljava/lang/String;"], "V", 5, |m| {
            let name = m.param_reg(0);
            m.const_str(0, "multi.Main");
            m.invoke(
                Opcode::InvokeStatic,
                "Ljava/lang/Class;",
                "forName",
                &["Ljava/lang/String;"],
                "Ljava/lang/Class;",
                &[0],
            );
            let mut mr = Insn::of(Opcode::MoveResultObject);
            mr.a = 1;
            m.asm.push(mr);
            m.invoke(
                Opcode::InvokeVirtual,
                "Ljava/lang/Class;",
                "getMethod",
                &["Ljava/lang/String;"],
                "Ljava/lang/reflect/Method;",
                &[1, name],
            );
            let mut mr2 = Insn::of(Opcode::MoveResultObject);
            mr2.a = 2;
            m.asm.push(mr2);
            m.asm.const4(3, 0);
            m.invoke(
                Opcode::InvokeVirtual,
                "Ljava/lang/reflect/Method;",
                "invoke",
                &["Ljava/lang/Object;", "[Ljava/lang/Object;"],
                "Ljava/lang/Object;",
                &[2, 3, 3],
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();
    let mut dex = dex;
    let alpha_str = dex.intern_string("alpha");
    let beta_str = dex.intern_string("beta");
    let _ = (alpha_str, beta_str);

    let mut rt = Runtime::new();
    let outcome = reveal(&mut rt, |rt, obs| {
        rt.load_dex_observed(&dex, "app", obs).unwrap();
        for target in ["alpha", "beta"] {
            let s = rt.intern_string(target);
            rt.call_static(obs, entry, "call", "(Ljava/lang/String;)V", &[Slot::of(s)])
                .unwrap();
        }
    })
    .unwrap();

    // One site, two targets.
    assert_eq!(outcome.files.reflection_sites.len(), 1);
    assert_eq!(outcome.files.reflection_sites[0].targets.len(), 2);

    // The reassembled `call` variants collectively invoke alpha and beta
    // directly and no longer reference Method.invoke.
    let out = &outcome.dex;
    let class = out.find_class(entry).unwrap();
    let mut all_invoked = Vec::new();
    for method in class.class_data.as_ref().unwrap().methods() {
        if let Some(code) = &method.code {
            all_invoked.extend(invoked_names(out, &code.insns));
        }
    }
    assert!(
        all_invoked.iter().any(|s| s.contains("->alpha()V")),
        "{all_invoked:?}"
    );
    assert!(
        all_invoked.iter().any(|s| s.contains("->beta()V")),
        "{all_invoked:?}"
    );
    assert!(
        !all_invoked
            .iter()
            .any(|s| s.contains("Ljava/lang/reflect/Method;->invoke")),
        "reflective call replaced: {all_invoked:?}"
    );
}

/// Switch payloads and fill-array-data payloads survive collection and
/// reassembly: the reassembled method still branches correctly.
#[test]
fn switch_and_array_payloads_survive_reassembly() {
    let entry = "Lpay/Main;";
    let mut pb = ProgramBuilder::new();
    pb.class(entry, |c| {
        c.static_method("classify", &["I"], "I", 3, |m| {
            let p = m.param_reg(0);
            let arms: Vec<_> = (0..3).map(|_| m.asm.new_label()).collect();
            let end = m.asm.new_label();
            m.asm.packed_switch(p, 0, arms.clone());
            m.asm.const4(0, -1);
            m.asm.ret(Opcode::Return, 0);
            for (k, arm) in arms.iter().enumerate() {
                m.asm.bind(*arm);
                m.asm.const4(0, (k as i64) * 10);
                m.asm.goto(end);
            }
            m.asm.bind(end);
            m.asm.ret(Opcode::Return, 0);
        });
        c.static_method("sum", &[], "I", 4, |m| {
            m.asm.const4(0, 3);
            m.new_array(1, 0, "[I");
            m.asm
                .fill_array_data(1, 4, vec![5, 0, 0, 0, 6, 0, 0, 0, 7, 0, 0, 0]);
            m.asm.const4(2, 1);
            m.asm.binop(Opcode::Aget, 3, 1, 2);
            m.asm.ret(Opcode::Return, 3);
        });
    });
    let dex = pb.build().unwrap();
    let mut rt = Runtime::new();
    let outcome = reveal(&mut rt, |rt, obs| {
        rt.load_dex_observed(&dex, "app", obs).unwrap();
        for arg in [0, 1, 2, 9] {
            rt.call_static(obs, entry, "classify", "(I)I", &[Slot::from_int(arg)])
                .unwrap();
        }
        rt.call_static(obs, entry, "sum", "()I", &[]).unwrap();
    })
    .unwrap();

    // `sum` was collected from a single execution shape, so the
    // reassembled method must *run* identically in a fresh runtime —
    // including its fill-array-data payload.
    let mut rt2 = Runtime::new();
    rt2.load_dex(&outcome.dex, "revealed").unwrap();
    let mut obs = dexlego_runtime::observer::NullObserver;
    let ret = rt2.call_static(&mut obs, entry, "sum", "()I", &[]).unwrap();
    assert_eq!(ret.as_int(), Some(6));

    // `classify` split into per-execution variants (the dispatcher's guard
    // fields select variants statically, not by input — the paper accepts
    // this indeterminacy since the output targets static analysis). What
    // must hold: every collected arm constant and a packed-switch payload
    // exist somewhere in the reassembled class.
    let out = &outcome.dex;
    let class = out.find_class(entry).unwrap();
    let mut consts = std::collections::HashSet::new();
    let mut has_switch_payload = false;
    for method in class.class_data.as_ref().unwrap().methods() {
        let Some(code) = &method.code else { continue };
        for (_, d) in decode_method(&code.insns).unwrap() {
            match d {
                Decoded::Insn(insn) if matches!(insn.op, Opcode::Const4 | Opcode::Const16) => {
                    consts.insert(insn.lit);
                }
                Decoded::PackedSwitchPayload { .. } => has_switch_payload = true,
                _ => {}
            }
        }
    }
    for expected in [0i64, 10, 20, -1] {
        assert!(
            consts.contains(&expected),
            "arm constant {expected} collected"
        );
    }
    assert!(has_switch_payload, "packed-switch payload reassembled");
}

/// `reveal_with_force` collects code that plain fuzzing cannot reach.
#[test]
fn force_assisted_reveal_collects_gated_code() {
    let entry = "Lgate/Main;";
    let mut pb = ProgramBuilder::new();
    pb.class(entry, |c| {
        c.superclass("Landroid/app/Activity;");
        c.method("onCreate", &["Landroid/os/Bundle;"], "V", 3, |m| {
            // if (Input.nextIntBound(1 << 30) == 12345) hidden();
            m.asm.const4(0, 1 << 30);
            m.invoke(
                Opcode::InvokeStatic,
                "Lcom/dexlego/Input;",
                "nextIntBound",
                &["I"],
                "I",
                &[0],
            );
            let mut mr = Insn::of(Opcode::MoveResult);
            mr.a = 1;
            m.asm.push(mr);
            m.asm.const4(2, 12345);
            let skip = m.asm.new_label();
            m.asm.if_cmp(Opcode::IfNe, 1, 2, skip);
            m.invoke(Opcode::InvokeStatic, "Lgate/Main;", "hidden", &[], "V", &[]);
            m.asm.bind(skip);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
        c.static_method("hidden", &[], "V", 2, |m| {
            m.const_str(0, "gated-code-ran");
            m.invoke(
                Opcode::InvokeStatic,
                "Landroid/util/Log;",
                "i",
                &["Ljava/lang/String;", "Ljava/lang/String;"],
                "I",
                &[0, 0],
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();

    let drive = |rt: &mut Runtime, obs: &mut dyn dexlego_runtime::RuntimeObserver| {
        if rt.find_class(entry).is_none() && rt.load_dex_observed(&dex, "app", obs).is_err() {
            return;
        }
        let Ok(activity) = rt.new_instance(obs, entry) else {
            return;
        };
        let class = rt.find_class(entry).unwrap();
        let on_create = rt
            .resolve_method(class, &SigKey::new("onCreate", "(Landroid/os/Bundle;)V"))
            .unwrap();
        let _ = rt.call_method(obs, on_create, &[Slot::of(activity), Slot::of(0)]);
    };

    // Plain reveal misses `hidden`.
    let mut rt = Runtime::new();
    let plain = reveal(&mut rt, drive).unwrap();
    assert!(
        !plain.files.methods.iter().any(|m| m.key.name == "hidden"),
        "fuzzing alone should not reach the gated method"
    );

    // Force-assisted reveal collects it.
    let mut rt = Runtime::new();
    let (forced, stats) = reveal_with_force(&mut rt, drive, 4).unwrap();
    assert!(stats.forced_runs > 0);
    assert!(
        forced.files.methods.iter().any(|m| m.key.name == "hidden"),
        "force execution reaches and collects the gated method"
    );
    // And the collected method appears in the reassembled DEX.
    let class = forced.dex.find_class(entry).unwrap();
    let names: Vec<String> = class
        .class_data
        .as_ref()
        .unwrap()
        .methods()
        .map(|m| forced.dex.method_signature(m.method_idx).unwrap())
        .collect();
    assert!(names.iter().any(|n| n.contains("hidden")), "{names:?}");
}

/// Try/catch structure survives collection and reassembly: a method whose
/// executed handler caught a division fault keeps an exception table in
/// the revealed DEX, and re-running the revealed code still catches.
#[test]
fn try_catch_tables_survive_reassembly() {
    let entry = "Ltry/Main;";
    let mut pb = ProgramBuilder::new();
    pb.class(entry, |c| {
        c.static_method("safeDiv", &["I", "I"], "I", 1, |m| {
            let (a, b) = (m.param_reg(0), m.param_reg(1));
            m.asm.binop(Opcode::DivInt, 0, a, b);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    let mut dex = pb.build().unwrap();
    // Wrap the division in a catch-all try whose handler returns -1.
    {
        let class = dex.class_defs_mut().get_mut(0).unwrap();
        let code = class.class_data.as_mut().unwrap().direct_methods[0]
            .code
            .as_mut()
            .unwrap();
        let handler_addr = code.insns.len() as u32;
        code.insns.extend([0xf012, 0x000f]); // const/4 v0,#-1 ; return v0
        code.handlers.push(dexlego_dex::EncodedCatchHandler {
            catches: vec![],
            catch_all_addr: Some(handler_addr),
        });
        code.tries.push(dexlego_dex::TryItem {
            start_addr: 0,
            insn_count: 2,
            handler_index: 0,
        });
    }

    let mut rt = Runtime::new();
    let outcome = reveal(&mut rt, |rt, obs| {
        rt.load_dex_observed(&dex, "app", obs).unwrap();
        // Execute both the normal path and the handler path so both are
        // collected.
        rt.call_static(
            obs,
            entry,
            "safeDiv",
            "(II)I",
            &[Slot::from_int(8), Slot::from_int(2)],
        )
        .unwrap();
        rt.call_static(
            obs,
            entry,
            "safeDiv",
            "(II)I",
            &[Slot::from_int(8), Slot::from_int(0)],
        )
        .unwrap();
    })
    .unwrap();

    let out = &outcome.dex;
    dexlego_dex::verify::verify(out, dexlego_dex::verify::Strictness::Sorted).unwrap();
    let class = out.find_class(entry).unwrap();
    let methods: Vec<_> = class.class_data.as_ref().unwrap().methods().collect();
    // At least one reassembled variant keeps an exception table.
    let with_tries = methods
        .iter()
        .filter(|m| m.code.as_ref().is_some_and(|c| !c.tries.is_empty()))
        .count();
    assert!(with_tries >= 1, "exception table reassembled");

    // Every reassembled exception table is structurally sound: handler
    // addresses land on real instructions and ranges stay in bounds (the
    // strict verifier checks the latter; check the former explicitly).
    for method in &methods {
        let Some(code) = &method.code else { continue };
        let pcs: std::collections::HashSet<u32> = decode_method(&code.insns)
            .unwrap()
            .iter()
            .map(|(pc, _)| *pc)
            .collect();
        for handler in &code.handlers {
            for clause in &handler.catches {
                assert!(pcs.contains(&clause.addr), "catch addr on an instruction");
            }
            if let Some(addr) = handler.catch_all_addr {
                assert!(pcs.contains(&addr), "catch-all addr on an instruction");
            }
        }
    }

    // The variant collected from the faulting execution carries its handler
    // code: some method contains the `const/4 v0, #-1` handler constant.
    let has_handler_const = methods.iter().any(|m| {
        m.code.as_ref().is_some_and(|c| {
            decode_method(&c.insns).unwrap().iter().any(|(_, d)| {
                matches!(d, Decoded::Insn(i)
                    if i.op == Opcode::Const4 && i.lit == -1)
            })
        })
    });
    assert!(has_handler_const, "executed handler code collected");
}

/// Recursion: each frame of a recursive method is its own execution and
/// yields its own tree; distinct shapes (base vs recursive case) become
/// method variants, and validate_reveal holds.
#[test]
fn recursive_method_collection_and_validation() {
    let entry = "Lrec/Main;";
    let mut pb = ProgramBuilder::new();
    pb.class(entry, |c| {
        // int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }
        c.static_method("fact", &["I"], "I", 3, |m| {
            let n = m.param_reg(0);
            let base = m.asm.new_label();
            m.asm.const4(0, 1);
            m.asm.if_cmp(Opcode::IfLe, n, 0, base);
            m.asm.binop_lit8(Opcode::AddIntLit8, 1, n, -1);
            m.invoke(
                Opcode::InvokeStatic,
                "Lrec/Main;",
                "fact",
                &["I"],
                "I",
                &[1],
            );
            let mut mr = Insn::of(Opcode::MoveResult);
            mr.a = 2;
            m.asm.push(mr);
            m.asm.binop(Opcode::MulInt, 0, n, 2);
            m.asm.bind(base);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    let dex = pb.build().unwrap();
    let mut rt = Runtime::new();
    let outcome = reveal(&mut rt, |rt, obs| {
        rt.load_dex_observed(&dex, "app", obs).unwrap();
        let r = rt
            .call_static(obs, entry, "fact", "(I)I", &[Slot::from_int(5)])
            .unwrap();
        assert_eq!(r.as_int(), Some(120));
    })
    .unwrap();
    let record = outcome
        .files
        .methods
        .iter()
        .find(|m| m.key.name == "fact")
        .unwrap();
    // Two shapes: the recursive case and the base case.
    assert_eq!(record.trees.len(), 2);
    assert!(
        dexlego_core::pipeline::validate_reveal(&outcome.files, &outcome.dex).is_empty(),
        "validation holds for recursive collection"
    );
}

/// `validate_reveal` actually detects a broken reveal.
#[test]
fn validate_reveal_detects_missing_method() {
    let entry = "Lval/Main;";
    let mut pb = ProgramBuilder::new();
    pb.class(entry, |c| {
        c.static_method("go", &[], "I", 1, |m| {
            m.asm.const4(0, 1);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    let dex = pb.build().unwrap();
    let mut rt = Runtime::new();
    let outcome = reveal(&mut rt, |rt, obs| {
        rt.load_dex_observed(&dex, "app", obs).unwrap();
        rt.call_static(obs, entry, "go", "()I", &[]).unwrap();
    })
    .unwrap();
    assert!(dexlego_core::pipeline::validate_reveal(&outcome.files, &outcome.dex).is_empty());
    // Break it: validate against an empty DEX.
    let broken = dexlego_dex::DexFile::new();
    let problems = dexlego_core::pipeline::validate_reveal(&outcome.files, &broken);
    assert!(!problems.is_empty());
    assert!(problems[0].contains("class missing"));
}

/// The paper's hardest reflection case (§IV-D): a reflective call that
/// involves *no string parameter at all* — the Method object comes out of
/// `getDeclaredMethods()[i]`. Statically unresolvable even with string
/// analysis; DexLego records the runtime-resolved target and emits a
/// direct call.
#[test]
fn stringless_reflection_is_revealed() {
    let entry = "Lnostr/Main;";
    let mut pb = ProgramBuilder::new();
    pb.class(entry, |c| {
        c.static_method("victim", &["Ljava/lang/String;"], "V", 1, |m| {
            let p = m.param_reg(0);
            m.invoke(
                Opcode::InvokeStatic,
                "Lcom/dexlego/Net;",
                "send",
                &["Ljava/lang/String;"],
                "V",
                &[p],
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
        c.static_method("go", &[], "V", 8, |m| {
            m.invoke(
                Opcode::InvokeStatic,
                "Lcom/dexlego/Sensitive;",
                "getSensitiveData",
                &[],
                "Ljava/lang/String;",
                &[],
            );
            let mut mr = Insn::of(Opcode::MoveResultObject);
            mr.a = 7;
            m.asm.push(mr);
            // Class object without a string: const-class.
            m.const_class(0, "Lnostr/Main;");
            m.invoke(
                Opcode::InvokeVirtual,
                "Ljava/lang/Class;",
                "getDeclaredMethods",
                &[],
                "[Ljava/lang/reflect/Method;",
                &[0],
            );
            let mut mr2 = Insn::of(Opcode::MoveResultObject);
            mr2.a = 1;
            m.asm.push(mr2);
            // Methods are sorted by name: [go, victim] -> index 1.
            m.asm.const4(2, 1);
            m.asm.binop(Opcode::AgetObject, 3, 1, 2);
            // Box the payload.
            m.asm.const4(4, 1);
            m.new_array(5, 4, "[Ljava/lang/Object;");
            m.asm.const4(6, 0);
            m.asm.binop(Opcode::AputObject, 7, 5, 6);
            m.asm.const4(4, 0);
            m.invoke(
                Opcode::InvokeVirtual,
                "Ljava/lang/reflect/Method;",
                "invoke",
                &["Ljava/lang/Object;", "[Ljava/lang/Object;"],
                "Ljava/lang/Object;",
                &[3, 4, 5],
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();

    // Statically invisible for every tool on the original.
    for tool in dexlego_analysis::tools::all_tools() {
        assert!(
            !tool.run(&dex).leaky(),
            "{}: stringless reflection must be unresolvable",
            tool.name
        );
    }

    // Runtime leak happens; DexLego reveals it.
    let mut rt = Runtime::new();
    let outcome = reveal(&mut rt, |rt, obs| {
        rt.load_dex_observed(&dex, "app", obs).unwrap();
        rt.call_static(obs, entry, "go", "()V", &[]).unwrap();
    })
    .unwrap();
    assert_eq!(
        rt.log.tainted_sinks().count(),
        1,
        "the attack works at runtime"
    );
    assert_eq!(outcome.files.reflection_sites.len(), 1);
    assert!(outcome.files.reflection_sites[0].targets[0]
        .key
        .name
        .contains("victim"));
    for tool in dexlego_analysis::tools::all_tools() {
        assert!(
            tool.run(&outcome.dex).leaky(),
            "{}: revealed direct call is analyzable",
            tool.name
        );
    }
}
