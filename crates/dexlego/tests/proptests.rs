//! Property-based tests for Algorithm 1's collection tree and the
//! collection-file codec.

use dexlego_core::collect::CollectionTree;
use dexlego_core::files::{
    ClassRecord, CollectedValue, CollectionFiles, FieldRecord, MethodKey, MethodRecord, PoolRecord,
};
use proptest::prelude::*;

/// A simulated execution trace: (dex_pc, instruction-unit value) pairs.
/// Low cardinality so that repeats, loops, and modifications all occur.
fn trace_strategy() -> impl Strategy<Value = Vec<(u32, u16)>> {
    proptest::collection::vec((0u32..12, 0u16..4), 1..120)
}

proptest! {
    /// Structural invariants of Algorithm 1 hold for arbitrary traces:
    /// every node's IIM is a bijection onto its IL indices, children record
    /// valid parents, and each IL holds at most one instruction per dex_pc.
    #[test]
    fn tree_invariants_hold(trace in trace_strategy()) {
        let mut tree = CollectionTree::new();
        for &(pc, unit) in &trace {
            tree.observe(pc, &[unit], None);
        }
        for (id, node) in tree.nodes().iter().enumerate() {
            // IIM maps dex_pc -> IL index, bijectively.
            prop_assert_eq!(node.iim.len(), node.il.len());
            for (pc, &idx) in &node.iim {
                prop_assert_eq!(&node.il[idx].dex_pc, pc);
            }
            // Parent/child links are consistent.
            if let Some(parent) = node.parent {
                prop_assert!(parent < tree.node_count());
                prop_assert!(tree.node(parent).children.contains(&id));
            } else {
                prop_assert_eq!(id, 0);
            }
            for &child in &node.children {
                prop_assert_eq!(tree.node(child).parent, Some(id));
            }
        }
    }

    /// A trace with a unique instruction per dex_pc (no modification) never
    /// forks: the tree stays a single node regardless of control flow.
    #[test]
    fn unmodified_trace_single_node(pcs in proptest::collection::vec(0u32..32, 1..80)) {
        let mut tree = CollectionTree::new();
        for &pc in &pcs {
            // The instruction at each pc is a function of the pc alone.
            tree.observe(pc, &[pc as u16 | 0x100], None);
        }
        prop_assert_eq!(tree.node_count(), 1);
        // The root IL holds exactly the distinct pcs.
        let distinct: std::collections::HashSet<u32> = pcs.iter().copied().collect();
        prop_assert_eq!(tree.node(0).il.len(), distinct.len());
    }

    /// Each observed event records at most one instruction, and a loop
    /// (repeating the same instruction at the same pc) records nothing —
    /// the code-scale property that motivates the tree. Note the bound is
    /// per *event*: an adversary alternating two instruction versions at
    /// one pc forks a sibling branch per flip (exactly what Algorithm 1
    /// does), so the tree is not bounded by distinct (pc, units) pairs.
    #[test]
    fn code_scale_is_bounded_by_events(trace in trace_strategy()) {
        let mut tree = CollectionTree::new();
        for &(pc, unit) in &trace {
            tree.observe(pc, &[unit], None);
        }
        prop_assert!(tree.total_insns() <= trace.len());
        // And a pure loop records exactly one copy.
        let mut looped = CollectionTree::new();
        for _ in 0..50 {
            for &(pc, unit) in trace.iter().take(3) {
                looped.observe(pc + 100, &[unit], None);
            }
        }
        let distinct: std::collections::HashSet<u32> =
            trace.iter().take(3).map(|&(pc, _)| pc + 100).collect();
        prop_assert!(looped.node(0).il.len() <= trace.len().min(3).max(distinct.len()));
    }

    /// Observing the same trace twice produces identical shapes
    /// (determinism — the dedup in the collector relies on it).
    #[test]
    fn observation_is_deterministic(trace in trace_strategy()) {
        let mut a = CollectionTree::new();
        let mut b = CollectionTree::new();
        for &(pc, unit) in &trace {
            a.observe(pc, &[unit], None);
            b.observe(pc, &[unit], None);
        }
        prop_assert!(a.same_shape(&b));
    }
}

fn value_strategy() -> impl Strategy<Value = CollectedValue> {
    prop_oneof![
        any::<bool>().prop_map(CollectedValue::Bool),
        any::<i32>().prop_map(CollectedValue::Int),
        any::<i64>().prop_map(CollectedValue::Long),
        any::<f32>().prop_map(CollectedValue::Float),
        any::<f64>().prop_map(CollectedValue::Double),
        "\\PC{0,16}".prop_map(CollectedValue::Str),
        Just(CollectedValue::Null),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The binary collection-file codec is lossless for arbitrary content.
    #[test]
    fn collection_files_roundtrip(
        class_names in proptest::collection::vec("[a-z]{1,8}", 0..4),
        field_values in proptest::collection::vec(value_strategy(), 0..4),
        trace in trace_strategy(),
    ) {
        let mut files = CollectionFiles::default();
        for (i, name) in class_names.iter().enumerate() {
            files.classes.push(ClassRecord {
                descriptor: format!("Lgen/{name}{i};"),
                superclass: (i % 2 == 0).then(|| "Ljava/lang/Object;".to_owned()),
                interfaces: vec![],
                access: 1,
                source: "app".to_owned(),
                fields: field_values
                    .iter()
                    .enumerate()
                    .map(|(j, v)| FieldRecord {
                        name: format!("f{j}"),
                        type_desc: "I".to_owned(),
                        access: 0x9,
                        is_static: true,
                        static_value: Some(v.clone()),
                    })
                    .collect(),
            });
        }
        let mut tree = CollectionTree::new();
        for &(pc, unit) in &trace {
            tree.observe(pc, &[unit, unit ^ 0xffff], None);
        }
        files.pools.push(PoolRecord {
            source: "app".to_owned(),
            strings: class_names.clone(),
            types: vec!["I".to_owned()],
            methods: vec![("La;".to_owned(), "m".to_owned(), "()V".to_owned())],
            fields: vec![],
        });
        files.methods.push(MethodRecord {
            key: MethodKey {
                class: "La;".to_owned(),
                name: "m".to_owned(),
                descriptor: "()V".to_owned(),
            },
            pool: 0,
            access: 1,
            registers: 4,
            ins: 1,
            return_type: "V".to_owned(),
            params: vec![],
            tries: vec![],
            trees: vec![tree],
        });

        let bytes = files.to_bytes();
        let back = CollectionFiles::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, files);
    }

    /// The codec rejects any truncation without panicking.
    #[test]
    fn codec_truncation_rejected(cut_fraction in 0.0f64..0.999) {
        let mut files = CollectionFiles::default();
        files.classes.push(ClassRecord {
            descriptor: "La;".to_owned(),
            superclass: None,
            interfaces: vec!["Lx;".to_owned()],
            access: 1,
            source: "app".to_owned(),
            fields: vec![],
        });
        let bytes = files.to_bytes();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        if cut < bytes.len() {
            prop_assert!(CollectionFiles::from_bytes(&bytes[..cut]).is_err());
        }
    }
}
