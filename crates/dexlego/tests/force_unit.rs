//! Focused tests for the force-execution machinery: UCB identification,
//! CFG path computation, forcer cursor semantics, and the coverage
//! recorder's metrics.

use dexlego_core::coverage::{measure, CoverageRecorder};
use dexlego_core::force::{find_ucbs, iterative_force, path_to_ucb, BranchCoverage, Forcer, Ucb};
use dexlego_dalvik::builder::ProgramBuilder;
use dexlego_dalvik::Opcode;
use dexlego_runtime::class::SigKey;
use dexlego_runtime::observer::RuntimeObserver;
use dexlego_runtime::{MethodId, Runtime, Slot};

/// int gate(int x) { if (x == 7) return 1; return 0; }
fn gated_runtime() -> (Runtime, MethodId) {
    let mut pb = ProgramBuilder::new();
    pb.class("La;", |c| {
        c.static_method("gate", &["I"], "I", 2, |m| {
            let x = m.param_reg(0);
            let hit = m.asm.new_label();
            m.asm.const4(0, 7);
            m.asm.if_cmp(Opcode::IfEq, x, 0, hit);
            m.asm.const4(1, 0);
            m.asm.ret(Opcode::Return, 1);
            m.asm.bind(hit);
            m.asm.const4(1, 1);
            m.asm.ret(Opcode::Return, 1);
        });
    });
    let dex = pb.build().unwrap();
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();
    let class = rt.find_class("La;").unwrap();
    let method = rt
        .resolve_method(class, &SigKey::new("gate", "(I)I"))
        .unwrap();
    (rt, method)
}

#[test]
fn ucbs_are_uncovered_directions_of_entered_methods() {
    let (mut rt, method) = gated_runtime();
    let mut coverage = BranchCoverage::new();
    // One run with x=0: the branch falls through (taken=false covered).
    rt.call_method(&mut coverage, method, &[Slot::from_int(0)])
        .unwrap();
    let ucbs = find_ucbs(&rt, &coverage);
    assert_eq!(ucbs.len(), 1);
    assert!(ucbs[0].direction, "only the taken direction is uncovered");
    assert_eq!(ucbs[0].method, method);

    // Never-entered methods contribute no UCBs.
    let empty = BranchCoverage::new();
    assert!(find_ucbs(&rt, &empty).is_empty());
}

#[test]
fn path_to_ucb_lists_decisions_in_order() {
    let (rt, method) = gated_runtime();
    // Path to take the branch at its pc.
    let decoded = {
        use dexlego_runtime::class::MethodImpl;
        let MethodImpl::Bytecode { insns, .. } = &rt.method(method).body else {
            panic!()
        };
        dexlego_dalvik::decode_method(insns).unwrap()
    };
    let branch_pc = decoded
        .iter()
        .find_map(|(pc, d)| match d {
            dexlego_dalvik::Decoded::Insn(i) if i.op.is_conditional_branch() => Some(*pc),
            _ => None,
        })
        .unwrap();
    let path = path_to_ucb(
        &rt,
        Ucb {
            method,
            dex_pc: branch_pc,
            direction: true,
        },
    )
    .expect("branch reachable from entry");
    assert_eq!(path.decisions.last(), Some(&(branch_pc, true)));
}

#[test]
fn forcer_applies_decisions_once_per_entry() {
    let (mut rt, method) = gated_runtime();
    let path = {
        let mut coverage = BranchCoverage::new();
        rt.call_method(&mut coverage, method, &[Slot::from_int(0)])
            .unwrap();
        let ucb = find_ucbs(&rt, &coverage).remove(0);
        path_to_ucb(&rt, ucb).unwrap()
    };
    let mut forcer = Forcer::new(path);
    // Forcing makes gate(0) behave like gate(7).
    let forced = rt
        .call_method(&mut forcer, method, &[Slot::from_int(0)])
        .unwrap();
    assert_eq!(forced.as_int(), Some(1));
    // The cursor resets on re-entry: a second forced call behaves the same.
    let again = rt
        .call_method(&mut forcer, method, &[Slot::from_int(0)])
        .unwrap();
    assert_eq!(again.as_int(), Some(1));
}

#[test]
fn iterative_force_converges_and_stops() {
    let (mut rt, method) = gated_runtime();
    let mut drive = |rt: &mut Runtime, obs: &mut dyn RuntimeObserver| {
        let _ = rt.call_method(obs, method, &[Slot::from_int(0)]);
    };
    let mut extra = dexlego_runtime::observer::NullObserver;
    let (coverage, stats) = iterative_force(&mut rt, &mut drive, &mut extra, 10);
    // Both directions end covered; iteration stopped well before the cap.
    assert!(coverage.is_covered(method, 1, true));
    assert!(coverage.is_covered(method, 1, false));
    assert!(stats.iterations < 10);
    assert_eq!(stats.forced_runs, 1);
}

#[test]
fn coverage_recorder_measures_all_granularities() {
    let mut pb = ProgramBuilder::new();
    pb.class("Lc/Main;", |c| {
        c.static_method("half", &["I"], "I", 2, |m| {
            let x = m.param_reg(0);
            let neg = m.asm.new_label();
            m.asm.if_z(Opcode::IfLtz, x, neg);
            m.asm.const4(0, 1);
            m.asm.ret(Opcode::Return, 0);
            m.asm.bind(neg);
            m.asm.const4(0, -1);
            m.asm.ret(Opcode::Return, 0);
        });
        c.static_method("never", &[], "V", 1, |m| {
            m.asm.nop();
            m.asm.nop();
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();
    let mut recorder = CoverageRecorder::new();
    rt.call_static(
        &mut recorder,
        "Lc/Main;",
        "half",
        "(I)I",
        &[Slot::from_int(5)],
    )
    .unwrap();
    let report = measure(&rt, &recorder);
    // One of two methods entered.
    assert!((report.method - 50.0).abs() < 1.0, "{report:?}");
    // One of two branch directions covered.
    assert!((report.branch - 50.0).abs() < 1.0, "{report:?}");
    // Instruction coverage strictly between 0 and 100.
    assert!(report.instruction > 0.0 && report.instruction < 100.0);
    assert!(report.class > 99.0, "single class counted as hit");
}
