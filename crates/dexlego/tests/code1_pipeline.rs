//! End-to-end reproduction of the paper's running example (Code 1 → Code 2
//! / Code 3 → Listing 1 → Code 4): a native method rewrites the bytecode of
//! `advancedLeak` between loop iterations to hide a taint flow; DexLego's
//! instruction-level collection captures both versions and the reassembled
//! DEX exposes source *and* sink on reachable paths.

use dexlego_core::{pipeline::reveal, INSTRUMENT_CLASS};
use dexlego_dalvik::builder::{ProgramBuilder, StaticInit};
use dexlego_dalvik::{decode_method, encode_insn, Decoded, Insn, Opcode};
use dexlego_dex::verify::{verify, Strictness};
use dexlego_runtime::class::{MethodImpl, SigKey};
use dexlego_runtime::{Runtime, Slot};

const MAIN: &str = "Lcom/test/Main;";

/// Builds the Code 1 application. Returns the DEX plus the pool indices the
/// tamper native needs (decoy string index, and method indices of `normal`
/// and `sink`).
fn build_code1() -> (dexlego_dex::DexFile, u32, u32, u32) {
    let mut pb = ProgramBuilder::new();
    pb.class(MAIN, |c| {
        c.superclass("Landroid/app/Activity;");
        c.static_field(
            "PHONE",
            "Ljava/lang/String;",
            Some(StaticInit::Str("800-123-456".into())),
        );
        // advancedLeak()V — locals v0..v2, this = v3. Laid out to match the
        // paper's Code 2 exactly (see comments for dex_pc values).
        c.method("advancedLeak", &[], "V", 3, |m| {
            let this = m.this_reg();
            let (l0, l1) = (m.asm.new_label(), m.asm.new_label());
            // pc 0..2: invoke-static getSensitiveData (the source)
            m.invoke(
                Opcode::InvokeStatic,
                "Lcom/dexlego/Sensitive;",
                "getSensitiveData",
                &[],
                "Ljava/lang/String;",
                &[],
            );
            // pc 3: move-result-object v0
            let mut mr = Insn::of(Opcode::MoveResultObject);
            mr.a = 0;
            m.asm.push(mr);
            // pc 4: const/4 v1, #0
            m.asm.const4(1, 0);
            // pc 5 (L0): const/4 v2, #2
            m.asm.bind(l0);
            m.asm.const4(2, 2);
            // pc 6..7: if-ge v1, v2 -> L1
            m.asm.if_cmp(Opcode::IfGe, 1, 2, l1);
            // pc 8..10: invoke-virtual {this, v0} normal(String)
            m.invoke(
                Opcode::InvokeVirtual,
                MAIN,
                "normal",
                &["Ljava/lang/String;"],
                "V",
                &[this, 0],
            );
            // pc 11..13: invoke-virtual {this, v1} bytecodeTamper(I)
            m.invoke(
                Opcode::InvokeVirtual,
                MAIN,
                "bytecodeTamper",
                &["I"],
                "V",
                &[this, 1],
            );
            // pc 14..15: add-int/lit8 v1, v1, #1
            m.asm.binop_lit8(Opcode::AddIntLit8, 1, 1, 1);
            // pc 16: goto L0
            m.asm.goto(l0);
            // pc 17 (L1): return-void
            m.asm.bind(l1);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
        c.method("normal", &["Ljava/lang/String;"], "V", 0, |m| {
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
        // sink(String): SmsManager.getDefault().sendTextMessage(PHONE, null,
        // param, null, null)
        c.method("sink", &["Ljava/lang/String;"], "V", 6, |m| {
            let param = m.param_reg(0);
            m.invoke(
                Opcode::InvokeStatic,
                "Landroid/telephony/SmsManager;",
                "getDefault",
                &[],
                "Landroid/telephony/SmsManager;",
                &[],
            );
            let mut mr = Insn::of(Opcode::MoveResultObject);
            mr.a = 0;
            m.asm.push(mr);
            m.sget(Opcode::SgetObject, 1, MAIN, "PHONE", "Ljava/lang/String;");
            m.asm.const4(2, 0);
            m.asm
                .move_reg(dexlego_dalvik::asm::MoveKind::Object, 3, param);
            m.asm.const4(4, 0);
            m.asm.const4(5, 0);
            m.invoke(
                Opcode::InvokeVirtual,
                "Landroid/telephony/SmsManager;",
                "sendTextMessage",
                &[
                    "Ljava/lang/String;",
                    "Ljava/lang/String;",
                    "Ljava/lang/String;",
                    "Ljava/lang/String;",
                    "Ljava/lang/String;",
                ],
                "V",
                &[0, 1, 2, 3, 4, 5],
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
        c.native_method("bytecodeTamper", &["I"], "V");
        c.method("onCreate", &["Landroid/os/Bundle;"], "V", 0, |m| {
            let this = m.this_reg();
            m.invoke(
                Opcode::InvokeVirtual,
                MAIN,
                "advancedLeak",
                &[],
                "V",
                &[this],
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let mut dex = pb.build().unwrap();
    let decoy = dex.intern_string("non-sensitive data");
    let normal_idx = dex.intern_method(MAIN, "normal", "V", &["Ljava/lang/String;"]);
    let sink_idx = dex.intern_method(MAIN, "sink", "V", &["Ljava/lang/String;"]);
    (dex, decoy, normal_idx, sink_idx)
}

/// Registers the `bytecodeTamper` native implementing the paper's comment
/// block: iteration 0 hides the source and swaps `normal` for `sink`;
/// iteration 1 restores the original bytecode.
fn register_tamper(rt: &mut Runtime, decoy: u32, normal_idx: u32, sink_idx: u32) {
    let main = rt.find_class(MAIN).unwrap();
    let leak = rt
        .resolve_method(main, &SigKey::new("advancedLeak", "()V"))
        .unwrap();
    rt.natives
        .register(MAIN, "bytecodeTamper", "(I)V", move |rt, _, args| {
            let i = args[1].as_int();
            let MethodImpl::Bytecode { insns, .. } = &mut rt.method_mut(leak).body else {
                panic!("advancedLeak must be bytecode");
            };
            if i == 0 {
                // Line 11 -> `String a = "non-sensitive data"` :
                // const-string v0, decoy ; nop ; nop   (replaces 4 units)
                let mut cs = Insn::of(Opcode::ConstString);
                cs.a = 0;
                cs.idx = decoy;
                let cs_units = encode_insn(&cs).unwrap();
                insns[0] = cs_units[0];
                insns[1] = cs_units[1];
                insns[2] = 0x0000; // nop
                insns[3] = 0x0000; // nop
                                   // Line 13 -> sink(a): swap the method index at pc 8 (unit 9
                                   // holds the method index of the 35c encoding).
                let mut inv = Insn::of(Opcode::InvokeVirtual);
                inv.idx = sink_idx;
                inv.regs = vec![3, 0];
                let inv_units = encode_insn(&inv).unwrap();
                insns[8..11].copy_from_slice(&inv_units);
            } else {
                // Restore Line 11 (invoke-static source + move-result-object).
                let src = rt_original_prologue();
                let MethodImpl::Bytecode { insns, .. } = &mut rt.method_mut(leak).body else {
                    unreachable!();
                };
                insns[..4].copy_from_slice(&src);
                let mut inv = Insn::of(Opcode::InvokeVirtual);
                inv.idx = normal_idx;
                inv.regs = vec![3, 0];
                let inv_units = encode_insn(&inv).unwrap();
                insns[8..11].copy_from_slice(&inv_units);
            }
            Ok(dexlego_runtime::RetVal::Void)
        });
}

/// The original first four units of `advancedLeak` (captured from a fresh
/// build so restore is exact).
fn rt_original_prologue() -> [u16; 4] {
    let (dex, _, _, _) = build_code1();
    let class = dex.find_class(MAIN).unwrap();
    let method = class
        .class_data
        .as_ref()
        .unwrap()
        .methods()
        .find(|m| {
            dex.method_signature(m.method_idx)
                .is_ok_and(|s| s.contains("advancedLeak"))
        })
        .unwrap();
    let code = method.code.as_ref().unwrap();
    [code.insns[0], code.insns[1], code.insns[2], code.insns[3]]
}

fn method_invoked_signatures(dex: &dexlego_dex::DexFile, insns: &[u16]) -> Vec<String> {
    decode_method(insns)
        .unwrap()
        .into_iter()
        .filter_map(|(_, d)| match d {
            Decoded::Insn(insn) if insn.op.is_invoke() => {
                Some(dex.method_signature(insn.idx).unwrap())
            }
            _ => None,
        })
        .collect()
}

#[test]
fn code1_reveals_both_normal_and_sink() {
    let (dex, decoy, normal_idx, sink_idx) = build_code1();
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();
    register_tamper(&mut rt, decoy, normal_idx, sink_idx);

    let outcome = reveal(&mut rt, |rt, obs| {
        let activity = rt.new_instance(obs, MAIN).unwrap();
        let main = rt.find_class(MAIN).unwrap();
        let on_create = rt
            .resolve_method(main, &SigKey::new("onCreate", "(Landroid/os/Bundle;)V"))
            .unwrap();
        rt.call_method(obs, on_create, &[Slot::of(activity), Slot::of(0)])
            .unwrap();
    })
    .unwrap();

    // --- collection shape matches Listing 1 -------------------------------
    let leak_record = outcome
        .files
        .methods
        .iter()
        .find(|m| m.key.name == "advancedLeak")
        .expect("advancedLeak collected");
    assert_eq!(leak_record.trees.len(), 1, "one unique tree");
    let tree = &leak_record.trees[0];
    assert_eq!(tree.node_count(), 2, "root + one divergence branch");
    let child = tree.node(1);
    assert_eq!(child.il.len(), 1, "child holds only the sink invoke");
    assert_eq!(child.sm_start, 8);
    assert_eq!(child.sm_end, Some(11));

    // --- reassembled DEX exposes both call targets -------------------------
    let out = &outcome.dex;
    verify(out, Strictness::Sorted).unwrap();
    let class = out.find_class(MAIN).expect("Main present");
    let leak = class
        .class_data
        .as_ref()
        .unwrap()
        .methods()
        .find(|m| {
            out.method_signature(m.method_idx)
                .is_ok_and(|s| s.contains("advancedLeak()V"))
        })
        .expect("advancedLeak in output");
    let code = leak.code.as_ref().unwrap();
    let invoked = method_invoked_signatures(out, &code.insns);
    assert!(
        invoked.iter().any(|s| s.contains("getSensitiveData")),
        "source call present: {invoked:?}"
    );
    assert!(
        invoked.iter().any(|s| s.contains("->normal(")),
        "baseline normal() present: {invoked:?}"
    );
    assert!(
        invoked.iter().any(|s| s.contains("->sink(")),
        "divergent sink() present: {invoked:?}"
    );

    // The divergence guard reads the instrument class.
    let uses_guard = decode_method(&code.insns)
        .unwrap()
        .iter()
        .any(|(_, d)| match d {
            Decoded::Insn(insn) if insn.op == Opcode::SgetBoolean => out
                .field_signature(insn.idx)
                .is_ok_and(|s| s.starts_with(INSTRUMENT_CLASS)),
            _ => false,
        });
    assert!(uses_guard, "synthetic branch guards the divergent block");

    // The instrument class itself is defined.
    assert!(out.find_class(INSTRUMENT_CLASS).is_some());

    // Static value survived collection.
    let phone_ok = class.static_values.iter().any(|v| {
        matches!(v, dexlego_dex::EncodedValue::String(idx)
            if out.string(*idx).is_ok_and(|s| s == "800-123-456"))
    });
    assert!(phone_ok, "PHONE static value collected and reassembled");

    // --- the output is a real, parseable DEX file --------------------------
    let bytes = dexlego_dex::writer::write_dex(out).unwrap();
    let back = dexlego_dex::reader::read_dex(&bytes).unwrap();
    assert_eq!(&back, out);
    assert!(outcome.dump_size > 0);
}

#[test]
fn method_level_baselines_miss_the_sink() {
    // DexHunter/AppSpear dump after execution: the tamper restored the
    // original code, so the dump contains `normal` but never `sink`
    // (paper §IV-A: the dump is either Code 2 or Code 3).
    let (dex, decoy, normal_idx, sink_idx) = build_code1();
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();
    register_tamper(&mut rt, decoy, normal_idx, sink_idx);

    let mut obs = dexlego_runtime::observer::NullObserver;
    let activity = rt.new_instance(&mut obs, MAIN).unwrap();
    let main = rt.find_class(MAIN).unwrap();
    let on_create = rt
        .resolve_method(main, &SigKey::new("onCreate", "(Landroid/os/Bundle;)V"))
        .unwrap();
    rt.call_method(&mut obs, on_create, &[Slot::of(activity), Slot::of(0)])
        .unwrap();

    for kind in [
        dexlego_core::baseline::BaselineKind::DexHunter,
        dexlego_core::baseline::BaselineKind::AppSpear,
    ] {
        let dump = dexlego_core::baseline::dump(&rt, kind).unwrap();
        let class = dump.find_class(MAIN).unwrap();
        let leak = class
            .class_data
            .as_ref()
            .unwrap()
            .methods()
            .find(|m| {
                dump.method_signature(m.method_idx)
                    .is_ok_and(|s| s.contains("advancedLeak"))
            })
            .unwrap();
        let invoked = method_invoked_signatures(&dump, &leak.code.as_ref().unwrap().insns);
        assert!(
            invoked.iter().any(|s| s.contains("->normal(")),
            "{kind:?}: dump holds the restored baseline"
        );
        assert!(
            !invoked.iter().any(|s| s.contains("->sink(")),
            "{kind:?}: method-level dump cannot see the transient sink"
        );
    }
}

#[test]
fn sink_actually_leaks_at_runtime() {
    // Sanity: the second loop iteration really sends the tainted data.
    let (dex, decoy, normal_idx, sink_idx) = build_code1();
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();
    register_tamper(&mut rt, decoy, normal_idx, sink_idx);
    let mut obs = dexlego_runtime::observer::NullObserver;
    let activity = rt.new_instance(&mut obs, MAIN).unwrap();
    let main = rt.find_class(MAIN).unwrap();
    let on_create = rt
        .resolve_method(main, &SigKey::new("onCreate", "(Landroid/os/Bundle;)V"))
        .unwrap();
    rt.call_method(&mut obs, on_create, &[Slot::of(activity), Slot::of(0)])
        .unwrap();
    assert_eq!(rt.log.tainted_sinks().count(), 1);
}
