//! The paper's running example (Code 1): a native method rewrites the
//! bytecode of `advancedLeak` between loop iterations to hide a taint flow.
//! Method-level dumps (DexHunter/AppSpear) see only the restored baseline;
//! DexLego's instruction-level collection exposes both the source and the
//! transient sink, and the reassembled DEX makes the flow statically
//! visible.
//!
//! Run with: `cargo run --example self_modifying`

use dexlego_suite::analysis::tools::all_tools;
use dexlego_suite::dalvik::disasm::disassemble;
use dexlego_suite::dexlego::baseline::{dump, BaselineKind};
use dexlego_suite::dexlego::pipeline::reveal;
use dexlego_suite::droidbench::samples::build_suite;
use dexlego_suite::droidbench::{drive_sample, Category};
use dexlego_suite::runtime::Runtime;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Pick the canonical self-modifying sample from the corpus.
    let sample = build_suite()
        .into_iter()
        .find(|s| s.category == Category::SelfModifying)
        .expect("corpus contains self-modifying samples");
    println!("sample: {} ({:?})", sample.name, sample.category);

    // 1. Run it: the tamper native hides the source, swaps in the sink for
    //    one iteration, and restores everything before the method returns.
    let mut rt = Runtime::new();
    let mut obs = dexlego_suite::runtime::observer::NullObserver;
    sample.install(&mut rt, &mut obs)?;
    drive_sample(&mut rt, &mut obs, &sample, 1, 0);
    println!(
        "runtime observed {} tainted sink call(s)",
        rt.log.tainted_sinks().count()
    );

    // 2. A method-level dump after execution holds only the restored code.
    let dumped = dump(&rt, BaselineKind::DexHunter)?;
    for tool in all_tools() {
        println!(
            "  {:<10} on DexHunter dump : {}",
            tool.name,
            if tool.run(&dumped).leaky() {
                "LEAK"
            } else {
                "clean"
            }
        );
    }

    // 3. DexLego collects at instruction level and reassembles both worlds.
    let mut rt = Runtime::new();
    let sample2 = sample.clone();
    let outcome = reveal(&mut rt, move |rt, obs| {
        if sample2.install(rt, obs).is_ok() {
            drive_sample(rt, obs, &sample2, 1, 0);
        }
    })?;

    let leak_record = outcome
        .files
        .methods
        .iter()
        .find(|m| m.key.name == "advancedLeak")
        .expect("collected");
    println!(
        "collection tree: {} node(s) — the divergence branch holds the hidden sink",
        leak_record.trees[0].node_count()
    );

    // Show the reassembled method: baseline plus guarded divergent block.
    let class = outcome.dex.find_class(&sample.entry).expect("class");
    let leak = class
        .class_data
        .as_ref()
        .unwrap()
        .methods()
        .find(|m| {
            outcome
                .dex
                .method_signature(m.method_idx)
                .is_ok_and(|s| s.contains("advancedLeak"))
        })
        .expect("method");
    println!("\nreassembled advancedLeak:");
    for line in disassemble(&leak.code.as_ref().unwrap().insns, Some(&outcome.dex)) {
        println!("  {line}");
    }

    for tool in all_tools() {
        let verdict = tool.run(&outcome.dex);
        println!(
            "  {:<10} on DexLego output : {}",
            tool.name,
            if verdict.leaky() { "LEAK" } else { "clean" }
        );
        assert!(verdict.leaky());
    }
    println!("self_modifying OK");
    Ok(())
}
