//! Reflection handling (paper §IV-D): a leak routed through a reflective
//! call with runtime-decrypted name strings is invisible to every static
//! tool; DexLego records the resolved target at runtime and reassembles a
//! direct call.
//!
//! Run with: `cargo run --example reflection`

use dexlego_suite::analysis::tools::all_tools;
use dexlego_suite::dexlego::pipeline::reveal;
use dexlego_suite::droidbench::samples::build_suite;
use dexlego_suite::droidbench::{drive_sample, Category};
use dexlego_suite::runtime::Runtime;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sample = build_suite()
        .into_iter()
        .find(|s| s.category == Category::ReflectionEncrypted)
        .expect("corpus contains encrypted-reflection samples");
    println!("sample: {}", sample.name);

    // Static tools on the original: the call target is an encrypted string,
    // nothing to resolve.
    for tool in all_tools() {
        println!(
            "  {:<10} on original  : {}",
            tool.name,
            if tool.run(&sample.dex).leaky() {
                "LEAK"
            } else {
                "clean"
            }
        );
    }

    // DexLego executes it; the runtime resolves the reflective target and
    // the reassembler replaces `Method.invoke` with a direct call.
    let mut rt = Runtime::new();
    let sample2 = sample.clone();
    let outcome = reveal(&mut rt, move |rt, obs| {
        if sample2.install(rt, obs).is_ok() {
            drive_sample(rt, obs, &sample2, 3, 0);
        }
    })?;
    println!(
        "collected {} reflective call site(s):",
        outcome.files.reflection_sites.len()
    );
    for site in &outcome.files.reflection_sites {
        for target in &site.targets {
            println!("  {} @pc{} -> {}", site.caller, site.dex_pc, target.key);
        }
    }

    for tool in all_tools() {
        let verdict = tool.run(&outcome.dex);
        println!(
            "  {:<10} on revealed  : {}",
            tool.name,
            if verdict.leaky() { "LEAK" } else { "clean" }
        );
        assert!(verdict.leaky());
    }
    println!("reflection OK");
    Ok(())
}
