//! Quickstart: pack a leaky app, watch static analysis fail on the shell,
//! reveal it with DexLego, and watch the analysis succeed.
//!
//! Run with: `cargo run --example quickstart`

use dexlego_suite::analysis::tools::all_tools;
use dexlego_suite::dalvik::builder::ProgramBuilder;
use dexlego_suite::dalvik::{Insn, Opcode};
use dexlego_suite::dexlego::pipeline::reveal;
use dexlego_suite::packer::{pack, PackerId};
use dexlego_suite::runtime::Runtime;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a tiny application that leaks the device id in onCreate.
    let entry = "Lquickstart/Main;";
    let mut pb = ProgramBuilder::new();
    pb.class(entry, |c| {
        c.superclass("Landroid/app/Activity;");
        c.method("onCreate", &["Landroid/os/Bundle;"], "V", 2, |m| {
            let this = m.this_reg();
            m.const_str(0, "phone");
            m.invoke(
                Opcode::InvokeVirtual,
                "Landroid/content/Context;",
                "getSystemService",
                &["Ljava/lang/String;"],
                "Ljava/lang/Object;",
                &[this, 0],
            );
            let mut mr = Insn::of(Opcode::MoveResultObject);
            mr.a = 0;
            m.asm.push(mr);
            m.invoke(
                Opcode::InvokeVirtual,
                "Landroid/telephony/TelephonyManager;",
                "getDeviceId",
                &[],
                "Ljava/lang/String;",
                &[0],
            );
            let mut mr2 = Insn::of(Opcode::MoveResultObject);
            mr2.a = 1;
            m.asm.push(mr2);
            m.invoke(
                Opcode::InvokeStatic,
                "Lcom/dexlego/Net;",
                "send",
                &["Ljava/lang/String;"],
                "V",
                &[1],
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let app = pb.build()?;
    println!("built app with {} classes", app.class_defs().len());

    // 2. Pack it with the 360 packer: only an encrypted shell remains.
    let packed = pack(&app, entry, PackerId::P360)?;
    println!(
        "packed: shell carries {} encrypted payload bytes",
        packed.payload_size()
    );

    // 3. Static analysis of the shell finds nothing.
    for tool in all_tools() {
        let verdict = tool.run(&packed.shell_dex);
        println!(
            "  {:<10} on packed shell : {} leaks",
            tool.name,
            verdict.leaks.len()
        );
    }

    // 4. Execute under DexLego's JIT collection and reassemble.
    let mut rt = Runtime::new();
    let packed2 = packed.clone();
    let outcome = reveal(&mut rt, move |rt, obs| {
        packed2.install_observed(rt, obs).expect("install");
        packed2.launch(rt, obs).expect("launch");
    })?;
    println!(
        "revealed: {} methods collected, {} byte dump, {} classes reassembled",
        outcome.files.methods.len(),
        outcome.dump_size,
        outcome.dex.class_defs().len()
    );

    // 5. The revealed DEX is a valid file the tools can analyse.
    let bytes = dexlego_suite::dex::writer::write_dex(&outcome.dex)?;
    println!("serialised revealed DEX: {} bytes", bytes.len());
    for tool in all_tools() {
        let verdict = tool.run(&outcome.dex);
        println!(
            "  {:<10} on revealed DEX: {} leaks",
            tool.name,
            verdict.leaks.len()
        );
        assert!(verdict.leaky(), "every tool sees the flow after DexLego");
    }
    println!("quickstart OK");
    Ok(())
}
