//! Force execution (paper §IV-E / Figure 4): improve the coverage of a
//! fuzzing campaign by forcing Uncovered Conditional Branches along
//! computed paths.
//!
//! Run with: `cargo run --example force_execution`

use dexlego_suite::dexlego::coverage::{measure, CoverageRecorder, EventFuzzer};
use dexlego_suite::dexlego::force::iterative_force;
use dexlego_suite::droidbench::appgen::{generate, AppSpec};
use dexlego_suite::runtime::Runtime;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An app where most code hides behind improbable input comparisons,
    // dead classes, and never-taken catch handlers.
    let app = generate(&AppSpec::coverage_profile("example/forceme", 5_000));
    println!(
        "generated app: {} instructions, entry {}",
        app.insn_count, app.entry
    );

    // 1. Fuzzing alone plateaus.
    let mut rt = Runtime::new();
    rt.load_dex(&app.dex, "app")?;
    let mut recorder = CoverageRecorder::new();
    let mut fuzzer = EventFuzzer::new(0xfeed, 8);
    for _ in 0..4 {
        fuzzer.run(&mut rt, &mut recorder, &app.entry);
    }
    let fuzz_only = measure(&rt, &recorder);
    println!(
        "fuzzing alone     : class {:>3.0}%  method {:>3.0}%  line {:>3.0}%  branch {:>3.0}%  instruction {:>3.0}%",
        fuzz_only.class, fuzz_only.method, fuzz_only.line, fuzz_only.branch, fuzz_only.instruction
    );

    // 2. Fuzzing + iterative force execution.
    let mut rt = Runtime::new();
    rt.load_dex(&app.dex, "app")?;
    let mut recorder = CoverageRecorder::new();
    let entry = app.entry.clone();
    let mut drive = |rt: &mut Runtime, obs: &mut dyn dexlego_suite::runtime::RuntimeObserver| {
        let mut fuzzer = EventFuzzer::new(0xfeed, 8);
        fuzzer.run(rt, obs, &entry);
    };
    let (coverage, stats) = iterative_force(&mut rt, &mut drive, &mut recorder, 8);
    let with_force = measure(&rt, &recorder);
    println!(
        "fuzzing + force   : class {:>3.0}%  method {:>3.0}%  line {:>3.0}%  branch {:>3.0}%  instruction {:>3.0}%",
        with_force.class,
        with_force.method,
        with_force.line,
        with_force.branch,
        with_force.instruction
    );
    println!(
        "force execution ran {} iterations, {} forced runs, covered {} branch directions ({} CFG-unreachable UCBs)",
        stats.iterations,
        stats.forced_runs,
        coverage.covered_count(),
        stats.unreachable_ucbs
    );

    assert!(with_force.instruction > fuzz_only.instruction + 10.0);
    println!("force_execution OK");
    Ok(())
}
