//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! Implements exactly the API surface used by this repository's test suites
//! (see `vendor/README.md`). Generation is deterministic (fixed-seed
//! xorshift) and there is no shrinking: on failure the generated input is
//! printed and the panic re-raised.
//!
//! Like upstream, failing cases persist: the [`proptest!`] macro records
//! the RNG state of a failing case as a `cc <16-hex>` line in a
//! `<test-file>.proptest-regressions` sibling of the test source, and
//! replays every recorded state before generating fresh cases, so a fixed
//! bug's witness keeps guarding against regressions.

pub mod test_runner {
    /// Deterministic xorshift64* generator.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        pub fn new(seed: u64) -> TestRng {
            TestRng(seed | 1)
        }

        /// The full internal state; feed to [`TestRng::from_state`] to
        /// reproduce the exact upcoming value stream.
        pub fn state(&self) -> u64 {
            self.0
        }

        /// Rebuilds a generator at a previously captured [`state`].
        ///
        /// [`state`]: TestRng::state
        pub fn from_state(state: u64) -> TestRng {
            TestRng(state | 1)
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Runner configuration; only the case count is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    pub use Config as ProptestConfig;

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    pub struct TestRunner {
        config: Config,
        rng: TestRng,
    }

    impl TestRunner {
        pub fn new(config: Config) -> TestRunner {
            TestRunner {
                config,
                // Fixed seed: reproducible CI runs.
                rng: TestRng::new(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Runs `test` against `config.cases` generated values. On panic,
        /// prints the failing input and resumes the panic (no shrinking).
        pub fn run<S, F>(&mut self, strategy: &S, test: F)
        where
            S: crate::strategy::Strategy,
            S::Value: std::fmt::Debug,
            F: Fn(S::Value),
        {
            self.run_inner(strategy, None, test);
        }

        /// [`run`] with failure persistence: previously recorded failing
        /// RNG states from `source_file`'s regressions sibling replay
        /// first, and a fresh failure appends its state there.
        ///
        /// `source_file` is the test's `file!()` — workspace-relative,
        /// while the test's working directory is the *package* root, so
        /// the file is located by walking up the ancestor directories.
        ///
        /// [`run`]: TestRunner::run
        pub fn run_persisted<S, F>(&mut self, strategy: &S, source_file: &str, test: F)
        where
            S: crate::strategy::Strategy,
            S::Value: std::fmt::Debug,
            F: Fn(S::Value),
        {
            self.run_inner(
                strategy,
                crate::persistence::regressions_path(source_file),
                test,
            );
        }

        fn run_inner<S, F>(
            &mut self,
            strategy: &S,
            regressions: Option<std::path::PathBuf>,
            test: F,
        ) where
            S: crate::strategy::Strategy,
            S::Value: std::fmt::Debug,
            F: Fn(S::Value),
        {
            if let Some(path) = &regressions {
                for state in crate::persistence::load(path) {
                    let mut rng = TestRng::from_state(state);
                    let value = strategy.new_value(&mut rng);
                    let shown = format!("{value:?}");
                    let outcome =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value)));
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest: persisted regression cc {state:016x} still fails: {shown}"
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
            for case in 0..self.config.cases {
                let state = self.rng.state();
                let value = strategy.new_value(&mut self.rng);
                let shown = format!("{value:?}");
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value)));
                if let Err(payload) = outcome {
                    if let Some(path) = &regressions {
                        crate::persistence::append(path, state);
                    }
                    eprintln!("proptest: failing case #{case} (cc {state:016x}): {shown}");
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

/// Storage for failing-case RNG states (`cc <16-hex>` lines, one per
/// failure, `#`-comments ignored) in a `.proptest-regressions` file next
/// to the test source.
pub mod persistence {
    use std::path::{Path, PathBuf};

    /// Locates `source_file` (a workspace-relative `file!()` path) from
    /// the current working directory by walking up the ancestors, and
    /// returns its regressions sibling (`.rs` → `.proptest-regressions`).
    /// `None` if the source cannot be found (persistence is then skipped).
    pub fn regressions_path(source_file: &str) -> Option<PathBuf> {
        let mut prefix = PathBuf::new();
        for _ in 0..6 {
            let candidate = prefix.join(source_file);
            if candidate.is_file() {
                return Some(candidate.with_extension("proptest-regressions"));
            }
            prefix.push("..");
        }
        None
    }

    /// Reads every persisted RNG state. A missing file is an empty list.
    pub fn load(path: &Path) -> Vec<u64> {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Vec::new();
        };
        text.lines()
            .filter_map(|line| {
                let hex = line.trim().strip_prefix("cc ")?;
                u64::from_str_radix(hex.trim(), 16).ok()
            })
            .collect()
    }

    /// Appends a failing state, creating the file (with its header) on
    /// first use. Best-effort: an unwritable location only loses
    /// persistence, never the test failure itself.
    pub fn append(path: &Path, state: u64) {
        use std::io::Write;
        if load(path).contains(&state) {
            return;
        }
        let header = if path.exists() {
            ""
        } else {
            "# Seeds for failing proptest cases, replayed before fresh cases on\n\
             # every run. Each line is `cc <rng-state>`; keep this file in git.\n"
        };
        let entry = format!("{header}cc {state:016x}\n");
        let result = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| f.write_all(entry.as_bytes()));
        match result {
            Ok(()) => eprintln!("proptest: persisted failing case to {}", path.display()),
            Err(e) => eprintln!("proptest: cannot persist to {}: {e}", path.display()),
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A value generator. Unlike upstream proptest there is no value tree:
    /// `new_value` produces a final value directly.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let pick = rng.below(self.0.len() as u64) as usize;
            self.0[pick].new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u128;
                    assert!(span > 0, "empty range strategy");
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (*self.start() as i128 + off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn new_value(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// String generation from a small regex-like pattern subset:
    /// literal chars, `[a-z0-9_]`-style classes, `\PC` (any printable
    /// char), and the quantifiers `{m,n}`, `{n}`, `*`, `+`, `?`.
    impl Strategy for &'static str {
        type Value = String;

        fn new_value(&self, rng: &mut TestRng) -> String {
            crate::string::generate(self, rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Bias towards small magnitudes and boundary values:
                    // uniform bits rarely exercise carry/overflow edges.
                    match rng.below(8) {
                        0 => 0 as $t,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        3 => rng.below(16) as $t,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            crate::string::random_char(rng)
        }
    }

    // Finite floats only: NaN breaks derived `PartialEq` roundtrip
    // assertions without exercising any additional codec path.
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            loop {
                let v = f64::from_bits(rng.next_u64());
                if v.is_finite() {
                    return v;
                }
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            loop {
                let v = f32::from_bits(rng.next_u32());
                if v.is_finite() {
                    return v;
                }
            }
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count bound for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Select<T>(Vec<T>);

    /// Uniform choice from a non-empty vector.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod string {
    use crate::test_runner::TestRng;

    /// A printable char: mostly ASCII, sometimes BMP, sometimes astral
    /// (exercises MUTF-8 surrogate pairs).
    pub fn random_char(rng: &mut TestRng) -> char {
        loop {
            let c = match rng.below(10) {
                0..=5 => 0x20 + rng.below(0x5f) as u32,
                6 | 7 => 0xa0 + rng.below(0xd800 - 0xa0) as u32,
                8 => 0xe000 + rng.below(0x1000) as u32,
                _ => 0x1_0000 + rng.below(0x1_0000) as u32,
            };
            if let Some(c) = char::from_u32(c) {
                if !c.is_control() {
                    return c;
                }
            }
        }
    }

    enum Atom {
        Class(Vec<(char, char)>),
        Printable,
        Literal(char),
    }

    fn pick(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Printable => random_char(rng),
            Atom::Literal(c) => *c,
            Atom::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
                    .sum();
                let mut pick = rng.below(total);
                for &(lo, hi) in ranges {
                    let span = hi as u64 - lo as u64 + 1;
                    if pick < span {
                        return char::from_u32(lo as u32 + pick as u32).unwrap();
                    }
                    pick -= span;
                }
                unreachable!()
            }
        }
    }

    /// Generates a string from the regex-like pattern subset documented on
    /// `impl Strategy for &'static str`. Panics on unsupported syntax so a
    /// bad pattern fails loudly rather than generating garbage.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .expect("unclosed char class")
                        + i;
                    let mut ranges = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            ranges.push((chars[j], chars[j + 2]));
                            j += 3;
                        } else {
                            ranges.push((chars[j], chars[j]));
                            j += 1;
                        }
                    }
                    i = close + 1;
                    Atom::Class(ranges)
                }
                '\\' => {
                    assert!(
                        chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C'),
                        "unsupported escape in pattern {pattern:?}"
                    );
                    i += 3;
                    Atom::Printable
                }
                c => {
                    assert!(
                        !"(){}*+?|.^$".contains(c),
                        "unsupported metachar {c:?} in pattern {pattern:?}"
                    );
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Optional quantifier.
            let (lo, hi) = match chars.get(i) {
                Some('*') => {
                    i += 1;
                    (0usize, 32usize)
                }
                Some('+') => {
                    i += 1;
                    (1, 32)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unclosed quantifier")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (lo.parse().unwrap(), hi.parse().unwrap()),
                        None => {
                            let n = body.parse().unwrap();
                            (n, n)
                        }
                    }
                }
                _ => (1, 1),
            };
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                out.push(pick(&atom, rng));
            }
        }
        out
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            let strategy = ($($strat,)+);
            runner.run_persisted(&strategy, file!(), |($($arg,)+)| $body);
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}
