//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! Implements the API surface used by `crates/bench/benches/microbench.rs`
//! (see `vendor/README.md`): walltime measurement only, no statistics
//! beyond mean/median, no plotting, no CLI. Each benchmark is warmed up
//! briefly, then timed over a fixed number of samples.

use std::time::{Duration, Instant};

/// Re-export-compatible opaque-value helper.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are sized; only the variants the suite uses.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
}

pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { _private: () }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 50,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        bencher.report(name);
        self
    }

    pub fn finish(&mut self) {}
}

pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f` per call, collecting `sample_size` samples after a short
    /// warm-up.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..3 {
            black_box(f());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("  {name}: no samples collected");
            return;
        }
        self.samples.sort();
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let median = self.samples[self.samples.len() / 2];
        println!(
            "  {name}: mean {mean:?}, median {median:?} ({} samples)",
            self.samples.len()
        );
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
