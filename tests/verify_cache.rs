//! Verification fast-path integration tests: the parallel fast engine
//! must match the sequential reference byte-for-byte over whole DEX
//! files, and the digest-keyed verify cache must reproduce fresh results
//! exactly, invalidate when code changes, and report hit/miss counters.

use std::sync::Mutex;

use dexlego_suite::droidbench::appgen::corpus_apps;
use dexlego_suite::verifier::{
    clear_verify_cache, verify_cache_len, verify_dex_typed, TypedDex, VerifyOptions,
};

/// The verify cache is process-global; these tests serialize on it so one
/// test's `clear_verify_cache` cannot race another's warm pass.
static CACHE_LOCK: Mutex<()> = Mutex::new(());

fn corpus(apps: usize, insns: usize) -> Vec<dexlego_suite::dex::DexFile> {
    corpus_apps(apps, insns)
        .into_iter()
        .map(|(_, app)| app.dex)
        .collect()
}

/// Everything observable about a typed verification result, rendered to
/// strings so two runs can be compared for exact equality: diagnostics,
/// per-method identity, frames, successors, and the disassembly.
fn fingerprint(typed: &TypedDex, dex: &dexlego_suite::dex::DexFile) -> Vec<String> {
    let mut out = vec![format!("diags: {:?}", typed.diagnostics)];
    for ir in &typed.methods {
        out.push(format!(
            "{} #{} regs={} ins={}",
            ir.signature, ir.method_idx, ir.registers, ir.ins
        ));
        out.extend(ir.disassemble(&typed.hierarchy, Some(dex)));
        for insn in &ir.insns {
            out.push(format!(
                "pc={} reachable={} frame={:?} succs={:?} uses={:?} defs={:?}",
                insn.pc, insn.reachable, insn.frame, insn.succs, insn.uses, insn.defs
            ));
        }
    }
    out
}

/// The fast engine (RPO worklist, slab frames, parallel workers) must
/// produce the identical diagnostics and typed IR as the sequential
/// reference engine over complete generated apps.
#[test]
fn fast_engine_matches_reference_on_whole_dex() {
    let fast_opts = VerifyOptions::default().with_workers(4).without_cache();
    let reference_opts = VerifyOptions::default()
        .sequential_reference()
        .without_cache();
    for dex in corpus(6, 120) {
        let fast = verify_dex_typed(&dex, &fast_opts);
        let reference = verify_dex_typed(&dex, &reference_opts);
        assert_eq!(fast.diagnostics, reference.diagnostics);
        assert_eq!(fingerprint(&fast, &dex), fingerprint(&reference, &dex));
    }
}

/// A warm cache hit must reproduce the fresh result exactly, and the
/// hit/miss counters must account for every method body.
#[test]
fn warm_cache_hit_reproduces_fresh_result() {
    let _guard = CACHE_LOCK.lock().unwrap();
    let opts = VerifyOptions::default();
    for dex in corpus(4, 100) {
        clear_verify_cache();
        let cold = verify_dex_typed(&dex, &opts);
        assert_eq!(cold.cache_hits, 0, "cold pass must not hit");
        assert!(cold.cache_misses > 0, "cold pass must populate the cache");
        let warm = verify_dex_typed(&dex, &opts);
        assert_eq!(warm.cache_misses, 0, "warm pass must not miss");
        assert_eq!(
            warm.cache_hits, cold.cache_misses,
            "every body served from cache"
        );
        assert_eq!(fingerprint(&warm, &dex), fingerprint(&cold, &dex));
    }
}

/// Mutating a method body must invalidate its cache entry: the next pass
/// misses again and matches a fresh no-cache verification of the mutated
/// DEX.
#[test]
fn cache_invalidates_when_code_changes() {
    let _guard = CACHE_LOCK.lock().unwrap();
    let opts = VerifyOptions::default();
    let mut dex = corpus(1, 120).pop().unwrap();
    clear_verify_cache();
    let before = verify_dex_typed(&dex, &opts);
    assert!(before.cache_misses > 0);

    // Grow one method's frame: same instructions, different code digest.
    let method = dex
        .class_defs_mut()
        .iter_mut()
        .filter_map(|c| c.class_data.as_mut())
        .flat_map(|d| {
            d.direct_methods
                .iter_mut()
                .chain(d.virtual_methods.iter_mut())
        })
        .find(|m| m.code.is_some())
        .expect("corpus app has a method body");
    let code = method.code.as_mut().unwrap();
    code.registers_size += 1;

    let after = verify_dex_typed(&dex, &opts);
    assert!(after.cache_misses > 0, "changed code must miss the cache");
    let fresh = verify_dex_typed(&dex, &opts.clone().without_cache());
    assert_eq!(fingerprint(&after, &dex), fingerprint(&fresh, &dex));
}

/// `clear_verify_cache` empties the store and `verify_cache_len` tracks
/// population.
#[test]
fn clear_resets_cache_population() {
    let _guard = CACHE_LOCK.lock().unwrap();
    clear_verify_cache();
    assert_eq!(verify_cache_len(), 0);
    let dex = corpus(1, 80).pop().unwrap();
    verify_dex_typed(&dex, &VerifyOptions::default());
    assert!(verify_cache_len() > 0, "verification populates the cache");
    clear_verify_cache();
    assert_eq!(verify_cache_len(), 0);
}
