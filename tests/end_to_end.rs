//! Cross-crate integration tests: the full DexLego pipeline over the
//! benchmark corpus, packers, baselines, and analysis tools.

use dexlego_suite::analysis::tools::{all_tools, droidsafe, flowdroid, horndroid};
use dexlego_suite::dex::verify::{verify, Strictness};
use dexlego_suite::dexlego::baseline::{dump, BaselineKind};
use dexlego_suite::dexlego::pipeline::reveal;
use dexlego_suite::droidbench::samples::build_suite;
use dexlego_suite::droidbench::{drive_sample, Category, Sample};
use dexlego_suite::packer::{pack, PackerId};
use dexlego_suite::runtime::Runtime;

fn reveal_with_fuzz(sample: &Sample) -> dexlego_suite::dex::DexFile {
    let mut rt = Runtime::new();
    reveal(&mut rt, |rt, obs| {
        if sample.install(rt, obs).is_err() {
            return;
        }
        for seed in [0x5eed_0001u64, 0x5eed_0002, 0x5eed_0003] {
            drive_sample(rt, obs, sample, seed, 4);
        }
    })
    .unwrap_or_else(|e| panic!("{}: {e}", sample.name))
    .dex
}

fn one_of(category: Category) -> Sample {
    build_suite()
        .into_iter()
        .find(|s| s.category == category)
        .unwrap_or_else(|| panic!("no sample of {category:?}"))
}

/// The per-category verdict matrix that generates the paper's Table II:
/// (category, [FD, DS, HD] on original, [FD, DS, HD] after DexLego).
#[test]
fn category_verdict_matrix() {
    let cases: Vec<(Category, [bool; 3], [bool; 3])> = vec![
        (Category::Direct, [true, true, true], [true, true, true]),
        (Category::Callback, [true, true, true], [true, true, true]),
        (
            Category::ArrayIndexLeak,
            [true, true, true],
            [true, true, true],
        ),
        // Tablet-gated: statically visible, not collectable on a phone.
        (
            Category::TabletGated,
            [true, true, true],
            [false, false, false],
        ),
        // Constant-string reflection: FlowDroid alone lacks reflection.
        (
            Category::ReflectionConst,
            [false, true, true],
            [true, true, true],
        ),
        // ICC: FlowDroid misses before *and* after (capability, not hiding).
        (Category::Icc, [false, true, true], [false, true, true]),
        // Implicit flows: HornDroid only, before and after.
        (
            Category::Implicit,
            [false, false, true],
            [false, false, true],
        ),
        // Hidden code categories: nobody before, (mostly) everybody after.
        (
            Category::ReflectionEncrypted,
            [false, false, false],
            [true, true, true],
        ),
        // Boxed args at unknown index: HornDroid's precise arrays drop it.
        (
            Category::ReflectionBoxed,
            [false, false, false],
            [true, true, false],
        ),
        (
            Category::DynamicLoading,
            [false, false, false],
            [true, true, true],
        ),
        (
            Category::SelfModifying,
            [false, false, false],
            [true, true, true],
        ),
        // Deep revealed chain exceeds DroidSafe's depth bound.
        (
            Category::SelfModifyingDeep,
            [false, false, false],
            [true, false, true],
        ),
        // Benign categories: entries are false-positive flags.
        (
            Category::DeadCodeMethod,
            [true, true, true],
            [false, false, false],
        ),
        (
            Category::DeadCodeBranch,
            [true, true, true],
            [false, false, false],
        ),
        (
            Category::ArrayUnknownIndex,
            [true, true, false],
            [true, true, false],
        ),
        (
            Category::OverwriteBenign,
            [false, true, false],
            [false, true, false],
        ),
        (
            Category::ImplicitBenign,
            [false, false, true],
            [false, false, true],
        ),
        (
            Category::FuzzPathAll,
            [false, false, false],
            [true, true, true],
        ),
        (
            Category::FuzzPathFlowInsens,
            [false, false, false],
            [false, true, false],
        ),
        (
            Category::FuzzPathImplicit,
            [false, false, false],
            [false, false, true],
        ),
        (
            Category::PlainBenign,
            [false, false, false],
            [false, false, false],
        ),
    ];
    let tools = [flowdroid(), droidsafe(), horndroid()];
    for (category, before, after) in cases {
        let sample = one_of(category);
        for (tool, &expected) in tools.iter().zip(&before) {
            assert_eq!(
                tool.run(&sample.dex).leaky(),
                expected,
                "{category:?} original, {}",
                tool.name
            );
        }
        let revealed = reveal_with_fuzz(&sample);
        for (tool, &expected) in tools.iter().zip(&after) {
            assert_eq!(
                tool.run(&revealed).leaky(),
                expected,
                "{category:?} after DexLego, {}",
                tool.name
            );
        }
    }
}

/// Every leaky sample except the environment-gated ones actually leaks at
/// runtime under the standard fuzzing campaign, and no benign sample does
/// (modulo the fuzz-path categories, which leak only under fuzz input —
/// the reason they become static false positives).
#[test]
fn runtime_ground_truth_matches_labels() {
    for sample in build_suite() {
        let rt = dexlego_suite::droidbench::driver::run_fresh(&sample, 0x5eed_0001, 4);
        let leaked = rt.log.tainted_sinks().count() > 0;
        match sample.category {
            Category::TabletGated | Category::Implicit => {
                // Implicit flows don't propagate runtime taint; tablet
                // samples don't execute the leak on a phone.
                assert!(!leaked, "{}: unexpected runtime taint", sample.name);
            }
            Category::FuzzPathAll | Category::FuzzPathFlowInsens | Category::FuzzPathImplicit => {
                // Leak-shaped flows only under fuzz input; either outcome
                // is acceptable at runtime, the *label* stays benign.
            }
            c if c.leaky() => {
                assert!(leaked, "{}: leaky sample did not leak", sample.name);
            }
            _ => {
                assert!(!leaked, "{}: benign sample leaked", sample.name);
            }
        }
    }
}

/// Every revealed DEX is a valid, sorted, serialisable file.
#[test]
fn revealed_dexes_are_valid_files() {
    for category in [
        Category::Direct,
        Category::SelfModifying,
        Category::DynamicLoading,
        Category::ReflectionEncrypted,
        Category::Icc,
    ] {
        let sample = one_of(category);
        let revealed = reveal_with_fuzz(&sample);
        verify(&revealed, Strictness::Sorted).unwrap_or_else(|e| panic!("{}: {e}", sample.name));
        let bytes = dexlego_suite::dex::writer::write_dex(&revealed).unwrap();
        let back = dexlego_suite::dex::reader::read_dex(&bytes).unwrap();
        assert_eq!(back, revealed, "{}", sample.name);
    }
}

/// Packing a sample and revealing it gives the same analysis verdicts as
/// revealing the original (Table III's DexLego column equals Table II's).
#[test]
fn packed_reveal_equals_plain_reveal() {
    for category in [Category::Direct, Category::DynamicLoading] {
        let sample = one_of(category);
        let plain = reveal_with_fuzz(&sample);
        let packed = pack(&sample.dex, &sample.entry, PackerId::P360).unwrap();
        let mut rt = Runtime::new();
        let packed2 = packed.clone();
        let revealed = reveal(&mut rt, move |rt, obs| {
            if packed2.install_observed(rt, obs).is_err() {
                return;
            }
            let _ = packed2.launch(rt, obs);
        })
        .unwrap()
        .dex;
        for tool in all_tools() {
            assert_eq!(
                tool.run(&plain).leaky(),
                tool.run(&revealed).leaky(),
                "{}: packed vs plain reveal verdicts differ for {}",
                sample.name,
                tool.name
            );
        }
    }
}

/// DexHunter/AppSpear dumps of a packed dynamic-loading sample contain the
/// payload classes (the mechanism behind Table III's +3 true positives).
#[test]
fn baseline_dump_contains_dynamically_loaded_classes() {
    let sample = one_of(Category::DynamicLoading);
    let packed = pack(&sample.dex, &sample.entry, PackerId::P360).unwrap();
    let mut rt = Runtime::new();
    packed.install(&mut rt).unwrap();
    let mut obs = dexlego_suite::runtime::observer::NullObserver;
    packed.launch(&mut rt, &mut obs).unwrap();
    for kind in [BaselineKind::DexHunter, BaselineKind::AppSpear] {
        let dumped = dump(&rt, kind).unwrap();
        let has_payload = dumped.class_defs().iter().any(|c| {
            dumped
                .type_descriptor(c.class_idx)
                .is_ok_and(|d| d.contains("Payload"))
        });
        assert!(
            has_payload,
            "{kind:?} dump misses the dynamically loaded class"
        );
        assert!(
            flowdroid().run(&dumped).leaky(),
            "{kind:?}: payload flow visible in the dump"
        );
    }
}

/// The instrument class's guard fields make both tamper variants reachable
/// without ever colliding with app identifiers.
#[test]
fn instrument_class_is_isolated() {
    let sample = one_of(Category::SelfModifying);
    let revealed = reveal_with_fuzz(&sample);
    let inst = revealed
        .find_class(dexlego_suite::dexlego::INSTRUMENT_CLASS)
        .expect("instrument class present");
    let data = inst.class_data.as_ref().unwrap();
    assert!(!data.static_fields.is_empty(), "guard fields exist");
    assert_eq!(
        data.static_fields.len(),
        inst.static_values.len(),
        "every guard field has an initial value"
    );
}
