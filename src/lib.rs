#![forbid(unsafe_code)]

//! Umbrella crate for the DexLego reproduction.
//!
//! Re-exports every workspace crate under one roof for the examples and
//! integration tests:
//!
//! * [`dex`] — the DEX container format (model, reader, writer, verifier).
//! * [`dalvik`] — the Dalvik instruction set (codec, assembler,
//!   disassembler, pool canonicalisation, class subsetting).
//! * [`runtime`] — the simulated Android Runtime (class linker, heap,
//!   interpreter with observer hooks, framework natives).
//! * [`dexlego`] — the paper's contribution: JIT collection (Algorithm 1),
//!   offline reassembly, reflection rewriting, force execution, baselines,
//!   coverage.
//! * [`packer`] — simulated packing platforms.
//! * [`analysis`] — static taint engine with FlowDroid/DroidSafe/HornDroid
//!   capability profiles, dynamic-tracker emulations, metrics.
//! * [`verifier`] — ART-style static bytecode verifier and lint engine
//!   (CFG construction, register typestate dataflow, `V####`/`L####`
//!   diagnostics) gating reassembly output.
//! * [`droidbench`] — the generated benchmark corpus and app generators.
//! * [`harness`] — the corpus-scale batch-extraction harness (worker pool,
//!   fault isolation, conformance checking, result caching).
//! * [`store`] — the persistent content-addressed result store backing the
//!   cache.
//! * [`service`] — `dexlegod`, the persistent extraction daemon and its
//!   wire protocol/client.
//!
//! See `examples/quickstart.rs` for the end-to-end unpack-and-analyse flow.

pub use dexlego_analysis as analysis;
pub use dexlego_core as dexlego;
pub use dexlego_dalvik as dalvik;
pub use dexlego_dex as dex;
pub use dexlego_droidbench as droidbench;
pub use dexlego_harness as harness;
pub use dexlego_packer as packer;
pub use dexlego_runtime as runtime;
pub use dexlego_service as service;
pub use dexlego_store as store;
pub use dexlego_verifier as verifier;
