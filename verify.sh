#!/usr/bin/env sh
# Full check suite: release build, all tests, clippy as errors, formatting,
# a sharded harness smoke run over every packer profile (fails on any
# job panic, timeout, verifier rejection, validation finding, or
# behavioural divergence), a pipelined dexlegod load smoke, a
# taint-precision regression gate against a
# checked-in baseline, and a dexlegod service round-trip (second
# identical extraction must be a byte-identical cache hit; graceful
# shutdown must exit 0).
set -eu
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test --workspace -q
cargo clippy --workspace -- -D warnings
cargo fmt --check
cargo run -p dexlego-harness --bin harness-smoke --release -- \
    --workers 2 --apps 2 --packers all

# Interpreter fetch smoke: the predecoded code cache must not be slower
# than per-step decoding on either microbench workload.
cargo run -p dexlego-bench --bin interp --release -- --smoke

# Quickened fetch smoke: the quickened/fused fast path must not be slower
# than per-step decoding either (prints the speedup ratios).
cargo run -p dexlego-bench --bin interp --release -- --quick-smoke

# Service load smoke: concurrent pipelined connections against a live
# daemon — asserts zero protocol errors, no lost replies, a fully warm
# second pass outrunning the cold one, and pipelining beating the serial
# one-in-flight protocol on the warm turnaround probe.
cargo run -p dexlego-bench --bin service --release -- --smoke

# Taint-precision gate: every tool misclassification on the original
# corpus must already be in the checked-in baseline — a change that
# introduces a new false positive (or loses a true leak) fails here.
cargo run -p dexlego-bench --bin taint_gate --release

# Service smoke: start dexlegod on an ephemeral port, submit the same
# extraction twice (the smoke client asserts the second is a cache hit
# with byte-identical DEX), then drain gracefully and check exit 0.
service_dir="target/verify-dexlegod"
rm -rf "$service_dir"
mkdir -p "$service_dir"
./target/release/dexlegod --workers 2 --store "$service_dir/store" \
    > "$service_dir/daemon.out" 2> "$service_dir/daemon.err" &
daemon_pid=$!
addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's/^dexlegod: listening on //p' "$service_dir/daemon.out")
    [ -n "$addr" ] && break
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
        echo "verify: dexlegod died before listening" >&2
        cat "$service_dir/daemon.err" >&2
        exit 1
    fi
    i=$((i + 1))
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "verify: dexlegod never printed its address" >&2
    kill "$daemon_pid" 2>/dev/null || true
    exit 1
fi
if ! ./target/release/dexlegod-smoke --addr "$addr" --packer 360 --shutdown; then
    echo "verify: dexlegod-smoke failed" >&2
    kill "$daemon_pid" 2>/dev/null || true
    exit 1
fi
if ! wait "$daemon_pid"; then
    echo "verify: dexlegod did not exit 0 after graceful shutdown" >&2
    exit 1
fi
echo "verify: dexlegod service smoke ok"
