#!/usr/bin/env sh
# Full check suite: release build, all tests, clippy as errors, formatting,
# and a sharded harness smoke run over every packer profile (fails on any
# job panic, timeout, verifier rejection, validation finding, or
# behavioural divergence).
set -eu
cd "$(dirname "$0")"

cargo build --release
cargo test --workspace -q
cargo clippy --workspace -- -D warnings
cargo fmt --check
cargo run -p dexlego-harness --bin harness-smoke --release -- \
    --workers 2 --apps 2 --packers all
