#!/usr/bin/env sh
# Full check suite: release build, all tests, clippy as errors, formatting,
# a sharded harness smoke run over every packer profile (fails on any
# job panic, timeout, verifier rejection, validation finding, or
# behavioural divergence), a pipelined dexlegod load smoke, a
# taint-precision regression gate against a
# checked-in baseline, and a dexlegod service round-trip (second
# identical extraction must be a byte-identical cache hit; graceful
# shutdown must exit 0).
set -eu
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test --workspace -q
cargo clippy --workspace -- -D warnings
cargo fmt --check
cargo run -p dexlego-harness --bin harness-smoke --release -- \
    --workers 2 --apps 2 --packers all

# Interpreter fetch smoke: the predecoded code cache must not be slower
# than per-step decoding on either microbench workload.
cargo run -p dexlego-bench --bin interp --release -- --smoke

# Quickened fetch smoke: the quickened/fused fast path must not be slower
# than per-step decoding either (prints the speedup ratios).
cargo run -p dexlego-bench --bin interp --release -- --quick-smoke

# Verifier fast-path smoke: the fast engine must match the reference
# engine's diagnostics exactly, a warm cache pass must not be slower
# than a cold one, hits must occur, and the repeated-verification
# corpus workload must beat the reference engine. The taint gate below
# then exercises analysis on the cached verification path.
cargo run -p dexlego-bench --bin verifier --release -- --smoke

# Service load smoke: concurrent pipelined connections against a live
# daemon — asserts zero protocol errors, no lost replies, a fully warm
# second pass outrunning the cold one, and pipelining beating the serial
# one-in-flight protocol on the warm turnaround probe.
cargo run -p dexlego-bench --bin service --release -- --smoke

# Taint-precision gate: every tool misclassification on the original
# corpus must already be in the checked-in baseline — a change that
# introduces a new false positive (or loses a true leak) fails here.
cargo run -p dexlego-bench --bin taint_gate --release

# Service smoke: start dexlegod on an ephemeral port, submit the same
# extraction twice (the smoke client asserts the second is a cache hit
# with byte-identical DEX), then drain gracefully and check exit 0.
service_dir="target/verify-dexlegod"
rm -rf "$service_dir"
mkdir -p "$service_dir"
./target/release/dexlegod --workers 2 --store "$service_dir/store" \
    > "$service_dir/daemon.out" 2> "$service_dir/daemon.err" &
daemon_pid=$!
addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's/^dexlegod: listening on //p' "$service_dir/daemon.out")
    [ -n "$addr" ] && break
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
        echo "verify: dexlegod died before listening" >&2
        cat "$service_dir/daemon.err" >&2
        exit 1
    fi
    i=$((i + 1))
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "verify: dexlegod never printed its address" >&2
    kill "$daemon_pid" 2>/dev/null || true
    exit 1
fi
if ! ./target/release/dexlegod-smoke --addr "$addr" --packer 360 --shutdown; then
    echo "verify: dexlegod-smoke failed" >&2
    kill "$daemon_pid" 2>/dev/null || true
    exit 1
fi
if ! wait "$daemon_pid"; then
    echo "verify: dexlegod did not exit 0 after graceful shutdown" >&2
    exit 1
fi
echo "verify: dexlegod service smoke ok"

# Fleet bench smoke: 3 sharded backends behind dexlego-router with
# injected stragglers — asserts replication happened, zero error
# replies even while a backend is killed mid-pass, and the hedged
# fleet's warm p999 beating the single-backend baseline.
cargo run -p dexlego-bench --bin service --release -- --router 3 --smoke

# Router fleet smoke: three real dexlegod processes behind a real
# dexlego-router process. Round-trip through the router (second
# extraction must be a cache hit), then kill -9 one shard and read
# again — the fleet must still answer — then drain the router
# gracefully and check exit 0.
fleet_dir="target/verify-fleet"
rm -rf "$fleet_dir"
mkdir -p "$fleet_dir"
backend_pids=""
backend_args=""
for shard in 0 1 2; do
    ./target/release/dexlegod --workers 2 --store "$fleet_dir/store$shard" \
        > "$fleet_dir/shard$shard.out" 2> "$fleet_dir/shard$shard.err" &
    backend_pids="$backend_pids $!"
done
for shard in 0 1 2; do
    shard_addr=""
    i=0
    while [ $i -lt 100 ]; do
        shard_addr=$(sed -n 's/^dexlegod: listening on //p' "$fleet_dir/shard$shard.out")
        [ -n "$shard_addr" ] && break
        i=$((i + 1))
        sleep 0.1
    done
    if [ -z "$shard_addr" ]; then
        echo "verify: fleet shard $shard never printed its address" >&2
        kill -9 $backend_pids 2>/dev/null || true
        exit 1
    fi
    backend_args="$backend_args --backend $shard_addr"
done
# shellcheck disable=SC2086
./target/release/dexlego-router $backend_args \
    > "$fleet_dir/router.out" 2> "$fleet_dir/router.err" &
router_pid=$!
router_addr=""
i=0
while [ $i -lt 100 ]; do
    router_addr=$(sed -n 's/^dexlego-router: listening on //p' "$fleet_dir/router.out")
    [ -n "$router_addr" ] && break
    i=$((i + 1))
    sleep 0.1
done
if [ -z "$router_addr" ]; then
    echo "verify: dexlego-router never printed its address" >&2
    kill -9 $backend_pids "$router_pid" 2>/dev/null || true
    exit 1
fi
if ! ./target/release/dexlegod-smoke --addr "$router_addr" --packer Tencent; then
    echo "verify: fleet round-trip through the router failed" >&2
    kill -9 $backend_pids "$router_pid" 2>/dev/null || true
    exit 1
fi
# Give the async replication a moment, then lose a shard the hard way.
sleep 1
victim=$(echo $backend_pids | awk '{print $2}')
kill -9 "$victim"
if ! ./target/release/dexlegod-smoke --addr "$router_addr" --packer Tencent; then
    echo "verify: fleet read after losing a shard failed" >&2
    kill -9 $backend_pids "$router_pid" 2>/dev/null || true
    exit 1
fi
if ! ./target/release/dexlegod-smoke --addr "$router_addr" --packer 360 --shutdown; then
    echo "verify: router graceful drain request failed" >&2
    kill -9 $backend_pids "$router_pid" 2>/dev/null || true
    exit 1
fi
if ! wait "$router_pid"; then
    echo "verify: dexlego-router did not exit 0 after graceful shutdown" >&2
    kill -9 $backend_pids 2>/dev/null || true
    exit 1
fi
kill -9 $backend_pids 2>/dev/null || true
echo "verify: router fleet smoke ok"
