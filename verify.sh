#!/usr/bin/env sh
# Full check suite: release build, all tests, clippy as errors, formatting.
set -eu
cd "$(dirname "$0")"

cargo build --release
cargo test --workspace -q
cargo clippy --workspace -- -D warnings
cargo fmt --check
